#!/usr/bin/env python3
"""Repair campaign: sweep engine arms over a slice of the Miri-style corpus.

Reproduces, in miniature, the paper's RQ2 experiment through the engine
API: two arms declared as spec strings (with / without the knowledge base),
run with ``isolation="shared"`` — one stateful engine per arm, so the
self-learning feedback memory visibly kicks in on the later, similar cases
(the ``feedback`` marks in the assist column).  The finished run serializes
to ``campaign.json``, the same artifact ``repro campaign --json`` writes.

For throughput instead of statefulness, switch to the default
``isolation="per_case"`` and raise ``workers`` — per-case derived seeds
make a 4-worker run byte-identical to a serial one.

Run:  python examples/repair_campaign.py
"""

from repro.bench.reporting import render_table
from repro.corpus.dataset import load_dataset
from repro.engine import Campaign, ProgressPrinter
from repro.miri.errors import UbKind

CATEGORIES = [UbKind.UNINIT, UbKind.DANGLING_POINTER]
ENGINES = ["rustbrain?kb=off", "rustbrain"]


def main() -> None:
    dataset = load_dataset().subset(CATEGORIES)
    campaign = Campaign(ENGINES, dataset, seed=13, isolation="shared",
                        observers=[ProgressPrinter()])
    result = campaign.run()

    for arm in result.arms:
        rows = [[
            report.case,
            report.category.value,
            "pass" if report.passed else "FAIL",
            "exec" if report.acceptable else "-",
            f"{report.seconds:.0f}s",
            "feedback" if report.used_feedback else
            ("kb" if report.used_knowledge_base else "-"),
        ] for report in arm.reports]
        print(render_table(
            ["case", "category", "miri", "semantics", "time", "assist"],
            rows, title=f"Repair campaign ({arm.label})"))
        passed = sum(r.passed for r in arm.reports)
        execs = sum(r.acceptable for r in arm.reports)
        print(f"=> pass {passed}/{len(rows)}, exec {execs}/{len(rows)}\n")

    result.save("campaign.json")
    print("full trajectory written to campaign.json")


if __name__ == "__main__":
    main()
