#!/usr/bin/env python3
"""Repair campaign: sweep engine arms over a slice of the Miri-style corpus.

Reproduces, in miniature, the paper's RQ2 experiment through the engine
API, then shows the execution layer's two scaling tools:

1. **Shared isolation** — two arms declared as spec strings (with /
   without the knowledge base), each a stateful engine walking the cases
   in order so the self-learning feedback memory visibly kicks in on the
   later, similar cases (the ``feedback`` marks in the assist column).
   ``workers=2`` with the process executor runs the two whole arms in
   parallel without touching their serial in-arm semantics.
2. **Per-case isolation + result cache** — a process-pool sweep with a
   content-addressed cache: the first run executes every case, the rerun
   is answered entirely from disk (watch the hit/miss line), and both
   produce byte-identical reports.

The finished run serializes to ``campaign.json``, the same artifact
``repro campaign --json`` writes.

Run:  python examples/repair_campaign.py
"""

import tempfile

from repro.bench.reporting import render_table
from repro.corpus.dataset import load_dataset
from repro.engine import Campaign, ProgressPrinter, ResultCache
from repro.miri.errors import UbKind

CATEGORIES = [UbKind.UNINIT, UbKind.DANGLING_POINTER]
ENGINES = ["rustbrain?kb=off", "rustbrain"]


def main() -> None:
    dataset = load_dataset().subset(CATEGORIES)
    # Stateful arms; the process pool parallelises ACROSS the two arms.
    campaign = Campaign(ENGINES, dataset, seed=13, isolation="shared",
                        workers=2, executor="process",
                        observers=[ProgressPrinter()])
    result = campaign.run()

    for arm in result.arms:
        rows = [[
            report.case,
            report.category.value,
            "pass" if report.passed else "FAIL",
            "exec" if report.acceptable else "-",
            f"{report.seconds:.0f}s",
            "feedback" if report.used_feedback else
            ("kb" if report.used_knowledge_base else "-"),
        ] for report in arm.reports]
        print(render_table(
            ["case", "category", "miri", "semantics", "time", "assist"],
            rows, title=f"Repair campaign ({arm.label})"))
        passed = sum(r.passed for r in arm.reports)
        execs = sum(r.acceptable for r in arm.reports)
        print(f"=> pass {passed}/{len(rows)}, exec {execs}/{len(rows)}\n")

    result.save("campaign.json")
    print("full trajectory written to campaign.json")

    # Per-case isolation parallelises freely and caches per case: the
    # rerun below performs zero engine executions.
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        for attempt in ("cold", "warm"):
            run = Campaign(ENGINES, dataset, seed=13, workers=4,
                           executor="process", cache=cache).run()
            hits, misses = run.telemetry.cache_counts()
            print(f"{attempt} per-case sweep: {hits} cache hits, "
                  f"{misses} misses")


if __name__ == "__main__":
    main()
