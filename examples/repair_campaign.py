#!/usr/bin/env python3
"""Repair campaign: sweep RustBrain over a slice of the Miri-style corpus.

Reproduces, in miniature, the paper's RQ2 experiment: repair every case in
two categories with two configurations (with / without the knowledge base)
and report per-category pass/exec rates plus overhead — the self-learning
feedback memory visibly kicks in on the later, similar cases.

Run:  python examples/repair_campaign.py
"""

from repro.bench.reporting import render_table
from repro.core import RustBrain, RustBrainConfig, semantically_acceptable
from repro.corpus.dataset import load_dataset
from repro.miri.errors import UbKind

CATEGORIES = [UbKind.UNINIT, UbKind.DANGLING_POINTER]


def run_campaign(use_kb: bool) -> list[list[str]]:
    dataset = load_dataset().subset(CATEGORIES)
    brain = RustBrain(RustBrainConfig(model="gpt-4", seed=13,
                                      use_knowledge_base=use_kb))
    rows = []
    for case in dataset:
        outcome = brain.repair(case.source, case.difficulty)
        acceptable = bool(
            outcome.passed and outcome.repaired_source
            and semantically_acceptable(outcome.repaired_source,
                                        case.fixed_source))
        rows.append([
            case.name,
            case.category.value,
            "pass" if outcome.passed else "FAIL",
            "exec" if acceptable else "-",
            f"{outcome.seconds:.0f}s",
            "feedback" if outcome.used_feedback else
            ("kb" if outcome.used_knowledge_base else "-"),
        ])
    return rows


def main() -> None:
    for use_kb in (False, True):
        label = "with knowledge base" if use_kb else "without knowledge base"
        rows = run_campaign(use_kb)
        print(render_table(
            ["case", "category", "miri", "semantics", "time", "assist"],
            rows, title=f"Repair campaign ({label})"))
        passed = sum(row[2] == "pass" for row in rows)
        execs = sum(row[3] == "exec" for row in rows)
        print(f"=> pass {passed}/{len(rows)}, exec {execs}/{len(rows)}\n")


if __name__ == "__main__":
    main()
