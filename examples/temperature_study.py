#!/usr/bin/env python3
"""Temperature study: a compact version of the paper's RQ3 (Fig. 11).

Sweeps sampling temperature for GPT-4+RustBrain over a corpus slice and
prints pass/exec rates with 95% Wilson intervals — the inverted-U shape
peaking near T = 0.5 is the reproduced result.

Run:  python examples/temperature_study.py
"""

from repro.bench.experiments import evaluate_spec
from repro.bench.reporting import render_bars
from repro.bench.stats import wilson_interval
from repro.corpus.dataset import Dataset, load_dataset
from repro.engine import EngineSpec

TEMPERATURES = (0.1, 0.3, 0.5, 0.7, 0.9)
SEEDS = (3, 11)


def main() -> None:
    dataset = Dataset(tuple(list(load_dataset())[::2]))  # every other case
    pass_series = {}
    exec_series = {}
    for temperature in TEMPERATURES:
        # One spec string pins the whole arm, temperature included.
        spec = EngineSpec.parse(f"rustbrain?temperature={temperature}")
        passes = execs = total = 0
        for seed in SEEDS:
            run = evaluate_spec(spec, model="gpt-4", seed=seed,
                                dataset=dataset)
            passes += sum(r.passed for r in run.results)
            execs += sum(r.acceptable for r in run.results)
            total += len(run.results)
        pass_ci = wilson_interval(passes, total)
        exec_ci = wilson_interval(execs, total)
        label = f"T={temperature:.1f}"
        pass_series[label] = pass_ci.rate
        exec_series[label] = exec_ci.rate
        print(f"{label}: pass {pass_ci}   exec {exec_ci}")

    print()
    print(render_bars(pass_series, title="pass rate by temperature"))
    print()
    print(render_bars(exec_series, title="exec rate by temperature"))


if __name__ == "__main__":
    main()
