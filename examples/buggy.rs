fn main() {
    let config = Box::new(1024);
    let raw = Box::into_raw(config);
    unsafe { drop(Box::from_raw(raw)); }
    let buffer_size = unsafe { *raw };
    println!("buffer size: {}", buffer_size);
}
