#!/usr/bin/env python3
"""Model-portfolio ensembles: the Fig. 8/9 comparison as one campaign.

Runs every capability profile as a standalone arm next to the three
composite engines over a slice of the corpus:

* ``portfolio`` — three ``llm_only`` profiles race per case, first Miri
  pass wins;
* ``cascade`` — GPT-3.5 answers first, the full GPT-4 RustBrain pipeline
  is only consulted on failure (the paper's fast→slow escalation at the
  model level);
* ``switch`` — the detector's UB category routes each case to a fast or
  slow member (AkiraRust-style feedback-guided switching).

Watch the ``on_member_done`` telemetry: the cascade's second member only
appears on the cases the cheap model failed, which is exactly why its
mean virtual-clock latency lands far below the best single model's while
its pass rate lands far above.

Run:  python examples/ensemble_portfolio.py
"""

from repro.bench.reporting import render_table
from repro.corpus.dataset import load_dataset
from repro.engine import Campaign, CampaignObserver
from repro.miri.errors import UbKind

CATEGORIES = [UbKind.UNINIT, UbKind.STACK_BORROW, UbKind.DANGLING_POINTER]
STANDALONE = ["gpt-3.5", "claude-3.5", "gpt-4"]
ENSEMBLES = ["portfolio", "cascade", "switch"]


class MemberTrace(CampaignObserver):
    """Print one line per consulted ensemble member."""

    def on_member_done(self, event):
        verdict = "pass" if event.passed else "FAIL"
        print(f"    [{event.engine}] {event.case}: member "
              f"#{event.member_index} {event.member} -> {verdict} "
              f"({event.seconds:.0f}s virtual)")


def main() -> None:
    dataset = load_dataset().subset(CATEGORIES)
    campaign = Campaign(STANDALONE + ENSEMBLES, dataset, seed=3,
                        executor="process", workers=4,
                        observers=[MemberTrace()])
    result = campaign.run()

    rows = []
    for arm in result.arms:
        results = arm.results
        rows.append([arm.label,
                     f"{100 * results.pass_rate():.1f}",
                     f"{100 * results.exec_rate():.1f}",
                     f"{results.mean_seconds():.0f}"])
    print(render_table(["arm", "pass %", "exec %", "mean s"], rows,
                       title="Standalone profiles vs ensembles"))

    members = result.telemetry.to_dict()["members_finished"]
    print(f"{members} member executions across "
          f"{len(ENSEMBLES)} ensemble arms — full trajectory in "
          "ensemble_campaign.json")
    result.save("ensemble_campaign.json")


if __name__ == "__main__":
    main()
