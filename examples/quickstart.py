#!/usr/bin/env python3
"""Quickstart: detect a use-after-free and let RustBrain repair it.

Run:  python examples/quickstart.py
"""

from repro.core import semantically_acceptable
from repro.engine import create_engine
from repro.miri import detect_ub

BUGGY = """\
fn main() {
    let config = Box::new(1024);
    let raw = Box::into_raw(config);
    unsafe { drop(Box::from_raw(raw)); }
    let buffer_size = unsafe { *raw };
    println!("buffer size: {}", buffer_size);
}
"""

# How the developer actually fixed it upstream (defines "acceptable
# semantics" — the exec metric compares observable behaviour against this).
DEVELOPER_FIX = """\
fn main() {
    let config = Box::new(1024);
    let raw = Box::into_raw(config);
    let buffer_size = unsafe { *raw };
    unsafe { drop(Box::from_raw(raw)); }
    println!("buffer size: {}", buffer_size);
}
"""


def main() -> None:
    # Step 1 — detection (stage F1): the Miri-equivalent interpreter.
    report = detect_ub(BUGGY)
    print("=== Miri verdict on the buggy program ===")
    print(report.render())
    print()

    # Step 2 — repair: fast thinking generates candidate solutions, slow
    # thinking decomposes/executes/verifies them with the fix agents.  Any
    # registered arm works here — try "rustbrain?kb=off" or "llm_only".
    brain = create_engine("rustbrain", model="gpt-4", seed=7)
    outcome = brain.repair(BUGGY)

    print("=== RustBrain outcome ===")
    print(f"passed Miri     : {outcome.passed}")
    print(f"solutions tried : {outcome.solutions_tried}")
    print(f"steps executed  : {outcome.steps_executed}")
    print(f"hallucinations  : {outcome.hallucinations}")
    print(f"rollbacks       : {outcome.rollbacks}")
    print(f"simulated time  : {outcome.seconds:.1f}s "
          f"({outcome.llm_calls} model calls, {outcome.tokens} tokens)")
    print()

    if outcome.passed:
        print("=== repaired program ===")
        print(outcome.repaired_source)
        acceptable = semantically_acceptable(outcome.repaired_source,
                                             DEVELOPER_FIX)
        print(f"semantics match the developer fix: {acceptable}")
        verdict = detect_ub(outcome.repaired_source)
        print(f"repaired stdout: {verdict.stdout}")
    else:
        print(f"repair failed: {outcome.failure_reason}")


if __name__ == "__main__":
    main()
