#!/usr/bin/env python3
"""Detector tour: one program per UB category through the Miri-equivalent.

Shows the detector's diagnostics across the paper's taxonomy — stacked
borrows, provenance, data races with vector clocks, validity, alignment —
each on a minimal program, exactly the way `cargo miri run` would flag them.

Run:  python examples/detector_tour.py
"""

from repro.miri import detect_ub

TOUR = {
    "dangling pointer (use-after-free)": '''
fn main() {
    let b = Box::new(7);
    let p = Box::into_raw(b);
    unsafe { drop(Box::from_raw(p)); }
    let v = unsafe { *p };
}''',
    "stacked borrows (raw invalidated by reborrow)": '''
fn main() {
    let mut x = 5;
    let p = &mut x as *mut i32;
    let r = &mut x;
    *r += 1;
    let v = unsafe { *p };
}''',
    "provenance (integer-laundered pointer)": '''
fn main() {
    let data = 11;
    let addr = &data as *const i32 as usize;
    let p = addr as *const i32;
    let v = unsafe { *p };
}''',
    "data race (unsynchronized static mut)": '''
static mut COUNTER: usize = 0;
fn main() {
    let h = std::thread::spawn(move || {
        unsafe { COUNTER += 1; }
    });
    unsafe { COUNTER += 1; }
    h.join();
}''',
    "validity (bool from out-of-range byte)": '''
use std::mem;
fn main() {
    let raw: u8 = 2;
    let flag = unsafe { mem::transmute::<u8, bool>(raw) };
}''',
    "unaligned access": '''
fn main() {
    let words = [0u64, 1];
    let bytes = words.as_ptr() as *const u8;
    let p = unsafe { bytes.add(1) } as *const u32;
    let v = unsafe { *p };
}''',
    "uninitialised read": '''
fn main() {
    let mu: MaybeUninit<i32> = MaybeUninit::uninit();
    let v = unsafe { mu.assume_init() };
}''',
    "allocator misuse (double free)": '''
fn main() {
    let v = vec![1, 2];
    drop(v);
    drop(v);
}''',
    "a clean program, for contrast": '''
fn main() {
    let mut v: Vec<i32> = Vec::new();
    for i in 0..5 {
        v.push(i as i32 * 10);
    }
    let mut total = 0;
    for i in 0..v.len() {
        total += v[i];
    }
    println!("total = {}", total);
}''',
}


def main() -> None:
    for title, source in TOUR.items():
        print(f"### {title}")
        report = detect_ub(source)
        print(report.render())
        if report.stdout:
            print("stdout:", report.stdout)
        print()


if __name__ == "__main__":
    main()
