#!/usr/bin/env python3
"""Model-portfolio smoke: ensembles vs standalone profiles, with hard gates.

Stages, one artifact (``BENCH_ensemble.json``, schema
``repro.bench_ensemble/3`` — see docs/reference.md for the changelog):

1. **Execution-layer checks** on a three-category subset: the composite
   arms run byte-identically under ``executor="serial"``,
   ``executor="thread"``, and ``executor="process"`` (every pool leased
   from the shared ExecutorService), and a warm re-run on the result
   cache replays every case — zero engine (and therefore zero
   ensemble-member) executions — with identical bytes and identical
   ``on_member_done`` telemetry counts.  With ``--member-workers N > 1``
   the composite arms carry ``member_workers=N``: the gates additionally
   prove that the ``serial|thread|process`` member-pool backends are
   byte-identical and that concurrent voting elects the same winners as
   sequential voting.
2. **Batched verification**: RustBrain with ``batch_verify=on`` produces
   outcomes identical to ``batch_verify=off`` while executing fewer
   detector (interpreter) runs, and a scored campaign answers strictly
   more verification requests than it runs interpreters — the
   detector-invocations-per-repaired-case amortization.
3. **Fingerprint dedup**: a multi-arm multi-member campaign with the
   normalized-AST fingerprint layer on (verifier dedup + the
   process-wide case-detection memo, the default) produces repair
   outcomes byte-identical to the same campaign with ``fingerprint=off``
   members and the case memo disabled, while executing strictly fewer
   interpreter runs per case.  (The exec-metric trace memo keys by
   fingerprint in *both* legs, so the off baseline is a lower bound on
   the true PR-4 run count — the measured reduction is conservative.)
   A probe batch of formatting-divergent corpus duplicates additionally
   gates that the normalized layer itself answers them in one run each.
4. **The headline claim** (sequential mode only) on the full corpus,
   repeat-sampled across seeds: the cascade arm (cheap GPT-3.5 pass
   first, full GPT-4 RustBrain only on failure) beats **every**
   standalone-model arm on pass rate at a lower mean virtual-clock
   latency than the best single model.

Wall-clock numbers are environment-dependent and NOT asserted; the
``checks`` block is a set of hard gates and the script exits non-zero if
any fails.

Run:  PYTHONPATH=src python benchmarks/ensemble_smoke.py \
          [--member-workers N] [OUTPUT.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

from repro.bench.figures import (DEFAULT_SEEDS, ENSEMBLE_COMPOSITE_ARMS,
                                 ENSEMBLE_STANDALONE_ARMS,
                                 ensemble_best_standalone, ensemble_campaign,
                                 ensemble_data)
from repro.corpus.dataset import load_dataset
from repro.engine import ResultCache, create_engine
from repro.miri import CASE_MEMO, DETECTOR_STATS
from repro.miri.errors import UbKind

SCHEMA = "repro.bench_ensemble/3"
DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_ensemble.json"

#: Identity-check subset: small enough for a serial reference run, wide
#: enough to exercise fast members, slow escalation, and switch routing.
CHECK_CATEGORIES = [UbKind.UNINIT, UbKind.PANIC, UbKind.STACK_BORROW]
#: Batched-verification subset (run twice, so kept lean).
VERIFY_CATEGORIES = [UbKind.UNINIT, UbKind.PANIC]
#: Fingerprint A/B subset (also run twice).
FINGERPRINT_CATEGORIES = [UbKind.UNINIT, UbKind.PANIC]
CHECK_SEED = 3

#: The fingerprint A/B campaign: multi-arm, multi-member, members and
#: routes pinned explicitly so the ``fingerprint=off`` variant differs in
#: nothing but the dedup layer under test.
FINGERPRINT_ARMS = {
    "on": ("cascade?members=gpt-3.5+rustbrain:gpt-4",
           "switch?members=claude-3.5+rustbrain:gpt-4&fallback=0"),
    "off": ("cascade?members=gpt-3.5;fingerprint=off"
            "+rustbrain;fingerprint=off:gpt-4",
            "switch?members=claude-3.5;fingerprint=off"
            "+rustbrain;fingerprint=off:gpt-4&fallback=0"),
}


def _arm_payload(result) -> str:
    return json.dumps([arm.to_dict() for arm in result.arms],
                      sort_keys=True)


def _composite_arms(member_workers: int) -> tuple[str, ...]:
    if member_workers == 1:
        return ENSEMBLE_COMPOSITE_ARMS
    return (f"portfolio?strategy=best_score&member_workers={member_workers}",
            f"portfolio?strategy=vote&member_workers={member_workers}",
            f"switch?member_workers={member_workers}")


def _winners(result, label: str) -> list:
    arm = next(arm for arm in result.arms if arm.label == label)
    return [(report.case, report.passed, report.repaired_source)
            for report in arm.reports]


def _strip_member_specs(entry: dict) -> dict:
    """One report dict minus the strings that spell the arm's spec — the
    engine label and each member's spec string differ legitimately
    between the fingerprint on/off variants; nothing else may."""
    entry = dict(entry)
    entry.pop("engine")
    entry["members"] = [{key: value for key, value in member.items()
                         if key != "member"}
                        for member in entry.get("members", [])]
    return entry


def _reports_sans_label(result, label: str) -> str:
    """Arm reports as JSON with the engine label stripped — the label
    embeds the spec string, which legitimately differs per backend."""
    arm = next(arm for arm in result.arms if arm.label == label)
    payload = []
    for report in arm.reports:
        entry = report.to_dict()
        entry.pop("engine")
        payload.append(entry)
    return json.dumps(payload, sort_keys=True)


def _identity_checks(member_workers: int) -> tuple[dict, dict]:
    dataset = load_dataset().subset(CHECK_CATEGORIES)
    arms = _composite_arms(member_workers)
    serial = ensemble_campaign(dataset, seed=CHECK_SEED, executor="serial",
                               arms=arms).run()
    threaded = ensemble_campaign(dataset, seed=CHECK_SEED,
                                 executor="thread", workers=4,
                                 arms=arms).run()
    with tempfile.TemporaryDirectory(prefix="repro-ensemble-smoke-") as tmp:
        cache = ResultCache(tmp)
        cold = ensemble_campaign(dataset, seed=CHECK_SEED,
                                 executor="process", workers=4,
                                 cache=cache, arms=arms).run()
        warm = ensemble_campaign(dataset, seed=CHECK_SEED,
                                 executor="process", workers=4,
                                 cache=cache, arms=arms).run()
    cases = len(dataset) * len(arms)
    # Cache hit/miss counts legitimately differ cold vs warm; the replayed
    # event stream (cases, rounds, per-member telemetry) must not.
    cold_events = {k: v for k, v in cold.telemetry.to_dict().items()
                   if not k.startswith("cache_")}
    warm_events = {k: v for k, v in warm.telemetry.to_dict().items()
                   if not k.startswith("cache_")}
    checks = {
        # serial == thread == process through the shared ExecutorService.
        "thread_matches_serial":
            _arm_payload(threaded) == _arm_payload(serial),
        "process_matches_serial": _arm_payload(cold) == _arm_payload(serial),
        "warm_zero_member_executions":
            warm.telemetry.cache_counts() == (cases, 0)
            and _arm_payload(warm) == _arm_payload(cold)
            and warm_events == cold_events,
    }
    summary = {
        "categories": sorted(cat.value for cat in CHECK_CATEGORIES),
        "cases": len(dataset),
        "arms": list(arms),
        "members_finished": warm.telemetry.to_dict()["members_finished"],
        "warm_cache_hits": warm.telemetry.cache_counts()[0],
    }
    if member_workers > 1:
        vote_arm = arms[1]
        sequential = ensemble_campaign(
            dataset, seed=CHECK_SEED, executor="serial",
            arms=("portfolio?strategy=vote",)).run()
        checks["vote_winners_match_sequential"] = \
            _winners(serial, vote_arm) == \
            _winners(sequential, "portfolio?strategy=vote")
        backends = {}
        for backend in ("serial", "thread", "process"):
            spec = (f"portfolio?strategy=vote"
                    f"&member_workers={member_workers}"
                    f"&member_executor={backend}")
            run = ensemble_campaign(dataset, seed=CHECK_SEED,
                                    executor="serial", arms=(spec,)).run()
            backends[backend] = _reports_sans_label(run, spec)
        checks["member_executors_byte_identical"] = \
            len(set(backends.values())) == 1
    return checks, summary


def _verification_checks() -> tuple[dict, dict]:
    """Batched S2 verification: identical outcomes, fewer detector runs."""
    from repro.core.evaluate import clear_trace_memo
    # Published run counts must not inherit warmth from the identity stage
    # (same cases, same seed, same process).
    clear_trace_memo()
    CASE_MEMO.clear()
    dataset = load_dataset().subset(VERIFY_CATEGORIES)
    cases = list(dataset)
    outcomes: dict[str, list] = {}
    runs: dict[str, int] = {}
    for flag in ("off", "on"):
        DETECTOR_STATS.reset()
        engine = create_engine(f"rustbrain?batch_verify={flag}",
                               seed=CHECK_SEED)
        outcomes[flag] = [engine.repair(case.source, case.difficulty)
                          for case in cases]
        runs[flag] = DETECTOR_STATS.snapshot()["runs"]
    # A scored campaign exercises the other amortization layers too (the
    # exec-metric trace memo and batched scoring): strictly more
    # verification requests answered than interpreters executed.
    DETECTOR_STATS.reset()
    campaign = ensemble_campaign(dataset, seed=CHECK_SEED,
                                 executor="serial",
                                 arms=("gpt-4", "cascade")).run()
    counters = DETECTOR_STATS.snapshot()
    requests, executed = counters["requests"], counters["runs"]
    scored = sum(len(arm.reports) for arm in campaign.arms)
    checks = {
        "batch_verify_outcomes_identical": outcomes["on"] == outcomes["off"],
        "batched_verification_reduces_detector_runs":
            runs["on"] < runs["off"] and executed < requests,
    }
    summary = {
        "categories": sorted(cat.value for cat in VERIFY_CATEGORIES),
        "cases": len(cases),
        "rustbrain_detector_runs_unbatched": runs["off"],
        "rustbrain_detector_runs_batched": runs["on"],
        "campaign_cases": scored,
        "campaign_verification_requests": requests,
        "campaign_detector_runs": executed,
        "requests_per_case": round(requests / scored, 3),
        "runs_per_case": round(executed / scored, 3),
    }
    return checks, summary


def _fingerprint_checks() -> tuple[dict, dict]:
    """Fingerprint dedup: byte-identical outcomes, fewer runs per case.

    Runs one multi-arm multi-member campaign twice — once with the
    normalized-fingerprint layer on (the default: verifier dedup plus the
    process-wide case memo) and once with it off (``fingerprint=off``
    members, case memo disabled: the PR-4 engine code paths) — from
    identical cold memo states.  Repair outcomes must match byte for
    byte (member spec strings aside, which legitimately spell the
    override).  One layer cannot be switched: the exec-metric trace memo
    keys by fingerprint in both legs, so the off leg's run count is a
    lower bound on true PR-4 — the gated reduction is conservative.
    """
    from repro.core.evaluate import clear_trace_memo
    dataset = load_dataset().subset(FINGERPRINT_CATEGORIES)
    runs: dict[str, int] = {}
    stats: dict[str, dict] = {}
    payloads: dict[str, list] = {}
    for mode in ("off", "on"):
        clear_trace_memo()
        CASE_MEMO.clear()
        DETECTOR_STATS.reset()
        CASE_MEMO.enabled = mode == "on"
        try:
            result = ensemble_campaign(dataset, seed=CHECK_SEED,
                                       executor="serial",
                                       arms=FINGERPRINT_ARMS[mode]).run()
        finally:
            CASE_MEMO.enabled = True
        stats[mode] = DETECTOR_STATS.snapshot()
        runs[mode] = stats[mode]["runs"]
        payloads[mode] = [
            _strip_member_specs(report.to_dict())
            for arm in result.arms for report in arm.reports]
    # The campaign savings above can come entirely from exact-text memo
    # hits; the *normalized* layer needs its own exercise, or a silent
    # fingerprint regression (e.g. falling back to raw hashing) would
    # keep every gate green.  Batch each case source next to a
    # formatting-divergent spelling (a trailing comment guarantees the
    # texts differ while the AST cannot): every pair must interpret once,
    # through fingerprint hits specifically, with identical verdicts.
    from repro.miri import detect_ub_batch
    DETECTOR_STATS.reset()
    pairs = [(case.source, case.source + "\n// fingerprint probe\n")
             for case in dataset]
    reports = detect_ub_batch([source for pair in pairs for source in pair])
    probe = DETECTOR_STATS.snapshot()
    verdicts = [(r.passed, [e.kind.value for e in r.errors],
                 list(r.stdout)) for r in reports]
    normalized_identical = all(verdicts[i] == verdicts[i + 1]
                               for i in range(0, len(verdicts), 2))
    # Every probe's second spelling must be answered by a fingerprint
    # hit, and every request by a run or a hit (two corpus cases that
    # are themselves renaming-equivalent only shift runs into hits).
    normalized_once = (
        probe["fingerprint_hits"] >= len(pairs)
        and probe["runs"] + probe["fingerprint_hits"] == 2 * len(pairs))

    cases = len(dataset) * len(FINGERPRINT_ARMS["on"])
    checks = {
        "fingerprint_outcomes_byte_identical":
            json.dumps(payloads["on"], sort_keys=True)
            == json.dumps(payloads["off"], sort_keys=True),
        "fingerprint_reduces_detector_runs": runs["on"] < runs["off"],
        "normalized_duplicates_interpret_once":
            normalized_once and normalized_identical,
    }
    summary = {
        "categories": sorted(cat.value for cat in FINGERPRINT_CATEGORIES),
        "cases": len(dataset),
        "arms": list(FINGERPRINT_ARMS["on"]),
        "detector_stats": stats,
        "runs_per_case_fingerprint_off": round(runs["off"] / cases, 3),
        "runs_per_case_fingerprint_on": round(runs["on"] / cases, 3),
        "normalized_probe_pairs": len(pairs),
        "normalized_probe_fingerprint_hits": probe["fingerprint_hits"],
    }
    return checks, summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", type=pathlib.Path, default=None)
    parser.add_argument("--member-workers", type=int, default=1,
                        help="consult ensemble members in concurrent waves "
                             "of this width (identity gates only; skips "
                             "the full-corpus headline stage)")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    member_workers = args.member_workers
    out_path = args.output
    if out_path is None:
        out_path = DEFAULT_OUT if member_workers == 1 else \
            DEFAULT_OUT.with_name(f"BENCH_ensemble_mw{member_workers}.json")

    start = time.perf_counter()
    identity_checks, identity_summary = _identity_checks(member_workers)
    identity_secs = time.perf_counter() - start

    start = time.perf_counter()
    verify_checks, verify_summary = _verification_checks()
    verify_secs = time.perf_counter() - start

    start = time.perf_counter()
    fingerprint_checks, fingerprint_summary = _fingerprint_checks()
    fingerprint_secs = time.perf_counter() - start

    checks = {**identity_checks, **verify_checks, **fingerprint_checks}
    wall_seconds = {
        "identity": round(identity_secs, 4),
        "verification": round(verify_secs, 4),
        "fingerprint": round(fingerprint_secs, 4),
    }
    payload = {
        "schema": SCHEMA,
        "config": {
            "member_workers": member_workers,
            "standalone_arms": list(ENSEMBLE_STANDALONE_ARMS),
            "composite_arms": list(_composite_arms(member_workers)),
            "cases": len(load_dataset()),
        },
        "identity": identity_summary,
        "verification": verify_summary,
        "fingerprint": fingerprint_summary,
    }

    data = None
    if member_workers == 1:
        # The repeat-sampled headline sweep only gates the sequential
        # artifact; the member-workers variant is an execution-layer run.
        start = time.perf_counter()
        data = ensemble_data()
        wall_seconds["headline"] = round(time.perf_counter() - start, 4)

        best = ensemble_best_standalone(data)
        cascade = data["cascade"]
        standalone = {arm: data[arm] for arm in ENSEMBLE_STANDALONE_ARMS}
        checks.update({
            "cascade_beats_every_standalone_pass_rate": all(
                cascade.pass_rate > summary.pass_rate
                for summary in standalone.values()),
            "cascade_cheaper_than_best_single_model":
                cascade.mean_seconds < best.mean_seconds,
        })
        payload["config"]["seeds"] = list(DEFAULT_SEEDS)
        payload["arms"] = {
            label: {
                "pass_rate": round(summary.pass_rate, 4),
                "exec_rate": round(summary.exec_rate, 4),
                "mean_virtual_seconds": round(summary.mean_seconds, 2),
            }
            for label, summary in sorted(data.items())
        }
        payload["best_single_model"] = best.label

    payload["wall_seconds"] = wall_seconds
    payload["checks"] = checks

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path}")
    if data is not None:
        for label, summary in sorted(data.items()):
            print(f"  {label:12s} pass={100 * summary.pass_rate:5.1f}%  "
                  f"exec={100 * summary.exec_rate:5.1f}%  "
                  f"mean={summary.mean_seconds:7.1f}s virtual")
        print(f"  best single model: {payload['best_single_model']}")
    print(f"  verification: {verify_summary['runs_per_case']} detector "
          f"runs/case for {verify_summary['requests_per_case']} "
          f"requests/case")
    print(f"  fingerprint: "
          f"{fingerprint_summary['runs_per_case_fingerprint_on']} detector "
          f"runs/case vs "
          f"{fingerprint_summary['runs_per_case_fingerprint_off']} without "
          f"the dedup layer")
    print(f"  checks: {checks}")
    if not all(checks.values()):
        print("ensemble smoke FAILED gates", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
