#!/usr/bin/env python3
"""Model-portfolio smoke: ensembles vs standalone profiles, with hard gates.

Two stages, one artifact (``BENCH_ensemble.json``, schema
``repro.bench_ensemble/1``):

1. **Execution-layer checks** on a three-category subset: the
   ``{portfolio, cascade, switch}`` arms run byte-identically under
   ``executor="serial"`` and ``executor="process"``, and a warm re-run on
   the result cache replays every case — zero engine (and therefore zero
   ensemble-member) executions — with identical bytes and identical
   ``on_member_done`` telemetry counts.
2. **The headline claim** on the full corpus, repeat-sampled across
   seeds: the cascade arm (cheap GPT-3.5 pass first, full GPT-4 RustBrain
   only on failure) beats **every** standalone-model arm on pass rate at a
   lower mean virtual-clock latency than the best single model.

Wall-clock numbers are environment-dependent and NOT asserted; the
``checks`` block is a set of hard gates and the script exits non-zero if
any fails.

Run:  PYTHONPATH=src python benchmarks/ensemble_smoke.py [OUTPUT.json]
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import time

from repro.bench.figures import (DEFAULT_SEEDS, ENSEMBLE_COMPOSITE_ARMS,
                                 ENSEMBLE_STANDALONE_ARMS,
                                 ensemble_best_standalone, ensemble_campaign,
                                 ensemble_data)
from repro.corpus.dataset import load_dataset
from repro.engine import ResultCache
from repro.miri.errors import UbKind

SCHEMA = "repro.bench_ensemble/1"
DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_ensemble.json"

#: Identity-check subset: small enough for a serial reference run, wide
#: enough to exercise fast members, slow escalation, and switch routing.
CHECK_CATEGORIES = [UbKind.UNINIT, UbKind.PANIC, UbKind.STACK_BORROW]
CHECK_SEED = 3


def _arm_payload(result) -> str:
    return json.dumps([arm.to_dict() for arm in result.arms],
                      sort_keys=True)


def _identity_checks() -> tuple[dict, dict]:
    dataset = load_dataset().subset(CHECK_CATEGORIES)
    arms = ENSEMBLE_COMPOSITE_ARMS
    serial = ensemble_campaign(dataset, seed=CHECK_SEED, executor="serial",
                               arms=arms).run()
    with tempfile.TemporaryDirectory(prefix="repro-ensemble-smoke-") as tmp:
        cache = ResultCache(tmp)
        cold = ensemble_campaign(dataset, seed=CHECK_SEED,
                                 executor="process", workers=4,
                                 cache=cache, arms=arms).run()
        warm = ensemble_campaign(dataset, seed=CHECK_SEED,
                                 executor="process", workers=4,
                                 cache=cache, arms=arms).run()
    cases = len(dataset) * len(arms)
    # Cache hit/miss counts legitimately differ cold vs warm; the replayed
    # event stream (cases, rounds, per-member telemetry) must not.
    cold_events = {k: v for k, v in cold.telemetry.to_dict().items()
                   if not k.startswith("cache_")}
    warm_events = {k: v for k, v in warm.telemetry.to_dict().items()
                   if not k.startswith("cache_")}
    checks = {
        "process_matches_serial": _arm_payload(cold) == _arm_payload(serial),
        "warm_zero_member_executions":
            warm.telemetry.cache_counts() == (cases, 0)
            and _arm_payload(warm) == _arm_payload(cold)
            and warm_events == cold_events,
    }
    summary = {
        "categories": sorted(cat.value for cat in CHECK_CATEGORIES),
        "cases": len(dataset),
        "arms": list(arms),
        "members_finished": warm.telemetry.to_dict()["members_finished"],
        "warm_cache_hits": warm.telemetry.cache_counts()[0],
    }
    return checks, summary


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out_path = pathlib.Path(argv[0]) if argv else DEFAULT_OUT

    start = time.perf_counter()
    identity_checks, identity_summary = _identity_checks()
    identity_secs = time.perf_counter() - start

    start = time.perf_counter()
    data = ensemble_data()
    headline_secs = time.perf_counter() - start

    best = ensemble_best_standalone(data)
    cascade = data["cascade"]
    standalone = {arm: data[arm] for arm in ENSEMBLE_STANDALONE_ARMS}
    checks = {
        **identity_checks,
        "cascade_beats_every_standalone_pass_rate": all(
            cascade.pass_rate > summary.pass_rate
            for summary in standalone.values()),
        "cascade_cheaper_than_best_single_model":
            cascade.mean_seconds < best.mean_seconds,
    }

    payload = {
        "schema": SCHEMA,
        "config": {
            "seeds": list(DEFAULT_SEEDS),
            "standalone_arms": list(ENSEMBLE_STANDALONE_ARMS),
            "composite_arms": list(ENSEMBLE_COMPOSITE_ARMS),
            "cases": len(load_dataset()),
        },
        "identity": identity_summary,
        "arms": {
            label: {
                "pass_rate": round(summary.pass_rate, 4),
                "exec_rate": round(summary.exec_rate, 4),
                "mean_virtual_seconds": round(summary.mean_seconds, 2),
            }
            for label, summary in sorted(data.items())
        },
        "best_single_model": best.label,
        "wall_seconds": {
            "identity": round(identity_secs, 4),
            "headline": round(headline_secs, 4),
        },
        "checks": checks,
    }

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path}")
    for label, summary in sorted(data.items()):
        print(f"  {label:12s} pass={100 * summary.pass_rate:5.1f}%  "
              f"exec={100 * summary.exec_rate:5.1f}%  "
              f"mean={summary.mean_seconds:7.1f}s virtual")
    print(f"  best single model: {best.label}  checks: {checks}")
    if not all(checks.values()):
        print("ensemble smoke FAILED gates", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
