#!/usr/bin/env python3
"""Corpus generator smoke: determinism, validation rates, scaled campaign.

Exercises the seeded synthetic corpus generator end to end and writes
``BENCH_corpus.json`` in a stable schema (``repro.bench_corpus/1``) so
successive PRs can track generation throughput and corpus health:

* **determinism** — the same ``(n, seed)`` generated twice must produce
  byte-identical ``repro.corpus/1`` manifests;
* **validation rates** — every requested case was emitted (the generator
  already rejects-and-resamples internally), an independent re-validation
  sample passes 100%, and no category's acceptance rate collapsed below
  ``MIN_CATEGORY_RATE`` (a template or operator regression shows up here
  as a rejection spike long before it exhausts the attempt budget);
* **scaled campaign leg** — the generated corpus drives a full
  ``llm_only`` campaign under the process executor, proving manifests
  flow through ``Dataset``/campaign/cache machinery unchanged at a scale
  the hand-written corpus cannot reach.

Two tiers share the checks: ``--quick`` (CI per-PR: {quick_n} cases,
small campaign) and the default full tier (benchmark job: ≥{full_n}
cases through the campaign leg).  Wall-clock numbers are recorded, never
asserted.

Run:  PYTHONPATH=src python benchmarks/corpus_smoke.py [--quick] [OUT.json]
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.corpus import generate_corpus, validate_case
from repro.corpus.manifest import manifest_bytes
from repro.engine import Campaign

SEED = 7
QUICK_N = 120
FULL_N = 1000
__doc__ = __doc__.format(quick_n=QUICK_N, full_n=FULL_N)

#: A healthy category accepts most candidates; rejection spikes past this
#: floor mean a template or mutation operator regressed.
MIN_CATEGORY_RATE = 0.5
#: Every REVALIDATE_STRIDE-th emitted case is independently re-validated.
REVALIDATE_STRIDE = 10

ENGINES = ["llm_only"]
WORKERS = 4
SHARD_SIZE = 16

SCHEMA = "repro.bench_corpus/1"
DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_corpus.json"


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in argv
    argv = [arg for arg in argv if arg != "--quick"]
    out_path = pathlib.Path(argv[0]) if argv else DEFAULT_OUT
    n = QUICK_N if quick else FULL_N

    start = time.perf_counter()
    cases, report = generate_corpus(n, SEED)
    first_secs = time.perf_counter() - start
    first_bytes = manifest_bytes(cases, report)

    start = time.perf_counter()
    again, again_report = generate_corpus(n, SEED)
    second_secs = time.perf_counter() - start
    deterministic = manifest_bytes(again, again_report) == first_bytes

    sample = cases[::REVALIDATE_STRIDE]
    revalidated = 0
    for case in sample:
        try:
            validate_case(case)
            revalidated += 1
        except Exception as exc:  # any failure is a hard gate below
            print(f"re-validation FAILED for {case.name}: {exc}",
                  file=sys.stderr)

    summary = report.to_dict()
    rates = {name: stats["validation_rate"]
             for name, stats in summary["categories"].items()}

    from repro.corpus.dataset import Dataset
    dataset = Dataset(tuple(cases))
    start = time.perf_counter()
    campaign = Campaign(ENGINES, dataset, seed=SEED, workers=WORKERS,
                        shard_size=SHARD_SIZE, executor="process")
    result = campaign.run()
    campaign_secs = time.perf_counter() - start
    campaign_cases = sum(len(arm.reports) for arm in result.arms)
    campaign_passed = sum(report_.passed for arm in result.arms
                          for report_ in arm.reports)

    checks = {
        "deterministic_manifest": deterministic,
        "all_requested_emitted": report.emitted == n,
        "revalidation_clean": revalidated == len(sample),
        "category_rates_healthy": all(
            rate is not None and rate >= MIN_CATEGORY_RATE
            for rate in rates.values()),
        "campaign_covered_corpus": campaign_cases == n,
    }
    payload = {
        "schema": SCHEMA,
        "tier": "quick" if quick else "full",
        "config": {
            "n": n,
            "seed": SEED,
            "engines": ENGINES,
            "workers": WORKERS,
            "shard_size": SHARD_SIZE,
            "min_category_rate": MIN_CATEGORY_RATE,
            "revalidate_stride": REVALIDATE_STRIDE,
        },
        "generation": {
            "emitted": report.emitted,
            "attempts": report.attempts,
            "wall_seconds": round(first_secs, 4),
            "second_run_wall_seconds": round(second_secs, 4),
            "cases_per_second": round(n / first_secs, 2)
            if first_secs > 0 else None,
            "manifest_bytes": len(first_bytes),
            "category_rates": rates,
            "categories": summary["categories"],
        },
        "revalidation": {
            "sampled": len(sample),
            "passed": revalidated,
        },
        "campaign": {
            "executor": "process",
            "cases": campaign_cases,
            "passed": campaign_passed,
            "pass_rate": round(campaign_passed / campaign_cases, 4)
            if campaign_cases else None,
            "wall_seconds": round(campaign_secs, 4),
        },
        "checks": checks,
    }

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path} (tier: {payload['tier']})")
    print(f"  generation: {n} cases in {first_secs:.1f}s "
          f"({payload['generation']['cases_per_second']}/s), "
          f"{report.attempts} attempts")
    print(f"  campaign:   {campaign_cases} cases in {campaign_secs:.1f}s, "
          f"{campaign_passed} passed")
    print(f"  checks: {checks}")
    if not all(checks.values()):
        print("corpus smoke FAILED correctness checks", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
