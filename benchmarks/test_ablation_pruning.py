"""Ablation: Algorithm-1 AST pruning on vs off for the knowledge base
(DESIGN.md ablation #2).

Shape claims: pruning removes UB-irrelevant noise before embedding, so the
pruned configuration should retrieve better and repair at least as well.
Retrieval precision is asserted directly; end-to-end rates secondarily.
"""

from repro.bench.figures import ablation_pruning
from repro.bench.reporting import render_table
from repro.core.knowledge import KnowledgeBase, vectorize
from repro.core.pruning import prune_program
from repro.corpus.dataset import load_dataset
from repro.lang import parse_program
from repro.miri import detect_ub


def _retrieval_hit_rate(use_pruning: bool) -> float:
    kb = KnowledgeBase.default(use_pruning=use_pruning)
    dataset = load_dataset()
    hits = 0
    for case in dataset:
        program = parse_program(case.source)
        report = detect_ub(case.source)
        target = prune_program(program, report.errors) if use_pruning \
            else program
        hints = kb.hint_rules(vectorize(target), k=3)
        hits += any(h in set(case.strategy_rules()) for h in hints)
    return hits / len(dataset)


def test_ablation_pruning(benchmark, save_artifact):
    data = benchmark.pedantic(ablation_pruning, rounds=1, iterations=1)
    pruned_hit = _retrieval_hit_rate(True)
    raw_hit = _retrieval_hit_rate(False)

    rows = [
        ["pruned (Algorithm 1)", f"{100 * pruned_hit:.1f}",
         f"{100 * data['pruned_kb'].pass_rate:.1f}",
         f"{100 * data['pruned_kb'].exec_rate:.1f}"],
        ["unpruned", f"{100 * raw_hit:.1f}",
         f"{100 * data['unpruned_kb'].pass_rate:.1f}",
         f"{100 * data['unpruned_kb'].exec_rate:.1f}"],
    ]
    table = render_table(
        ["embedding", "KB top-3 hit %", "pass %", "exec %"],
        rows, title="Ablation — AST pruning for KB retrieval")
    save_artifact("ablation_pruning.txt", table)

    # Retrieval precision: pruning must clearly win on noisy programs.
    assert pruned_hit > raw_hit + 0.05, (pruned_hit, raw_hit)
    # End-to-end: pruning should not hurt.
    assert data["pruned_kb"].pass_rate >= data["unpruned_kb"].pass_rate - 0.05
