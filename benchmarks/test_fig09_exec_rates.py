"""Fig. 9 (RQ2): semantic-acceptability (exec) rate, per category.

Reproduced shape claims:

* GPT-4+RustBrain(+KB) averages ≈ 80% exec (paper: 80.4%) and leads;
* the non-knowledge variant trails it (paper: 70.2%);
* exec is always ≤ pass for every arm (definitionally, and the paper's
  figures show the same ordering);
* standalone models' exec rates trail their framework counterparts.
"""

from repro.bench.figures import fig8_fig9_data
from repro.bench.reporting import category_label, render_table
from repro.miri.errors import PAPER_CATEGORIES


def test_fig9_exec_rates(benchmark, save_artifact):
    data = benchmark.pedantic(fig8_fig9_data, rounds=1, iterations=1)

    headers = ["category"] + list(data.keys())
    rows = []
    for category in PAPER_CATEGORIES:
        row = [category_label(category)]
        for arm in data.values():
            rate = arm.exec_by_category.get(category, 0.0)
            row.append(f"{100 * rate:.0f}")
        rows.append(row)
    rows.append(["AVERAGE"] + [f"{100 * arm.exec_rate:.1f}"
                               for arm in data.values()])
    table = render_table(headers, rows,
                         title="Fig. 9 — semantic acceptability (exec) rate (%)")
    save_artifact("fig09_exec_rates.txt", table)

    best = data["gpt-4+RustBrain"]
    no_kb = data["gpt-4+RustBrain(non knowledge)"]

    # Headline: ≈ 80.4% with KB; KB beats non-KB on exec.
    assert 0.70 <= best.exec_rate <= 0.95, best.exec_rate
    assert best.exec_rate >= no_kb.exec_rate

    # exec ≤ pass for every arm.
    for arm in data.values():
        assert arm.exec_rate <= arm.pass_rate + 1e-9

    # Framework exec gains over the standalone models.
    assert best.exec_rate - data["gpt-4"].exec_rate >= 0.20
    assert data["gpt-3.5+RustBrain"].exec_rate \
        - data["gpt-3.5"].exec_rate >= 0.25
    assert data["claude-3.5+RustBrain"].exec_rate \
        - data["claude-3.5"].exec_rate >= 0.10
