"""Fig. 7 (RQ1): RustBrain flexibly fixes UBs.

Ten fast-thinking solutions for one semantic-modification UB, executed and
verified independently. Reproduced shape claims:

(i)  diverse solutions for the same problem (≥3 distinct agent orderings);
(ii) knowledge-base groups cost a multiple of the non-KB groups (the paper
     reports 2x-4x overhead);
(iii) several groups pass, and at least one passing group is semantically
      acceptable (red in the paper's figure).
"""

from repro.bench.figures import fig7_flexibility
from repro.bench.reporting import render_table


def test_fig7_flexibility(benchmark, save_artifact):
    groups = benchmark.pedantic(fig7_flexibility, rounds=1, iterations=1)

    rows = []
    for g in groups:
        rows.append([
            f"G{g.group}",
            "KB" if g.used_knowledge_base else "--",
            " > ".join(a.replace("safe_replacement", "repl")
                       .replace("assertion", "asrt")
                       .replace("modification", "mod") for a in g.agents),
            "pass" if g.passed else "fail",
            "exec" if g.acceptable else ("miri-only" if g.passed else "-"),
            f"{g.seconds:.1f}s",
        ])
    table = render_table(
        ["group", "kb", "agent order", "miri", "semantics", "time"],
        rows, title="Fig. 7 — ten fast-thinking solutions for one UB")
    save_artifact("fig07_flexibility.txt", table)

    # (i) diversity of generated solutions.
    orders = {tuple(g.rules) for g in groups}
    assert len(orders) >= 3, "fast thinking must generate diverse solutions"

    # (ii) KB groups cost a multiple of non-KB groups (paper: 2x-4x).
    kb_time = [g.seconds for g in groups if g.used_knowledge_base]
    no_kb_time = [g.seconds for g in groups if not g.used_knowledge_base]
    ratio = (sum(kb_time) / len(kb_time)) / (sum(no_kb_time) / len(no_kb_time))
    assert 1.3 <= ratio <= 6.0, f"KB overhead ratio {ratio:.2f} out of band"

    # (iii) several groups pass; at least one is semantically acceptable.
    assert sum(g.passed for g in groups) >= 3
    assert any(g.acceptable for g in groups)
