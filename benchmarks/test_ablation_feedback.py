"""Ablation: the fast/slow feedback mechanism on vs off (§III-C,
DESIGN.md ablation #3).

Shape claims: with feedback, repairs of recurring error shapes recall
previously verified plans, so (a) feedback hits occur on a dataset with
similar cases, (b) the feedback arm's pass rate does not degrade, and
(c) repairs that used feedback are cheaper than the arm's average repair
(the Table I "red cells" effect: reduced KB dependency and overhead).
"""

from repro.bench.figures import ablation_feedback
from repro.bench.reporting import render_table
from repro.bench.stats import mean


def test_ablation_feedback(benchmark, save_artifact):
    data = benchmark.pedantic(ablation_feedback, rounds=1, iterations=1)

    with_fb = data["with_feedback"]
    without = data["no_feedback"]

    fb_used = [r for run in with_fb.results for r in run.results
               if r.used_feedback]
    fb_unused = [r for run in with_fb.results for r in run.results
                 if not r.used_feedback]

    rows = [
        ["with_feedback", f"{100 * with_fb.pass_rate:.1f}",
         f"{100 * with_fb.exec_rate:.1f}", f"{with_fb.mean_seconds:.1f}s",
         str(len(fb_used))],
        ["no_feedback", f"{100 * without.pass_rate:.1f}",
         f"{100 * without.exec_rate:.1f}", f"{without.mean_seconds:.1f}s",
         "0"],
    ]
    table = render_table(
        ["arm", "pass %", "exec %", "mean time", "feedback hits"],
        rows, title="Ablation — feedback mechanism")
    save_artifact("ablation_feedback.txt", table)

    # (a) the corpus contains similar cases, so feedback must actually fire.
    assert len(fb_used) >= 3

    # (b) feedback does not degrade repair quality.
    assert with_fb.pass_rate >= without.pass_rate - 0.05

    # (c) feedback-assisted repairs are cheaper than unassisted ones.
    if fb_used and fb_unused:
        assert mean([r.seconds for r in fb_used]) \
            < mean([r.seconds for r in fb_unused])
