"""Ablation: number of fast-thinking candidate solutions (RQ1's flexibility
argument, DESIGN.md ablation #4).

Shape claims: a single-solution pipeline (the fixed-process failure mode the
paper criticises) passes less often than the multi-solution configurations;
returns diminish beyond a handful of solutions while overhead keeps rising.
"""

from repro.bench.figures import ablation_solutions
from repro.bench.reporting import render_table


def test_ablation_solutions(benchmark, save_artifact):
    data = benchmark.pedantic(ablation_solutions, rounds=1, iterations=1)

    rows = [[name,
             f"{100 * arm.pass_rate:.1f}",
             f"{100 * arm.exec_rate:.1f}",
             f"{arm.mean_seconds:.1f}s"]
            for name, arm in data.items()]
    table = render_table(["solutions", "pass %", "exec %", "mean time"],
                         rows, title="Ablation — fast-thinking solution count")
    save_artifact("ablation_solutions.txt", table)

    one = data["n=1"]
    six = data["n=6"]
    ten = data["n=10"]

    # Multiple solutions beat the single-option pipeline.
    assert six.pass_rate > one.pass_rate

    # Diminishing returns: n=10 gains little over n=6.
    assert abs(ten.pass_rate - six.pass_rate) <= 0.08
