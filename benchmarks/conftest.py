"""Shared benchmark fixtures: artifact directory + rendering helper.

Every benchmark regenerates one of the paper's tables/figures, asserts the
paper-shape claims (who wins, by roughly what factor, where crossovers sit)
and writes the rendered artifact to ``benchmarks/out/`` for EXPERIMENTS.md.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def save_artifact(artifact_dir):
    def _save(name: str, text: str) -> None:
        (artifact_dir / name).write_text(text + "\n")
        print(f"\n{text}\n")
    return _save
