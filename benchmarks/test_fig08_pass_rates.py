"""Fig. 8 (RQ2): repair pass-by-Miri rate, per category, seven arms.

Reproduced shape claims:

* GPT-4+RustBrain(+KB) is the best arm, averaging ≈ 94% (paper: 94.3%);
* the non-knowledge variant lands ≈ 90% (paper: 90.5%) below it;
* framework arms improve ≥ 20 points over their standalone models
  (paper: 25-35% for GPT-4);
* GPT-3.5+RustBrain reaches the same band as GPT-4+RustBrain's vicinity
  while standalone GPT-3.5 is far below.
"""

from repro.bench.figures import fig8_fig9_data
from repro.bench.reporting import category_label, render_table
from repro.miri.errors import PAPER_CATEGORIES


def test_fig8_pass_rates(benchmark, save_artifact):
    data = benchmark.pedantic(fig8_fig9_data, rounds=1, iterations=1)

    headers = ["category"] + list(data.keys())
    rows = []
    for category in PAPER_CATEGORIES:
        row = [category_label(category)]
        for arm in data.values():
            rate = arm.pass_by_category.get(category, 0.0)
            row.append(f"{100 * rate:.0f}")
        rows.append(row)
    rows.append(["AVERAGE"] + [f"{100 * arm.pass_rate:.1f}"
                               for arm in data.values()])
    table = render_table(headers, rows,
                         title="Fig. 8 — pass-by-Miri rate (%)")
    save_artifact("fig08_pass_rates.txt", table)

    best = data["gpt-4+RustBrain"]
    no_kb = data["gpt-4+RustBrain(non knowledge)"]
    gpt4 = data["gpt-4"]
    gpt35 = data["gpt-3.5"]
    gpt35_rb = data["gpt-3.5+RustBrain"]
    claude = data["claude-3.5"]
    claude_rb = data["claude-3.5+RustBrain"]

    # Headline: +KB ≈ 94.3%, non-KB ≈ 90.5%.
    assert 0.88 <= best.pass_rate <= 1.0, best.pass_rate
    assert 0.82 <= no_kb.pass_rate <= 0.97, no_kb.pass_rate
    assert best.pass_rate >= no_kb.pass_rate

    # Framework gains over standalone models (paper: 25-35 pts for GPT-4).
    assert best.pass_rate - gpt4.pass_rate >= 0.20
    assert gpt35_rb.pass_rate - gpt35.pass_rate >= 0.30
    assert claude_rb.pass_rate - claude.pass_rate >= 0.10

    # GPT-3.5+RustBrain compensates for the weak base model.
    assert gpt35_rb.pass_rate >= gpt4.pass_rate

    # Claude+RustBrain stays below GPT-4+RustBrain (complex dependencies).
    assert claude_rb.pass_rate < best.pass_rate
