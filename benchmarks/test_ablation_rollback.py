"""Ablation: adaptive rollback vs rollback-to-initial vs no rollback
(§III-B2's mechanism, DESIGN.md ablation #1).

Shape claims: the adaptive policy keeps partial corrections, so it should
(a) pass at least as often as rolling back to the initial state, and
(b) clearly beat running with no rollback at all (hallucination propagation).
"""

from repro.bench.figures import ablation_rollback
from repro.bench.reporting import render_table


def test_ablation_rollback(benchmark, save_artifact):
    data = benchmark.pedantic(ablation_rollback, rounds=1, iterations=1)

    rows = [[name,
             f"{100 * arm.pass_rate:.1f}",
             f"{100 * arm.exec_rate:.1f}",
             f"{arm.mean_seconds:.1f}s"]
            for name, arm in data.items()]
    table = render_table(["policy", "pass %", "exec %", "mean time"],
                         rows, title="Ablation — rollback policies")
    save_artifact("ablation_rollback.txt", table)

    adaptive = data["adaptive"]
    initial = data["rollback_to_initial"]
    none = data["no_rollback"]

    assert adaptive.pass_rate >= none.pass_rate
    assert adaptive.pass_rate >= initial.pass_rate - 0.03
    # The paper's overhead argument: rollback-to-initial discards partial
    # progress, so it should not be cheaper AND better simultaneously.
    assert not (initial.pass_rate > adaptive.pass_rate
                and initial.mean_seconds < adaptive.mean_seconds)
