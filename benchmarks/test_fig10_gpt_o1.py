"""Fig. 10 (RQ2): GPT-O1+RustBrain vs GPT-4+RustBrain on the reduced subset.

Reproduced shape claims:

* despite O1's stronger raw reasoning, its repair effectiveness inside
  RustBrain stays at or below GPT-4+RustBrain overall;
* on uncommon error shapes — panic above all — O1 fails to tailor solutions
  from code features: GPT-4+RustBrain leads the panic exec rate by a wide
  margin (paper: +35.6%).
"""

from repro.bench.figures import FIG10_CATEGORIES, fig10_data
from repro.bench.reporting import category_label, render_table
from repro.miri.errors import UbKind


def test_fig10_gpt_o1(benchmark, save_artifact):
    data = benchmark.pedantic(fig10_data, rounds=1, iterations=1)

    gpt4 = data["GPT-4+RustBrain"]
    o1 = data["GPT-O1+RustBrain"]

    headers = ["category", "GPT-4 pass", "O1 pass", "GPT-4 exec", "O1 exec"]
    rows = []
    for category in FIG10_CATEGORIES:
        rows.append([
            category_label(category),
            f"{100 * gpt4.pass_by_category.get(category, 0):.0f}",
            f"{100 * o1.pass_by_category.get(category, 0):.0f}",
            f"{100 * gpt4.exec_by_category.get(category, 0):.0f}",
            f"{100 * o1.exec_by_category.get(category, 0):.0f}",
        ])
    rows.append(["AVERAGE",
                 f"{100 * gpt4.pass_rate:.1f}", f"{100 * o1.pass_rate:.1f}",
                 f"{100 * gpt4.exec_rate:.1f}", f"{100 * o1.exec_rate:.1f}"])
    table = render_table(headers, rows,
                         title="Fig. 10 — GPT-O1 comparison (reduced subset)")
    save_artifact("fig10_gpt_o1.txt", table)

    # O1's repair effectiveness stays at or below GPT-4's inside RustBrain.
    assert o1.exec_rate <= gpt4.exec_rate + 0.03

    # The panic gap: GPT-4+RustBrain leads by a wide margin (paper: +35.6%).
    gpt4_panic = gpt4.exec_by_category.get(UbKind.PANIC, 0.0)
    o1_panic = o1.exec_by_category.get(UbKind.PANIC, 0.0)
    assert gpt4_panic - o1_panic >= 0.20, (gpt4_panic, o1_panic)
