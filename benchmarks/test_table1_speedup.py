"""Table I (RQ4): execution time of RustBrain against human experts.

Reproduced shape claims:

* the knowledge-base configuration costs more time than the non-knowledge
  one in the aggregate (paper: 84.9s vs 62.6s);
* RustBrain is several times faster than the human expert on average
  (paper: 7.4x) and the gap widens on the expertise-heavy categories
  (func. calls is the paper's 18.1x extreme);
* no category is slower than the human expert by more than a small factor.
"""

from repro.bench.figures import table1_average, table1_data
from repro.bench.reporting import category_label, render_table
from repro.miri.errors import UbKind


def test_table1_speedup(benchmark, save_artifact):
    rows = benchmark.pedantic(table1_data, rounds=1, iterations=1)

    rendered = []
    for row in rows:
        rendered.append([
            category_label(row.category),
            f"{row.no_knowledge_seconds:.0f}",
            f"{row.knowledge_seconds:.0f}",
            f"{row.human_seconds:.0f}",
            f"{row.speedup:.1f}x",
        ])
    avg = table1_average(rows)
    rendered.append(["Average",
                     f"{avg.no_knowledge_seconds:.1f}",
                     f"{avg.knowledge_seconds:.1f}",
                     f"{avg.human_seconds:.0f}",
                     f"{avg.speedup:.1f}x"])
    table = render_table(
        ["type", "no-KB s", "KB s", "human s", "speedup"],
        rendered, title="Table I — execution time vs human experts")
    save_artifact("table1_speedup.txt", table)

    # KB costs more time than non-KB in aggregate (paper: 84.9 vs 62.6).
    assert avg.knowledge_seconds > avg.no_knowledge_seconds

    # Average speedup lands in the paper's band (7.4x; ours may run hotter).
    assert 3.0 <= avg.speedup <= 20.0, avg.speedup

    # The widest speedups should be on expertise-heavy categories —
    # func_call has the largest human time, so it must beat the average.
    by_cat = {row.category: row for row in rows}
    assert by_cat[UbKind.FUNC_CALL].speedup > avg.speedup

    # Sanity: RustBrain is not slower than the human anywhere by > 2x.
    for row in rows:
        if row.no_knowledge_seconds > 0:
            assert row.no_knowledge_seconds < row.human_seconds * 2.0, \
                row.category
