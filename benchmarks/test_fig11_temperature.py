"""Fig. 11 (RQ3): temperature sensitivity with 95% confidence intervals.

Reproduced shape claims:

* both pass and exec peak around T = 0.5 (paper: 97% / 77% at the peak);
* very low temperatures under-explore (pass drops);
* high temperatures erode semantic integrity (exec drops from the peak,
  e.g. at 0.7 in the paper).
"""

from repro.bench.figures import FIG11_TEMPERATURES, fig11_data
from repro.bench.reporting import render_table


def test_fig11_temperature(benchmark, save_artifact):
    points = benchmark.pedantic(fig11_data, rounds=1, iterations=1)

    rows = []
    for point in points:
        rows.append([
            f"{point.temperature:.1f}",
            f"{100 * point.pass_ci.rate:.1f}",
            f"[{100 * point.pass_ci.low:.1f}, {100 * point.pass_ci.high:.1f}]",
            f"{100 * point.exec_ci.rate:.1f}",
            f"[{100 * point.exec_ci.low:.1f}, {100 * point.exec_ci.high:.1f}]",
        ])
    table = render_table(
        ["T", "pass %", "pass 95% CI", "exec %", "exec 95% CI"],
        rows, title="Fig. 11 — temperature sweep (GPT-4+RustBrain)")
    save_artifact("fig11_temperature.txt", table)

    by_temp = {p.temperature: p for p in points}
    mid = by_temp[0.5]

    # Peak neighbourhood: T=0.5 beats the extremes on both metrics.
    assert mid.pass_ci.rate >= by_temp[0.1].pass_ci.rate
    assert mid.pass_ci.rate >= by_temp[0.9].pass_ci.rate
    assert mid.exec_ci.rate >= by_temp[0.9].exec_ci.rate + 0.02

    # The global maximum of each metric sits in the central region.
    best_pass_temp = max(points, key=lambda p: p.pass_ci.rate).temperature
    best_exec_temp = max(points, key=lambda p: p.exec_ci.rate).temperature
    assert 0.2 <= best_pass_temp <= 0.8
    assert 0.2 <= best_exec_temp <= 0.8

    # CIs are genuine intervals.
    for point in points:
        assert point.pass_ci.low <= point.pass_ci.rate <= point.pass_ci.high
