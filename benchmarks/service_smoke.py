#!/usr/bin/env python3
"""Repair-service smoke: the asyncio front door, with hard gates.

Stages, one artifact (``BENCH_service.json``, schema
``repro.bench_service/1`` — see docs/reference.md):

1. **Identity**: for every case in a UNINIT subset and for both a fast
   (``llm_only``) and a composite (``cascade``) arm, a ``POST /repair``
   round-trip returns a report byte-identical to the one a batch
   :class:`~repro.engine.campaign.Campaign` produces for the same
   ``(spec, seed, source)`` — serving is a transport, not a fork of the
   execution semantics.
2. **Duplicate-heavy load**: waves of identical concurrent requests per
   case against a cache-backed server.  Records sustained RPS and
   p50/p99 latency, and gates that in-flight duplicates coalesce
   (hit rate > 0), that a repeat round is answered from the shared
   :class:`~repro.engine.cache.ResultCache`, and that every duplicate
   receives the same report bytes as its leader.
3. **Admission**: a tight token bucket answers the burst overflow with
   429 + ``Retry-After``; a one-deep queue with a deliberately slowed
   worker answers saturation with 503 + ``Retry-After``.  (The slow
   executor is confined to this stage — admission is bucket/queue math,
   not engine throughput.)
4. **Shutdown**: after ``stop()`` on every server above, the injected
   :class:`~repro.engine.pool.ExecutorService`'s core budget reads
   ``in_use == 0`` — the lifetime worker-pool leases are released, zero
   leaked.

Wall-clock numbers (RPS, latency) are environment-dependent and NOT
asserted; the ``checks`` block is a set of hard gates and the script
exits non-zero if any fails.

Run:  PYTHONPATH=src python benchmarks/service_smoke.py \
          [--quick] [OUTPUT.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
import tempfile
import threading
import time

from repro.corpus.dataset import Dataset, load_dataset
from repro.engine import Campaign, ResultCache
from repro.engine.pool import CoreBudget, ExecutorService
from repro.miri.errors import UbKind
from repro.service import client, jobs
from repro.service.server import RepairServer

SCHEMA = "repro.bench_service/1"
DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_service.json"

HOST = "127.0.0.1"
CHECK_SEED = 3
#: Identity + load subset: one category keeps the serial reference run
#: (two arms × every case) fast enough for CI.
CHECK_CATEGORIES = [UbKind.UNINIT]
IDENTITY_ARMS = ("llm_only", "cascade")


def _payload(case, index: int, *, engine: str, **extra) -> dict:
    payload = {"source": case.source, "engine": engine,
               "seed": CHECK_SEED, "index": index, "name": case.name,
               "difficulty": case.difficulty,
               "category": case.category.value,
               "reference_source": case.fixed_source}
    payload.update(extra)
    return payload


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


async def _identity_stage(cases, service) -> tuple[dict, dict]:
    """Batch campaign vs per-case POSTs: byte-compare every report."""
    dataset = Dataset(tuple(cases))
    campaign = Campaign(list(IDENTITY_ARMS), dataset, seed=CHECK_SEED,
                        executor="serial").run()
    # campaign.arms preserves the order of the arm list it was given;
    # arm labels differ from spec strings (llm_only → bare model name).
    batch = {spec: [report.to_dict() for report in arm.reports]
             for spec, arm in zip(IDENTITY_ARMS, campaign.arms)}

    served: dict[str, list] = {arm: [] for arm in IDENTITY_ARMS}
    server = RepairServer(host=HOST, port=0, executor_service=service)
    await server.start()
    try:
        for arm in IDENTITY_ARMS:
            for index, case in enumerate(cases):
                response = await client.post_repair(
                    HOST, server.port, _payload(case, index, engine=arm))
                if response.status != 200:
                    raise RuntimeError(f"identity POST failed: "
                                       f"{response.status} {response.json()}")
                served[arm].append(response.json()["report"])
    finally:
        await server.stop()

    matches = {arm: json.dumps(served[arm], sort_keys=True)
               == json.dumps(batch[arm], sort_keys=True)
               for arm in IDENTITY_ARMS}
    checks = {"service_reports_byte_identical_to_batch":
              all(matches.values())}
    summary = {"arms": list(IDENTITY_ARMS), "cases": len(cases),
               "requests": len(cases) * len(IDENTITY_ARMS),
               "matches": matches}
    return checks, summary


async def _load_stage(cases, service, duplicates: int) -> tuple[dict, dict]:
    """Duplicate-heavy waves against a cache-backed server."""
    latencies: list[float] = []

    async def timed_post(server, payload):
        start = time.perf_counter()
        response = await client.post_repair(HOST, server.port, payload)
        latencies.append(time.perf_counter() - start)
        return response

    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp:
        server = RepairServer(host=HOST, port=0, rate=0.0,
                              max_queue=max(32, duplicates * len(cases)),
                              cache=ResultCache(tmp),
                              executor_service=service)
        await server.start()
        try:
            wall_start = time.perf_counter()
            divergent = []  # duplicates whose report differed from leader's
            # Wave 1: per case, `duplicates` identical concurrent posts —
            # one execution, the rest coalesce onto it (or hit the cache
            # if they land after it finished).
            for index, case in enumerate(cases):
                payload = _payload(case, index, engine="rustbrain?kb=off")
                responses = await asyncio.gather(*(
                    timed_post(server, payload) for _ in range(duplicates)))
                bodies = [response.json() for response in responses]
                if any(response.status != 200 for response in responses):
                    raise RuntimeError(f"load POST failed: {bodies}")
                reports = {json.dumps(body["report"], sort_keys=True)
                           for body in bodies}
                if len(reports) != 1:
                    divergent.append(case.name)
            # Wave 2: the same requests again, sequentially — nothing is
            # in flight anymore, so these exercise the cache tier.
            for index, case in enumerate(cases):
                payload = _payload(case, index, engine="rustbrain?kb=off")
                response = await timed_post(server, payload)
                if response.status != 200:
                    raise RuntimeError(f"cache POST failed: "
                                       f"{response.json()}")
            wall = time.perf_counter() - wall_start
            stats = server.stats()
        finally:
            await server.stop()

    requests = len(latencies)
    ordered = sorted(latencies)
    coalescing = stats["coalescing"]
    cache = stats["cache"]
    checks = {
        "load_duplicates_coalesce": coalescing["hit_rate"] > 0,
        "load_repeat_round_hits_cache": cache["hits"] >= len(cases),
        "load_duplicate_reports_identical": not divergent,
        "load_no_rejections_or_failures":
            stats["counters"]["rejected_rate"] == 0
            and stats["counters"]["rejected_queue"] == 0
            and stats["counters"]["failed"] == 0,
    }
    summary = {
        "cases": len(cases),
        "duplicates_per_case": duplicates,
        "requests": requests,
        "wall_seconds": round(wall, 4),
        "rps": round(requests / wall, 2) if wall else 0.0,
        "latency_p50_ms": round(1000 * _percentile(ordered, 0.50), 3),
        "latency_p99_ms": round(1000 * _percentile(ordered, 0.99), 3),
        "coalesced": coalescing["attached"],
        "executions": coalescing["executions"],
        "coalescing_hit_rate": round(coalescing["hit_rate"], 4),
        "cache_hits": cache["hits"],
        "cache_misses": cache["misses"],
        "divergent_duplicates": divergent,
    }
    return checks, summary


class _SlowExecutor:
    """Stage-3 stand-in for ``jobs.execute_repair``: holds every job on
    an event so queue depth is under test control, then delegates."""

    def __init__(self):
        self.release = threading.Event()
        self._real = jobs.execute_repair

    def __call__(self, config, *, cache=None, observer=None):
        self.release.wait(timeout=30)
        return self._real(config, cache=cache, observer=observer)


async def _admission_stage(cases, service) -> tuple[dict, dict]:
    """Deterministic 429 (token bucket) and 503 (bounded queue) paths."""
    # 429: burst of 2, then the third request from the same client must
    # be turned away with Retry-After advice.
    server = RepairServer(host=HOST, port=0, rate=0.5, burst=2.0,
                          executor_service=service)
    await server.start()
    try:
        statuses = []
        retry_after_429 = None
        for _ in range(3):
            response = await client.post_repair(
                HOST, server.port,
                _payload(cases[0], 0, engine="rustbrain?kb=off",
                         wait=False),
                client_id="smoke-burst")
            statuses.append(response.status)
            if response.status == 429:
                retry_after_429 = response.retry_after
        rate_stats = server.stats()
    finally:
        await server.stop()

    # 503: one worker held on an event, a one-deep queue — the third
    # distinct submission has nowhere to go.
    slow = _SlowExecutor()
    real = jobs.execute_repair
    jobs.execute_repair = slow
    try:
        server = RepairServer(host=HOST, port=0, rate=0.0, workers=1,
                              max_queue=1, executor_service=service)
        await server.start()
        try:
            overflow = []
            retry_after_503 = None
            for index in range(3):
                response = await client.post_repair(
                    HOST, server.port,
                    _payload(cases[index % len(cases)], index,
                             engine="rustbrain?kb=off", wait=False))
                overflow.append(response.status)
                if response.status == 503:
                    retry_after_503 = response.retry_after
            slow.release.set()
            queue_stats = server.stats()
        finally:
            await server.stop()
    finally:
        jobs.execute_repair = real

    checks = {
        "admission_burst_overflow_gets_429":
            statuses == [202, 202, 429] and retry_after_429 is not None
            and int(retry_after_429) >= 1,
        "admission_queue_overflow_gets_503":
            overflow == [202, 202, 503] and retry_after_503 is not None
            and int(retry_after_503) >= 1,
    }
    summary = {
        "burst_statuses": statuses,
        "retry_after_429_seconds": retry_after_429,
        "rate_limited": rate_stats["counters"]["rejected_rate"],
        "queue_statuses": overflow,
        "retry_after_503_seconds": retry_after_503,
        "queue_rejected": queue_stats["counters"]["rejected_queue"],
    }
    return checks, summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", type=pathlib.Path,
                        default=DEFAULT_OUT)
    parser.add_argument("--quick", action="store_true",
                        help="trim the load stage for CI (fewer cases, "
                             "smaller duplicate waves)")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    dataset = load_dataset().subset(CHECK_CATEGORIES)
    cases = list(dataset)
    if args.quick:
        cases = cases[:3]
    duplicates = 4 if args.quick else 6

    # One injected executor across every stage: its budget must read
    # zero leases after the final stop() for the shutdown gate to pass.
    service = ExecutorService(budget=CoreBudget(4))
    wall_seconds = {}
    try:
        async def stages():
            results = {}
            start = time.perf_counter()
            results["identity"] = await _identity_stage(cases, service)
            wall_seconds["identity"] = round(time.perf_counter() - start, 4)
            start = time.perf_counter()
            results["load"] = await _load_stage(cases, service, duplicates)
            wall_seconds["load"] = round(time.perf_counter() - start, 4)
            start = time.perf_counter()
            results["admission"] = await _admission_stage(cases, service)
            wall_seconds["admission"] = round(time.perf_counter() - start, 4)
            return results

        results = asyncio.run(stages())
        leases_in_use = service.budget.in_use
    finally:
        service.shutdown()

    checks = {}
    payload = {"schema": SCHEMA,
               "config": {"seed": CHECK_SEED,
                          "categories": sorted(c.value
                                               for c in CHECK_CATEGORIES),
                          "cases": len(cases),
                          "duplicates_per_case": duplicates,
                          "quick": args.quick}}
    for stage, (stage_checks, stage_summary) in results.items():
        checks.update(stage_checks)
        payload[stage] = stage_summary
    checks["shutdown_zero_leaked_leases"] = leases_in_use == 0
    payload["shutdown"] = {"budget_total": 4,
                           "leases_in_use_after_stop": leases_in_use}
    payload["wall_seconds"] = wall_seconds
    payload["checks"] = checks

    out_path = args.output
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path}")
    load = payload["load"]
    print(f"  load: {load['requests']} requests at {load['rps']} rps, "
          f"p50={load['latency_p50_ms']}ms p99={load['latency_p99_ms']}ms")
    print(f"  coalescing: {load['coalesced']} attached to "
          f"{load['executions']} executions "
          f"(hit rate {load['coalescing_hit_rate']}); "
          f"cache hits {load['cache_hits']}")
    print(f"  checks: {checks}")
    if not all(checks.values()):
        print("service smoke FAILED gates", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
