#!/usr/bin/env python3
"""Chaos smoke: fault injection, retry, crash-resume — with hard gates.

Legs, one artifact (``BENCH_faults.json``, schema ``repro.bench_faults/1``
— see docs/reference.md):

1. **LLM faults**: a serial campaign under ``llm:rate`` injection is
   byte-identical (arms *and* serialized telemetry) to the fault-free
   reference, and retries demonstrably happened.
2. **Worker crashes**: a process-pool campaign whose workers ``os._exit``
   under ``worker:crash`` injection re-dispatches the lost shards and
   still matches the reference byte-for-byte.
3. **Cache I/O faults**: a cache-backed campaign under ``cache:io``
   injection absorbs every disk error (degraded to misses, counted in
   ``io_errors``) and its outcomes still match the reference.
4. **Circuit breaker**: against an in-process server with a fake clock
   and a failing executor, the admission transcript is exactly the
   deterministic automaton: fail, fail, 503 (open), failed probe, 503,
   succeeding probe, 200 (closed).
5. **SIGKILL + resume**: a journaled campaign subprocess is killed with
   SIGKILL mid-run; ``repro campaign --resume`` replays the journal,
   re-executes zero journaled cases, and emits a ``campaign.json``
   byte-identical to an uninterrupted run's.

After every leg the shared core budget must read ``in_use == 0`` — no
fault path may leak an executor lease.

Wall-clock numbers are environment-dependent and NOT asserted; the
``checks`` block is a set of hard gates and the script exits non-zero if
any fails.

Run:  PYTHONPATH=src python benchmarks/chaos_smoke.py \
          [--quick] [OUTPUT.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

# The legs below must not inherit an ambient plan from the environment;
# the SIGKILL leg sets REPRO_FAULTS explicitly for its subprocess only.
os.environ.pop("REPRO_FAULTS", None)

from repro.corpus.dataset import load_dataset
from repro.engine import (Campaign, EXECUTOR_SERVICE, ResultCache,
                          RETRY_EVENTS)
from repro.engine.journal import JOURNAL_FILENAME
from repro.engine.pool import CoreBudget, ExecutorService
from repro.miri.errors import UbKind
from repro.service import client, jobs
from repro.service.server import RepairServer

SCHEMA = "repro.bench_faults/1"
DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_faults.json"

HOST = "127.0.0.1"
CHECK_SEED = 3
CHECK_CATEGORIES = [UbKind.UNINIT]
ENGINES = ["llm_only", "rustbrain?kb=off"]


def _arms_json(result) -> str:
    return json.dumps(result.to_dict()["arms"], sort_keys=True)


def _budget_clean() -> bool:
    return EXECUTOR_SERVICE.budget.in_use == 0


def _llm_faults_leg(dataset) -> tuple[dict, dict]:
    """Injected transient LLM errors: retried, byte-identical, observed."""
    reference = Campaign(ENGINES, dataset, seed=CHECK_SEED,
                         faults="").run()
    before = RETRY_EVENTS.counts().get("llm", 0)
    faulted = Campaign(ENGINES, dataset, seed=CHECK_SEED,
                       faults="llm:rate=0.3,seed=7").run()
    retries = RETRY_EVENTS.counts().get("llm", 0) - before
    identical = _arms_json(faulted) == _arms_json(reference)
    telemetry_identical = (faulted.to_dict()["telemetry"]
                           == reference.to_dict()["telemetry"])
    checks = {
        "llm_faults_byte_identical": identical and telemetry_identical,
        "llm_faults_retries_happened": retries > 0,
        "llm_faults_budget_clean": _budget_clean(),
    }
    summary = {"cases": len(dataset), "arms": ENGINES,
               "injected_retries": retries,
               "outcomes_identical": identical,
               "telemetry_identical": telemetry_identical}
    return checks, summary


def _worker_crash_leg(dataset) -> tuple[dict, dict]:
    """Workers killed mid-shard: re-dispatch recovers byte-identically."""
    reference = Campaign(ENGINES, dataset, seed=CHECK_SEED,
                         faults="").run()
    faulted = Campaign(ENGINES, dataset, seed=CHECK_SEED, workers=2,
                       shard_size=4, executor="process",
                       faults="worker:crash=0.4,seed=2").run()
    identical = _arms_json(faulted) == _arms_json(reference)
    redispatches = RETRY_EVENTS.counts().get("worker", 0)
    checks = {
        "worker_crash_byte_identical": identical,
        "worker_crash_budget_clean": _budget_clean(),
    }
    summary = {"cases": len(dataset), "crash_rate": 0.4,
               "outcomes_identical": identical,
               "redispatch_events_total": redispatches}
    return checks, summary


def _cache_io_leg(dataset) -> tuple[dict, dict]:
    """Injected cache I/O errors degrade to misses, never break a run."""
    reference = Campaign(ENGINES, dataset, seed=CHECK_SEED,
                         faults="").run()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-cache-") as tmp:
        cache = ResultCache(tmp)
        cold = Campaign(ENGINES, dataset, seed=CHECK_SEED, cache=cache,
                        faults="cache:io=0.5,seed=3").run()
        warm = Campaign(ENGINES, dataset, seed=CHECK_SEED, cache=cache,
                        faults="cache:io=0.5,seed=3").run()
        counts = cache.counts()
    cold_ok = _arms_json(cold) == _arms_json(reference)
    warm_ok = _arms_json(warm) == _arms_json(reference)
    checks = {
        "cache_io_outcomes_unaffected": cold_ok and warm_ok,
        "cache_io_errors_absorbed": counts["io_errors"] > 0,
        "cache_io_budget_clean": _budget_clean(),
    }
    summary = {"cases": len(dataset), "io_rate": 0.5,
               "cache_counts": counts,
               "cold_identical": cold_ok, "warm_identical": warm_ok}
    return checks, summary


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _breaker_leg(dataset) -> tuple[dict, dict]:
    """Deterministic breaker transcript against a failing executor."""
    case = list(dataset)[0]
    clock = _FakeClock()
    healthy = threading.Event()
    real = jobs.execute_repair

    def flaky(config, *, cache=None, observer=None):
        if not healthy.is_set():
            raise RuntimeError("engine down")
        return real(config, cache=cache, observer=observer)

    service = ExecutorService(budget=CoreBudget(2))
    jobs.execute_repair = flaky
    try:
        async def scenario():
            transcript = []
            retry_after = None
            server = RepairServer(host=HOST, port=0, rate=0,
                                  breaker_threshold=2,
                                  breaker_reset_seconds=5.0,
                                  executor_service=service, clock=clock)
            await server.start()
            try:
                async def post(index):
                    payload = {"source": case.source,
                               "engine": "rustbrain?kb=off",
                               "seed": CHECK_SEED, "index": index,
                               "name": case.name,
                               "category": case.category.value,
                               "difficulty": case.difficulty,
                               "reference_source": case.fixed_source}
                    response = await client.post_repair(HOST, server.port,
                                                        payload)
                    transcript.append(response.status)
                    return response

                await post(0)                   # failure 1 of 2
                await post(1)                   # failure 2 -> open
                rejected = await post(2)        # 503 while open
                retry_after = rejected.retry_after
                clock.now = 5.0                 # window elapses
                await post(3)                   # failing probe -> re-open
                await post(4)                   # 503 again
                clock.now = 10.0
                healthy.set()
                await post(5)                   # succeeding probe -> closed
                await post(6)                   # flows again
                stats = server.stats()
            finally:
                await server.stop()
            return transcript, retry_after, stats

        transcript, retry_after, stats = asyncio.run(scenario())
    finally:
        jobs.execute_repair = real
        service.shutdown()

    expected = [500, 500, 503, 500, 503, 200, 200]
    checks = {
        "breaker_transcript_deterministic": transcript == expected,
        "breaker_rejections_carry_retry_after":
            retry_after is not None and int(retry_after) >= 1,
        "breaker_recovers_closed": stats["breaker"]["state"] == "closed",
        "breaker_budget_clean":
            _budget_clean() and service.budget.in_use == 0,
    }
    summary = {"transcript": transcript, "expected": expected,
               "retry_after_seconds": retry_after,
               "rejected_breaker": stats["counters"]["rejected_breaker"],
               "breaker": stats["breaker"]}
    return checks, summary


_JOURNAL_LINE = re.compile(r"journal: (\d+) replayed, (\d+) appended")


def _sigkill_resume_leg(repo_root: pathlib.Path) -> tuple[dict, dict]:
    """SIGKILL a journaled campaign; resume must be byte-identical with
    zero re-executed journaled cases."""
    base_env = dict(os.environ)
    base_env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(repo_root / "src"),
                      base_env.get("PYTHONPATH", "")]))
    base_env.pop("REPRO_FAULTS", None)
    base_cmd = [sys.executable, "-m", "repro.cli", "campaign",
                "--engine", "llm_only", "--engine", "rustbrain?kb=off",
                "--category", "uninit", "--quiet"]

    with tempfile.TemporaryDirectory(prefix="repro-chaos-kill-") as tmp:
        tmp_path = pathlib.Path(tmp)
        reference_json = tmp_path / "reference.json"
        subprocess.run(base_cmd + ["--json", str(reference_json)],
                       env=base_env, check=True, capture_output=True)

        # The doomed run: journaled, slowed by worker:hang so SIGKILL
        # reliably lands mid-campaign.
        jdir = tmp_path / "journal"
        journal_path = jdir / JOURNAL_FILENAME
        doomed_env = dict(base_env)
        doomed_env["REPRO_FAULTS"] = "worker:hang=1,hang_seconds=0.3"
        doomed = subprocess.Popen(
            base_cmd + ["--journal", str(jdir)], env=doomed_env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        deadline = time.monotonic() + 120
        journaled_at_kill = 0
        while time.monotonic() < deadline:
            if journal_path.exists():
                lines = journal_path.read_text().splitlines()
                if len(lines) >= 3:  # header + >= 2 durable results
                    journaled_at_kill = len(lines) - 1
                    break
            if doomed.poll() is not None:
                break
            time.sleep(0.05)
        killed_midway = doomed.poll() is None
        if killed_midway:
            doomed.send_signal(signal.SIGKILL)
        doomed.wait(timeout=60)

        resumed_json = tmp_path / "resumed.json"
        resumed = subprocess.run(
            base_cmd + ["--resume", str(jdir), "--json", str(resumed_json)],
            env=base_env, capture_output=True, text=True)
        match = _JOURNAL_LINE.search(resumed.stdout)
        replayed, appended = ((int(match.group(1)), int(match.group(2)))
                              if match else (-1, -1))
        identical = (resumed_json.exists()
                     and resumed_json.read_bytes()
                     == reference_json.read_bytes())

    checks = {
        "sigkill_landed_mid_campaign": killed_midway,
        "sigkill_resume_byte_identical": resumed.returncode == 0
        and identical,
        # Every case durably journaled before the kill was replayed, not
        # re-executed; only the genuinely missing ones ran.
        "sigkill_zero_journaled_cases_reexecuted":
            replayed >= journaled_at_kill > 0,
        "sigkill_budget_clean": _budget_clean(),
    }
    summary = {"journaled_at_kill": journaled_at_kill,
               "resume_replayed": replayed,
               "resume_appended": appended,
               "resume_exit_code": resumed.returncode,
               "resume_identical_to_reference": identical}
    return checks, summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", type=pathlib.Path,
                        default=DEFAULT_OUT)
    parser.add_argument("--quick", action="store_true",
                        help="trim the case subset for CI")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    dataset = load_dataset().subset(CHECK_CATEGORIES)
    if args.quick:
        from repro.corpus.dataset import Dataset
        dataset = Dataset(tuple(list(dataset)[:4]))
    repo_root = pathlib.Path(__file__).resolve().parents[1]

    legs = [
        ("llm_faults", lambda: _llm_faults_leg(dataset)),
        ("worker_crash", lambda: _worker_crash_leg(dataset)),
        ("cache_io", lambda: _cache_io_leg(dataset)),
        ("breaker", lambda: _breaker_leg(dataset)),
        ("sigkill_resume", lambda: _sigkill_resume_leg(repo_root)),
    ]
    checks: dict = {}
    wall_seconds: dict = {}
    payload: dict = {
        "schema": SCHEMA,
        "config": {"seed": CHECK_SEED,
                   "categories": sorted(c.value for c in CHECK_CATEGORIES),
                   "cases": len(dataset), "quick": args.quick}}
    for name, leg in legs:
        start = time.perf_counter()
        leg_checks, leg_summary = leg()
        wall_seconds[name] = round(time.perf_counter() - start, 4)
        checks.update(leg_checks)
        payload[name] = leg_summary
    payload["wall_seconds"] = wall_seconds
    payload["checks"] = checks

    out_path = args.output
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path}")
    print(f"  llm retries injected: "
          f"{payload['llm_faults']['injected_retries']}; "
          f"cache io errors: "
          f"{payload['cache_io']['cache_counts']['io_errors']}")
    print(f"  breaker transcript: {payload['breaker']['transcript']}")
    print(f"  resume: {payload['sigkill_resume']['resume_replayed']} "
          f"replayed, {payload['sigkill_resume']['resume_appended']} "
          f"appended after SIGKILL at "
          f"{payload['sigkill_resume']['journaled_at_kill']} journaled")
    print(f"  checks: {checks}")
    if not all(checks.values()):
        print("chaos smoke FAILED gates", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
