#!/usr/bin/env python3
"""Campaign perf smoke: serial vs process pool, cold vs warm cache.

Times a fixed two-arm campaign under three configurations and writes the
trajectory to ``BENCH_campaign.json`` in a stable schema
(``repro.bench_campaign/1``) so successive PRs can track execution-layer
speedups and regressions per commit:

* ``serial_cold``  — executor="serial", no cache (the reference run);
* ``process_cold`` — executor="process", cold content-addressed cache;
* ``process_warm`` — same campaign again on the now-warm cache (must
  perform zero engine case executions).

Wall-clock numbers are environment-dependent and NOT asserted; the two
``checks`` are hard correctness gates (byte-identical arms across
backends, pure replay on a warm cache) and the script exits non-zero if
either fails.

Run:  PYTHONPATH=src python benchmarks/perf_smoke.py [OUTPUT.json]
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import time

from repro.corpus.dataset import load_dataset
from repro.engine import Campaign, ResultCache
from repro.miri.errors import UbKind

#: Fixed workload: two arms over three categories, enough cases to load a
#: small pool but quick enough for a per-PR CI step.
ENGINES = ["llm_only?batched=on", "rustbrain?kb=off"]
CATEGORIES = [UbKind.UNINIT, UbKind.PANIC, UbKind.DANGLING_POINTER]
SEED = 3
WORKERS = 4
SHARD_SIZE = 4

SCHEMA = "repro.bench_campaign/1"
DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_campaign.json"


def _timed_run(dataset, *, executor: str, workers: int,
               cache: ResultCache | None):
    campaign = Campaign(ENGINES, dataset, seed=SEED, workers=workers,
                        shard_size=SHARD_SIZE, executor=executor,
                        cache=cache)
    start = time.perf_counter()
    result = campaign.run()
    elapsed = time.perf_counter() - start
    return result, elapsed


def _arm_payload(result) -> str:
    return json.dumps([arm.to_dict() for arm in result.arms],
                      sort_keys=True)


def _run_entry(name: str, executor: str, workers: int, cached: bool,
               result, elapsed: float) -> dict:
    hits, misses = result.telemetry.cache_counts()
    return {
        "name": name,
        "executor": executor,
        "workers": workers,
        "cache": cached,
        "wall_seconds": round(elapsed, 4),
        "cache_hits": hits,
        "cache_misses": misses,
        "cases": sum(len(arm.reports) for arm in result.arms),
        "passed": sum(report.passed for arm in result.arms
                      for report in arm.reports),
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out_path = pathlib.Path(argv[0]) if argv else DEFAULT_OUT
    dataset = load_dataset().subset(CATEGORIES)

    serial, serial_secs = _timed_run(dataset, executor="serial", workers=1,
                                     cache=None)
    with tempfile.TemporaryDirectory(prefix="repro-perf-smoke-") as tmp:
        cache = ResultCache(tmp)
        cold, cold_secs = _timed_run(dataset, executor="process",
                                     workers=WORKERS, cache=cache)
        warm, warm_secs = _timed_run(dataset, executor="process",
                                     workers=WORKERS, cache=cache)

    total = sum(len(arm.reports) for arm in serial.arms)
    checks = {
        "process_matches_serial": _arm_payload(cold) == _arm_payload(serial),
        "warm_zero_executions":
            warm.telemetry.cache_counts() == (total, 0)
            and _arm_payload(warm) == _arm_payload(cold),
    }
    payload = {
        "schema": SCHEMA,
        "config": {
            "engines": ENGINES,
            "categories": sorted(cat.value for cat in CATEGORIES),
            "cases": len(dataset),
            "seed": SEED,
            "workers": WORKERS,
            "shard_size": SHARD_SIZE,
        },
        "runs": [
            _run_entry("serial_cold", "serial", 1, False, serial,
                       serial_secs),
            _run_entry("process_cold", "process", WORKERS, True, cold,
                       cold_secs),
            _run_entry("process_warm", "process", WORKERS, True, warm,
                       warm_secs),
        ],
        "speedups": {
            "process_vs_serial": round(serial_secs / cold_secs, 3)
            if cold_secs > 0 else None,
            "warm_vs_cold": round(cold_secs / warm_secs, 3)
            if warm_secs > 0 else None,
        },
        "checks": checks,
    }

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path}")
    for run in payload["runs"]:
        print(f"  {run['name']:13s} {run['wall_seconds']:8.3f}s  "
              f"cache {run['cache_hits']}h/{run['cache_misses']}m")
    print(f"  speedups: {payload['speedups']}  checks: {checks}")
    if not all(checks.values()):
        print("perf smoke FAILED correctness checks", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
