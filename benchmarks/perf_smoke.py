#!/usr/bin/env python3
"""Campaign perf smoke: serial vs process pool, cold vs warm cache.

Times a fixed two-arm campaign under three configurations and writes the
trajectory to ``BENCH_campaign.json`` in a stable schema
(``repro.bench_campaign/2``) so successive PRs can track execution-layer
speedups and regressions per commit:

* ``serial_cold``  — executor="serial", no cache (the reference run);
* ``process_cold`` — executor="process", cold content-addressed cache;
* ``process_warm`` — same campaign again on the now-warm cache (must
  perform zero engine case executions).

Schema ``/2`` adds a ``vm_vs_tree`` stage comparing the bytecode VM
against the reference tree-walking interpreter over the workload's
sources: compile cost, repeated-execution wall time per engine, the
resulting speedup, and a hard ``vm_matches_tree`` byte-identity gate
(kind, span, stdout, and step counts must agree in both collect modes).

Wall-clock numbers are environment-dependent and NOT asserted; the
``checks`` are hard correctness gates (byte-identical arms across
backends, pure replay on a warm cache, VM byte-identical to the
tree-walker) and the script exits non-zero if any fails.

Run:  PYTHONPATH=src python benchmarks/perf_smoke.py [OUTPUT.json]
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import time

from repro.corpus.dataset import load_dataset
from repro.engine import Campaign, ResultCache
from repro.miri.errors import UbKind

#: Fixed workload: two arms over three categories, enough cases to load a
#: small pool but quick enough for a per-PR CI step.
ENGINES = ["llm_only?batched=on", "rustbrain?kb=off"]
CATEGORIES = [UbKind.UNINIT, UbKind.PANIC, UbKind.DANGLING_POINTER]
SEED = 3
WORKERS = 4
SHARD_SIZE = 4
#: Repeated-execution sweeps for the vm_vs_tree stage (amortizes noise).
EXEC_SWEEPS = 5

SCHEMA = "repro.bench_campaign/2"
DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_campaign.json"


def _timed_run(dataset, *, executor: str, workers: int,
               cache: ResultCache | None):
    campaign = Campaign(ENGINES, dataset, seed=SEED, workers=workers,
                        shard_size=SHARD_SIZE, executor=executor,
                        cache=cache)
    start = time.perf_counter()
    result = campaign.run()
    elapsed = time.perf_counter() - start
    return result, elapsed


def _arm_payload(result) -> str:
    return json.dumps([arm.to_dict() for arm in result.arms],
                      sort_keys=True)


def _run_entry(name: str, executor: str, workers: int, cached: bool,
               result, elapsed: float) -> dict:
    hits, misses = result.telemetry.cache_counts()
    return {
        "name": name,
        "executor": executor,
        "workers": workers,
        "cache": cached,
        "wall_seconds": round(elapsed, 4),
        "cache_hits": hits,
        "cache_misses": misses,
        "cases": sum(len(arm.reports) for arm in result.arms),
        "passed": sum(report.passed for arm in result.arms
                      for report in arm.reports),
    }


def _vm_vs_tree_stage(dataset) -> dict:
    """Compare the bytecode VM with the tree-walker on this workload.

    Measures one-time compile cost, repeated-execution wall time per
    engine (``EXEC_SWEEPS`` sweeps over every buggy and fixed source),
    and runs the hard byte-identity gate: every source through both
    engines in both collect modes via
    :func:`repro.miri.vm.check_divergence`.
    """
    from repro.lang.parser import parse_program
    from repro.miri.bytecode import compile_program
    from repro.miri.interp import run_program
    from repro.miri.vm import check_divergence

    sources = [case.source for case in dataset.cases] + \
        [case.fixed_source for case in dataset.cases]
    programs = [parse_program(source) for source in sources]

    start = time.perf_counter()
    compiled = [compile_program(program, source)
                for program, source in zip(programs, sources)]
    compile_seconds = time.perf_counter() - start

    # Warm both engines once, then time repeated execution sweeps.
    for program in programs:
        run_program(program, engine="tree")
    for program, unit in zip(programs, compiled):
        run_program(program, engine="vm", compiled=unit)
    start = time.perf_counter()
    for _ in range(EXEC_SWEEPS):
        for program in programs:
            run_program(program, engine="tree")
    tree_seconds = (time.perf_counter() - start) / EXEC_SWEEPS
    start = time.perf_counter()
    for _ in range(EXEC_SWEEPS):
        for program, unit in zip(programs, compiled):
            run_program(program, engine="vm", compiled=unit)
    vm_seconds = (time.perf_counter() - start) / EXEC_SWEEPS

    # The production hot path: detect_ub over already-seen source text.
    # The VM's compile memo skips the parse and the per-run AST clone the
    # tree engine pays on every detect, which is where its edge lives.
    from repro.miri import detect_ub
    detect_seconds = {}
    for engine in ("tree", "vm"):
        for source in sources:
            detect_ub(source, engine=engine)
        start = time.perf_counter()
        for _ in range(EXEC_SWEEPS):
            for source in sources:
                detect_ub(source, engine=engine)
        detect_seconds[engine] = \
            (time.perf_counter() - start) / EXEC_SWEEPS

    divergences = []
    for index, source in enumerate(sources):
        for collect in (False, True):
            divergence = check_divergence(source, f"bench[{index}]",
                                          collect=collect)
            if divergence is not None:
                divergences.append(divergence)

    # Runs of one compiled program needed before the compile pays for
    # itself against tree execution (None when the VM sweep is not
    # faster — the compile then never amortizes on pure re-execution).
    per_run_saving = (tree_seconds - vm_seconds) / len(sources)
    per_compile = compile_seconds / len(sources)
    amortize_after = (round(per_compile / per_run_saving, 1)
                      if per_run_saving > 0 else None)

    return {
        "sources": len(sources),
        "exec_sweeps": EXEC_SWEEPS,
        "compile_seconds": round(compile_seconds, 4),
        "tree_exec_seconds": round(tree_seconds, 4),
        "vm_exec_seconds": round(vm_seconds, 4),
        "exec_speedup": round(tree_seconds / vm_seconds, 3)
        if vm_seconds > 0 else None,
        "tree_detect_seconds": round(detect_seconds["tree"], 4),
        "vm_detect_seconds": round(detect_seconds["vm"], 4),
        "detect_speedup": round(detect_seconds["tree"]
                                / detect_seconds["vm"], 3)
        if detect_seconds["vm"] > 0 else None,
        "compile_amortized_after_runs": amortize_after,
        "divergences": [d.render() for d in divergences[:5]],
        "vm_matches_tree": not divergences,
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out_path = pathlib.Path(argv[0]) if argv else DEFAULT_OUT
    dataset = load_dataset().subset(CATEGORIES)

    serial, serial_secs = _timed_run(dataset, executor="serial", workers=1,
                                     cache=None)
    with tempfile.TemporaryDirectory(prefix="repro-perf-smoke-") as tmp:
        cache = ResultCache(tmp)
        cold, cold_secs = _timed_run(dataset, executor="process",
                                     workers=WORKERS, cache=cache)
        warm, warm_secs = _timed_run(dataset, executor="process",
                                     workers=WORKERS, cache=cache)

    vm_vs_tree = _vm_vs_tree_stage(dataset)

    total = sum(len(arm.reports) for arm in serial.arms)
    checks = {
        "process_matches_serial": _arm_payload(cold) == _arm_payload(serial),
        "warm_zero_executions":
            warm.telemetry.cache_counts() == (total, 0)
            and _arm_payload(warm) == _arm_payload(cold),
        "vm_matches_tree": vm_vs_tree["vm_matches_tree"],
    }
    payload = {
        "schema": SCHEMA,
        "config": {
            "engines": ENGINES,
            "categories": sorted(cat.value for cat in CATEGORIES),
            "cases": len(dataset),
            "seed": SEED,
            "workers": WORKERS,
            "shard_size": SHARD_SIZE,
        },
        "runs": [
            _run_entry("serial_cold", "serial", 1, False, serial,
                       serial_secs),
            _run_entry("process_cold", "process", WORKERS, True, cold,
                       cold_secs),
            _run_entry("process_warm", "process", WORKERS, True, warm,
                       warm_secs),
        ],
        "speedups": {
            "process_vs_serial": round(serial_secs / cold_secs, 3)
            if cold_secs > 0 else None,
            "warm_vs_cold": round(cold_secs / warm_secs, 3)
            if warm_secs > 0 else None,
        },
        "vm_vs_tree": vm_vs_tree,
        "checks": checks,
    }

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path}")
    for run in payload["runs"]:
        print(f"  {run['name']:13s} {run['wall_seconds']:8.3f}s  "
              f"cache {run['cache_hits']}h/{run['cache_misses']}m")
    print(f"  speedups: {payload['speedups']}  checks: {checks}")
    print(f"  vm_vs_tree: exec {vm_vs_tree['tree_exec_seconds']:.4f}s tree "
          f"/ {vm_vs_tree['vm_exec_seconds']:.4f}s vm "
          f"(x{vm_vs_tree['exec_speedup']}), detect "
          f"x{vm_vs_tree['detect_speedup']}, compile "
          f"{vm_vs_tree['compile_seconds']:.4f}s, matches="
          f"{vm_vs_tree['vm_matches_tree']}")
    if not all(checks.values()):
        print("perf smoke FAILED correctness checks", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
