"""Fig. 12 (RQ4): RustBrain vs RustAssistant (the fixed-pipeline SOTA).

Reproduced shape claims:

* RustBrain's pass rate exceeds RustAssistant's by roughly 30 points
  (paper: +33) and its exec rate by roughly 40 points (paper: +41);
* RustBrain wins or ties on (nearly) every category;
* even the non-knowledge RustBrain variant beats RustAssistant.
"""

from repro.bench.figures import fig12_data
from repro.bench.reporting import category_label, render_table
from repro.miri.errors import PAPER_CATEGORIES


def test_fig12_rustassistant(benchmark, save_artifact):
    data = benchmark.pedantic(fig12_data, rounds=1, iterations=1)

    brain = data["GPT-4+RustBrain"]
    brain_nokb = data["GPT-4+RustBrain(non knowledge)"]
    assistant = data["Rustassistant"]

    headers = ["category", "RB pass", "RA pass", "RB exec", "RA exec",
               "RB-noKB exec"]
    rows = []
    for category in PAPER_CATEGORIES:
        rows.append([
            category_label(category),
            f"{100 * brain.pass_by_category.get(category, 0):.0f}",
            f"{100 * assistant.pass_by_category.get(category, 0):.0f}",
            f"{100 * brain.exec_by_category.get(category, 0):.0f}",
            f"{100 * assistant.exec_by_category.get(category, 0):.0f}",
            f"{100 * brain_nokb.exec_by_category.get(category, 0):.0f}",
        ])
    rows.append(["AVERAGE",
                 f"{100 * brain.pass_rate:.1f}",
                 f"{100 * assistant.pass_rate:.1f}",
                 f"{100 * brain.exec_rate:.1f}",
                 f"{100 * assistant.exec_rate:.1f}",
                 f"{100 * brain_nokb.exec_rate:.1f}"])
    table = render_table(headers, rows,
                         title="Fig. 12 — RustBrain vs RustAssistant (%)")
    save_artifact("fig12_rustassistant.txt", table)

    # Pass gap ≈ +33 points, exec gap ≈ +41 points in the paper.
    pass_gap = brain.pass_rate - assistant.pass_rate
    exec_gap = brain.exec_rate - assistant.exec_rate
    assert 0.20 <= pass_gap <= 0.55, pass_gap
    assert 0.25 <= exec_gap <= 0.60, exec_gap

    # Per-category dominance (allow a single tie-break category).
    losses = sum(
        1 for category in PAPER_CATEGORIES
        if brain.pass_by_category.get(category, 0)
        < assistant.pass_by_category.get(category, 0)
    )
    assert losses <= 2, f"RustBrain lost {losses} categories"

    # Even without the knowledge base, RustBrain beats the fixed pipeline.
    assert brain_nokb.pass_rate > assistant.pass_rate
    assert brain_nokb.exec_rate > assistant.exec_rate
