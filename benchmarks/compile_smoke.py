#!/usr/bin/env python3
"""Compile-repair smoke: checker-guided repair rates, per model profile.

Exercises the static-checker front door end to end and writes
``BENCH_compile.json`` in a stable schema (``repro.bench_compile/1``) so
successive PRs can track how well the ``compile_fix`` engine family
converts non-compiling sources into checks-clean, UB-free programs:

* **per-model lift** — every model profile sweeps the compile corpus
  twice, as ``compile_fix?attempts=1`` (the paper-style "first attempt"
  condition) and ``compile_fix?attempts=3`` (correction rounds enabled);
  the corrected check-pass rate must be a strict improvement for every
  profile, or the suggestion loop has stopped doing its job;
* **determinism** — the same ``(seed, executor)`` swept twice must
  produce byte-identical arm payloads, and a process-pool sweep must be
  byte-identical to the serial reference;
* **corpus health** — the compile generator is byte-deterministic and
  the hand-written per-code corpus re-validates 100%;
* **cache-epoch discipline** — ``compile_fix`` is a *new* engine family;
  no existing engine's behaviour changed, so ``CACHE_EPOCH`` must still
  be {epoch} (bumping it here would needlessly invalidate every cached
  campaign).

Two tiers share the checks: ``--quick`` (CI per-PR: {quick_n} generated
cases on top of the hand-written set) and the default full tier
(benchmark job: {full_n} generated cases).  Wall-clock numbers are
recorded, never asserted.

Run:  PYTHONPATH=src python benchmarks/compile_smoke.py [--quick] [OUT.json]
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.corpus import (generate_compile_corpus, load_compile_dataset,
                          validate_case)
from repro.corpus.dataset import Dataset
from repro.corpus.manifest import manifest_bytes
from repro.engine import Campaign
from repro.engine.cache import CACHE_EPOCH

SEED = 13
QUICK_N = 12
FULL_N = 48
EXPECTED_EPOCH = 5
__doc__ = __doc__.format(quick_n=QUICK_N, full_n=FULL_N,
                         epoch=EXPECTED_EPOCH)

MODELS = ["gpt-3.5", "gpt-4", "claude-3.5", "gpt-o1"]
FIRST_ATTEMPT = "compile_fix?attempts=1"
CORRECTED = "compile_fix?attempts=3"
WORKERS = 4
SHARD_SIZE = 8

SCHEMA = "repro.bench_compile/1"
DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_compile.json"


def _arm_bytes(result) -> bytes:
    """The arms alone, canonically serialized — the campaign config
    block records worker counts and executor names, which byte-identity
    across backends must ignore."""
    return json.dumps([arm.to_dict() for arm in result.arms],
                      indent=2, sort_keys=True).encode("utf-8")


def _rates(result) -> dict[str, float]:
    rates = {}
    for arm in result.arms:
        passed = sum(report.passed for report in arm.reports)
        rates[arm.spec.to_string()] = round(passed / len(arm.reports), 4)
    return rates


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in argv
    argv = [arg for arg in argv if arg != "--quick"]
    out_path = pathlib.Path(argv[0]) if argv else DEFAULT_OUT
    n = QUICK_N if quick else FULL_N

    hand = list(load_compile_dataset())
    revalidated = 0
    for case in hand:
        try:
            validate_case(case)
            revalidated += 1
        except Exception as exc:  # any failure is a hard gate below
            print(f"re-validation FAILED for {case.name}: {exc}",
                  file=sys.stderr)

    start = time.perf_counter()
    generated, gen_report = generate_compile_corpus(n, SEED)
    generate_secs = time.perf_counter() - start
    again, again_report = generate_compile_corpus(n, SEED)
    generator_deterministic = (
        manifest_bytes(again, again_report)
        == manifest_bytes(generated, gen_report))

    dataset = Dataset(tuple(hand + generated))

    models = {}
    sweep_start = time.perf_counter()
    for model in MODELS:
        campaign = Campaign([FIRST_ATTEMPT, CORRECTED], dataset,
                            model=model, seed=SEED, workers=1,
                            executor="serial")
        rates = _rates(campaign.run())
        models[model] = {
            "first_attempt": rates[FIRST_ATTEMPT],
            "after_correction": rates[CORRECTED],
            "lift": round(rates[CORRECTED] - rates[FIRST_ATTEMPT], 4),
        }
    sweep_secs = time.perf_counter() - sweep_start

    # Determinism gates on one reference model: serial twice, then the
    # process pool against the serial reference.
    serial = Campaign([FIRST_ATTEMPT, CORRECTED], dataset, model="gpt-4",
                      seed=SEED, workers=1, executor="serial").run()
    serial_again = Campaign([FIRST_ATTEMPT, CORRECTED], dataset,
                            model="gpt-4", seed=SEED, workers=1,
                            executor="serial").run()
    pooled = Campaign([FIRST_ATTEMPT, CORRECTED], dataset, model="gpt-4",
                      seed=SEED, workers=WORKERS, shard_size=SHARD_SIZE,
                      executor="process").run()
    serial_bytes = _arm_bytes(serial)
    deterministic = _arm_bytes(serial_again) == serial_bytes
    pool_matches_serial = _arm_bytes(pooled) == serial_bytes

    checks = {
        "hand_corpus_revalidates": revalidated == len(hand),
        "generator_deterministic": generator_deterministic,
        "all_requested_generated": gen_report.emitted == n,
        "every_model_lifts": all(
            stats["after_correction"] > stats["first_attempt"]
            for stats in models.values()),
        "deterministic_sweep": deterministic,
        "process_matches_serial": pool_matches_serial,
        "cache_epoch_untouched": CACHE_EPOCH == EXPECTED_EPOCH,
    }
    payload = {
        "schema": SCHEMA,
        "tier": "quick" if quick else "full",
        "config": {
            "seed": SEED,
            "models": MODELS,
            "arms": [FIRST_ATTEMPT, CORRECTED],
            "hand_cases": len(hand),
            "generated_cases": n,
            "workers": WORKERS,
            "shard_size": SHARD_SIZE,
            "expected_cache_epoch": EXPECTED_EPOCH,
        },
        "generation": {
            "emitted": gen_report.emitted,
            "attempts": gen_report.attempts,
            "wall_seconds": round(generate_secs, 4),
        },
        "models": models,
        "sweep_wall_seconds": round(sweep_secs, 4),
        "checks": checks,
    }

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path} (tier: {payload['tier']})")
    for model, stats in models.items():
        print(f"  {model:12s} first={stats['first_attempt']:.4f} "
              f"corrected={stats['after_correction']:.4f} "
              f"lift={stats['lift']:+.4f}")
    print(f"  checks: {checks}")
    if not all(checks.values()):
        print("compile smoke FAILED correctness checks", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
