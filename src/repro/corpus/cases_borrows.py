"""Dataset cases: stack_borrow, both_borrow, provenance."""

from ..miri.errors import UbKind
from .case import Strategy, UbCase, make_cases

# ---------------------------------------------------------------------------
# stack_borrow — raw pointers invalidated per stacked borrows

STACK_BORROW_CASES = (
    make_cases(
        "stackborrow_reborrow", UbKind.STACK_BORROW,
        "raw pointer invalidated by a fresh &mut reborrow",
        template='''\
fn main() {{
    let mut x = {val}{ity};
    let p = &mut x as *mut {ity};
    let r = &mut x;
    *r += {inc};
    let observed = unsafe {{ *p }};
    println!("{{}}", observed);
}}
''',
        fixed_template='''\
fn main() {{
    let mut x = {val}{ity};
    let p = &mut x as *mut {ity};
    let observed = unsafe {{ *p }};
    let r = &mut x;
    *r += {inc};
    println!("{{}}", observed);
}}
''',
        strategies=(Strategy("hoist_raw_use_before_reborrow"),),
        variants=[{"val": 5, "ity": "i32", "inc": 1},
                  {"val": 400, "ity": "i64", "inc": 7},
                  {"val": 7, "ity": "i32", "inc": 3}],
        difficulty=3,
    )
    + make_cases(
        "stackborrow_direct_write", UbKind.STACK_BORROW,
        "raw pointer invalidated by a direct write to the owner",
        template='''\
fn main() {{
    let mut count = {val};
    let p = &mut count as *mut {ity};
    count = {newval};
    let snapshot = unsafe {{ *p }};
    println!("{{}} {{}}", snapshot, count);
}}
''',
        fixed_template='''\
fn main() {{
    let mut count = {val};
    let p = &mut count as *mut {ity};
    count = {newval};
    let snapshot = count;
    println!("{{}} {{}}", snapshot, count);
}}
''',
        strategies=(Strategy("read_owner_instead_of_raw"),
                    Strategy("hoist_raw_use_before_reborrow", exact=False)),
        variants=[{"val": 3, "ity": "i32", "newval": 9},
                  {"val": 100, "ity": "u32", "newval": 250},
                  {"val": 12, "ity": "i32", "newval": 99}],
        difficulty=3,
    )
    + make_cases(
        "stackborrow_vec_push", UbKind.STACK_BORROW,
        "as_mut_ptr pointer invalidated by a non-reallocating push",
        template='''\
fn main() {{
    let mut v: Vec<i32> = Vec::with_capacity(4);
    v.push({a});
    let p = v.as_mut_ptr();
    v.push({b});
    let first = unsafe {{ *p }};
    println!("{{}}", first);
}}
''',
        fixed_template='''\
fn main() {{
    let mut v: Vec<i32> = Vec::with_capacity(4);
    v.push({a});
    v.push({b});
    let p = v.as_mut_ptr();
    let first = unsafe {{ *p }};
    println!("{{}}", first);
}}
''',
        strategies=(Strategy("take_pointer_after_mutation"),),
        variants=[{"a": 8, "b": 16}, {"a": 1, "b": 2}],
        difficulty=3,
    )
)

# ---------------------------------------------------------------------------
# both_borrow — &mut / & aliasing misuse

BOTH_BORROW_CASES = (
    make_cases(
        "bothborrow_alias_write", UbKind.BOTH_BORROW,
        "shared borrow taken while a mutable borrow is still in use",
        template='''\
fn main() {{
    let mut total = {val};
    let r = &mut total;
    let s = &total;
    *r += {inc};
    let snapshot = *s;
    println!("{{}}", snapshot);
}}
''',
        fixed_template='''\
fn main() {{
    let mut total = {val};
    let r = &mut total;
    *r += {inc};
    let s = &total;
    let snapshot = *s;
    println!("{{}}", snapshot);
}}
''',
        strategies=(Strategy("shorten_shared_borrow"),
                    Strategy("hoist_write_before_shared")),
        variants=[{"val": 10, "inc": 5}, {"val": -3, "inc": 4},
                  {"val": 1000, "inc": 1}, {"val": 0, "inc": 9}],
        difficulty=2,
    )
    + make_cases(
        "bothborrow_read_then_write", UbKind.BOTH_BORROW,
        "mutable write after the shared alias already read",
        template='''\
fn main() {{
    let mut score = {val};
    let r = &mut score;
    let s = &score;
    let before = *s;
    *r += {inc};
    println!("{{}} {{}}", before, score);
}}
''',
        fixed_template='''\
fn main() {{
    let mut score = {val};
    let r = &mut score;
    *r += {inc};
    let s = &score;
    let before = *s;
    println!("{{}} {{}}", before, score);
}}
''',
        strategies=(Strategy("hoist_write_before_shared"),),
        variants=[{"val": 50, "inc": 50}, {"val": 7, "inc": 2},
                  {"val": 33, "inc": 11}],
        difficulty=3,
    )
)

# ---------------------------------------------------------------------------
# provenance — integer-laundered pointers

PROVENANCE_CASES = (
    make_cases(
        "provenance_transmute_ref", UbKind.PROVENANCE,
        "reference transmuted to usize, cast back, dereferenced",
        template='''\
use std::mem;
fn main() {{
    let secret = {val};
    let r = &secret;
    let addr = unsafe {{ mem::transmute::<&{ity}, usize>(r) }};
    let q = addr as *const {ity};
    let leaked = unsafe {{ *q }};
    println!("{{}}", leaked);
}}
''',
        fixed_template='''\
use std::mem;
fn main() {{
    let secret = {val};
    let r = &secret;
    let addr = unsafe {{ mem::transmute::<&{ity}, usize>(r) }};
    let q = addr as *const {ity};
    let leaked = secret;
    println!("{{}}", leaked);
}}
''',
        strategies=(Strategy("replace_deref_with_original_value"),),
        variants=[{"val": 5, "ity": "i32"}, {"val": 77, "ity": "u64"},
                  {"val": 9, "ity": "i64"}],
        difficulty=3,
    )
    + make_cases(
        "provenance_cast_chain", UbKind.PROVENANCE,
        "pointer round-tripped through usize loses provenance",
        template='''\
fn main() {{
    let data = {val};
    let addr = &data as *const {ity} as usize;
    let p = addr as *const {ity};
    let v = unsafe {{ *p }};
    println!("{{}}", v);
}}
''',
        fixed_template='''\
fn main() {{
    let data = {val};
    let addr = &data as *const {ity} as usize;
    let p = addr as *const {ity};
    let v = data;
    println!("{{}}", v);
}}
''',
        strategies=(Strategy("replace_deref_with_original_value"),),
        variants=[{"val": 11, "ity": "i32"}, {"val": 31000, "ity": "i64"},
                  {"val": 255, "ity": "u8"}],
        difficulty=3,
    )
)

CASES = STACK_BORROW_CASES + BOTH_BORROW_CASES + PROVENANCE_CASES
