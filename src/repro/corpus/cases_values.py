"""Dataset cases: validity, unaligned, panic."""

from ..miri.errors import UbKind
from .case import Strategy, UbCase, make_cases

# ---------------------------------------------------------------------------
# validity — constructing invalid values

VALIDITY_CASES = (
    make_cases(
        "validity_bool_transmute", UbKind.VALIDITY,
        "transmuting an out-of-range byte into bool",
        template='''\
use std::mem;
fn main() {{
    let raw: u8 = {val};
    let flag = unsafe {{ mem::transmute::<u8, bool>(raw) }};
    println!("{{}}", flag);
}}
''',
        fixed_template='''\
use std::mem;
fn main() {{
    let raw: u8 = {val};
    let flag = raw != 0;
    println!("{{}}", flag);
}}
''',
        strategies=(Strategy("replace_transmute_int_with_comparison"),),
        variants=[{"val": 2}, {"val": 255}, {"val": 7}],
        difficulty=2,
    )
    + make_cases(
        "validity_zeroed_ref", UbKind.VALIDITY,
        "mem::zeroed conjures a null reference",
        template='''\
use std::mem;
fn main() {{
    let r = unsafe {{ mem::zeroed::<&{ity}>() }};
    println!("{{}}", *r);
}}
''',
        fixed_template='''\
use std::mem;
fn main() {{
    let __zeroed_default: {ity} = 0;
    let r = unsafe {{ &__zeroed_default }};
    println!("{{}}", *r);
}}
''',
        strategies=(Strategy("replace_zeroed_ref_with_local"),),
        variants=[{"ity": "i32"}, {"ity": "u64"}, {"ity": "i64"}],
        difficulty=3,
    )
    + make_cases(
        "validity_char_transmute", UbKind.VALIDITY,
        "transmuting a surrogate code point into char",
        template='''\
use std::mem;
fn main() {{
    let code: u32 = {val};
    let symbol = unsafe {{ mem::transmute::<u32, char>(code) }};
    println!("{{}}", symbol);
}}
''',
        fixed_template='''\
use std::mem;
fn main() {{
    let code: u32 = {val};
    let symbol = char::from_u32(code).unwrap_or('?');
    println!("{{}}", symbol);
}}
''',
        strategies=(Strategy("replace_transmute_char_with_from_u32"),),
        variants=[{"val": 0xD800}, {"val": 0x110000}, {"val": 0xDFFF}],
        difficulty=2,
    )
    + make_cases(
        "validity_bool_raw_write", UbKind.VALIDITY,
        "writing an out-of-range byte into a bool through a raw pointer",
        template='''\
fn main() {{
    let mut flag = false;
    let p = &mut flag as *mut bool as *mut u8;
    unsafe {{ *p = {val}; }}
    println!("{{}}", flag);
}}
''',
        fixed_template='''\
fn main() {{
    let mut flag = false;
    let p = &mut flag as *mut bool as *mut u8;
    unsafe {{ *p = 1; }}
    println!("{{}}", flag);
}}
''',
        strategies=(Strategy("store_valid_bool"),),
        variants=[{"val": 3}, {"val": 9}],
        difficulty=3,
    )
)

# ---------------------------------------------------------------------------
# unaligned — misaligned typed accesses

UNALIGNED_CASES = (
    make_cases(
        "unaligned_read_u32", UbKind.UNALIGNED,
        "reading a u32 at an odd byte offset",
        template='''\
fn main() {{
    let words = [{a}u64, {b}];
    let bytes = words.as_ptr() as *const u8;
    let shifted = unsafe {{ bytes.add({off}) }} as *const u32;
    let value = unsafe {{ *shifted }};
    println!("{{}}", value);
}}
''',
        fixed_template='''\
fn main() {{
    let words = [{a}u64, {b}];
    let bytes = words.as_ptr() as *const u8;
    let shifted = unsafe {{ bytes.add({off}) }} as *const u32;
    let value = unsafe {{ shifted.read_unaligned() }};
    println!("{{}}", value);
}}
''',
        strategies=(Strategy("read_unaligned_instead"),
                    Strategy("guard_alignment_before_cast_read", exact=False)),
        variants=[{"a": 0x0102030405060708, "b": 0x1112131415161718, "off": 1},
                  {"a": 0xAABBCCDDEEFF0011, "b": 0x2233445566778899, "off": 3},
                  {"a": 0x0011223344556677, "b": 0x8899AABBCCDDEEFF, "off": 5}],
        difficulty=2,
    )
    + make_cases(
        "unaligned_read_u16_guarded", UbKind.UNALIGNED,
        "reading a u16 at an odd offset; reference fix guards the access",
        template='''\
fn main() {{
    let words = [{a}u64; 2];
    let bytes = words.as_ptr() as *const u8;
    let shifted = unsafe {{ bytes.add({off}) }} as *const u16;
    let value = unsafe {{ *shifted }};
    println!("{{}}", value);
}}
''',
        fixed_template='''\
fn main() {{
    let words = [{a}u64; 2];
    let bytes = words.as_ptr() as *const u8;
    let shifted = unsafe {{ bytes.add({off}) }} as *const u16;
    let value = if shifted as usize % 2 == 0 {{ unsafe {{ *shifted }} }} else {{ 0 }};
    println!("{{}}", value);
}}
''',
        strategies=(Strategy("guard_alignment_before_cast_read"),
                    Strategy("read_unaligned_instead", exact=False)),
        variants=[{"a": 0x0102030405060708, "off": 1},
                  {"a": 0x1213141516171819, "off": 3}],
        difficulty=2,
    )
    + make_cases(
        "unaligned_read_u64", UbKind.UNALIGNED,
        "reading a u64 off the 8-byte grid",
        template='''\
fn main() {{
    let words = [{a}u64, {b}, {c}];
    let bytes = words.as_ptr() as *const u8;
    let shifted = unsafe {{ bytes.add({off}) }} as *const u64;
    let value = unsafe {{ *shifted }};
    println!("{{}}", value);
}}
''',
        fixed_template='''\
fn main() {{
    let words = [{a}u64, {b}, {c}];
    let bytes = words.as_ptr() as *const u8;
    let shifted = unsafe {{ bytes.add({off}) }} as *const u64;
    let value = unsafe {{ shifted.read_unaligned() }};
    println!("{{}}", value);
}}
''',
        strategies=(Strategy("read_unaligned_instead"),
                    Strategy("guard_alignment_before_cast_read", exact=False)),
        variants=[{"a": 0x1111111111111111, "b": 0x2222222222222222,
                   "c": 0x3333333333333333, "off": 4},
                  {"a": 0x0102030405060708, "b": 0x0909090909090909,
                   "c": 0x4444444444444444, "off": 2}],
        difficulty=2,
    )
)

# ---------------------------------------------------------------------------
# panic — runtime panics to eliminate

PANIC_CASES = (
    make_cases(
        "panic_overflow", UbKind.PANIC,
        "integer overflow panic near the type maximum",
        template='''\
fn main() {{
    let cap = {ity}::MAX;
    let request = cap + {inc};
    println!("{{}}", request);
}}
''',
        fixed_template='''\
fn main() {{
    let cap = {ity}::MAX;
    let request = cap.saturating_add({inc});
    println!("{{}}", request);
}}
''',
        strategies=(Strategy("saturating_arith_on_extreme"),),
        variants=[{"ity": "i32", "inc": 1}, {"ity": "u8", "inc": 5},
                  {"ity": "i16", "inc": 3}],
        difficulty=1,
    )
    + make_cases(
        "panic_index_oob", UbKind.PANIC,
        "index out of bounds panic on a Vec",
        template='''\
fn main() {{
    let readings = vec![{a}, {b}, {c}];
    let idx = {idx};
    let value = readings[idx];
    println!("{{}}", value);
}}
''',
        fixed_template='''\
fn main() {{
    let readings = vec![{a}, {b}, {c}];
    let idx = {idx};
    let value = if idx < readings.len() {{ readings[idx] }} else {{ 0 }};
    println!("{{}}", value);
}}
''',
        strategies=(Strategy("guard_index_with_len_check"),),
        variants=[{"a": 4, "b": 5, "c": 6, "idx": 5},
                  {"a": 1, "b": 2, "c": 3, "idx": 10},
                  {"a": 9, "b": 8, "c": 7, "idx": 99}],
        difficulty=1,
    )
    + make_cases(
        "panic_div_zero", UbKind.PANIC,
        "division by a zero denominator",
        template='''\
fn main() {{
    let total = {a};
    let count = {b};
    let avg = total / count;
    println!("{{}}", avg);
}}
''',
        fixed_template='''\
fn main() {{
    let total = {a};
    let count = {b};
    let avg = if count != 0 {{ total / count }} else {{ 0 }};
    println!("{{}}", avg);
}}
''',
        strategies=(Strategy("guard_division_nonzero"),),
        variants=[{"a": 100, "b": 0}, {"a": 55, "b": 0}],
        difficulty=1,
    )
    + make_cases(
        "panic_unwrap_none", UbKind.PANIC,
        "unwrap on an empty Vec's pop",
        template='''\
fn main() {{
    let mut queue: Vec<i32> = Vec::new();
    let next = queue.pop().unwrap();
    println!("{{}}", next);
}}
''',
        fixed_template='''\
fn main() {{
    let mut queue: Vec<i32> = Vec::new();
    let next = queue.pop().unwrap_or(0);
    println!("{{}}", next);
}}
''',
        strategies=(Strategy("replace_unwrap_with_unwrap_or"),),
        variants=[{}],
        difficulty=1,
    )
    + make_cases(
        "panic_shift_overflow", UbKind.PANIC,
        "shift amount equal to the type width",
        template='''\
fn main() {{
    let base = {base}i32;
    let amount = {amount};
    let shifted = base << amount;
    println!("{{}}", shifted);
}}
''',
        fixed_template='''\
fn main() {{
    let base = {base}i32;
    let amount = {amount};
    let shifted = base << (amount % 32);
    println!("{{}}", shifted);
}}
''',
        strategies=(Strategy("mask_shift_amount"),),
        variants=[{"base": 3, "amount": 32}, {"base": 2, "amount": 35}],
        difficulty=1,
    )
)

CASES = VALIDITY_CASES + UNALIGNED_CASES + PANIC_CASES
