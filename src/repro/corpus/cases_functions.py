"""Dataset cases: func_call, func_pointer, tailcall."""

from ..miri.errors import UbKind
from .case import Strategy, UbCase, make_cases

# ---------------------------------------------------------------------------
# func_call — calling with the wrong argument list

FUNC_CALL_CASES = (
    make_cases(
        "funccall_too_few_args", UbKind.FUNC_CALL,
        "function pointer called with fewer arguments than the target takes",
        template='''\
fn {fname}(x: i32, scale: i32) -> i32 {{ x * scale }}
fn main() {{
    let f = {fname};
    let v = f({arg});
    println!("{{}}", v);
}}
''',
        fixed_template='''\
fn {fname}(x: i32, scale: i32) -> i32 {{ x * scale }}
fn main() {{
    let f = {fname};
    let v = f({arg}, 1);
    println!("{{}}", v);
}}
''',
        strategies=(Strategy("fix_call_arity"),),
        variants=[{"fname": "scale_by", "arg": 10},
                  {"fname": "apply_factor", "arg": -4},
                  {"fname": "scale_reading", "arg": 7}],
        difficulty=2,
    )
    + make_cases(
        "funccall_too_many_args", UbKind.FUNC_CALL,
        "function pointer called with extra arguments",
        template='''\
fn {fname}(a: i32, b: i32) -> i32 {{ a + b }}
fn main() {{
    let f = {fname};
    let v = f({a}, {b}, {c});
    println!("{{}}", v);
}}
''',
        fixed_template='''\
fn {fname}(a: i32, b: i32) -> i32 {{ a + b }}
fn main() {{
    let f = {fname};
    let v = f({a}, {b});
    println!("{{}}", v);
}}
''',
        strategies=(Strategy("fix_call_arity"),),
        variants=[{"fname": "combine", "a": 1, "b": 2, "c": 3},
                  {"fname": "merge_pair", "a": 40, "b": 2, "c": 99},
                  {"fname": "join_totals", "a": 6, "b": 7, "c": 8}],
        difficulty=2,
    )
    + make_cases(
        "funccall_zero_args", UbKind.FUNC_CALL,
        "nullary call through a pointer to a unary function",
        template='''\
fn {fname}(seed: i32) -> i32 {{ seed * seed }}
fn main() {{
    let f = {fname};
    let v = f();
    println!("{{}}", v);
}}
''',
        fixed_template='''\
fn {fname}(seed: i32) -> i32 {{ seed * seed }}
fn main() {{
    let f = {fname};
    let v = f(1);
    println!("{{}}", v);
}}
''',
        strategies=(Strategy("fix_call_arity"),),
        variants=[{"fname": "square"}, {"fname": "amplify"}],
        difficulty=2,
    )
)

# ---------------------------------------------------------------------------
# func_pointer — invalid or wrongly-typed function pointers

FUNC_POINTER_CASES = (
    make_cases(
        "funcptr_transmute_arity", UbKind.FUNC_POINTER,
        "fn pointer transmuted to a different arity and called",
        template='''\
use std::mem;
fn {fname}(a: i32, b: i32) -> i32 {{ a + b }}
fn main() {{
    let f = unsafe {{ mem::transmute::<fn(i32, i32) -> i32, fn(i32) -> i32>({fname}) }};
    let v = f({arg});
    println!("{{}}", v);
}}
''',
        fixed_template='''\
use std::mem;
fn {fname}(a: i32, b: i32) -> i32 {{ a + b }}
fn main() {{
    let f = {fname};
    let v = f({arg}, 0);
    println!("{{}}", v);
}}
''',
        strategies=(Strategy("call_with_actual_signature"),),
        variants=[{"fname": "add_pair", "arg": 5},
                  {"fname": "sum_two", "arg": 123},
                  {"fname": "plus_pair", "arg": 9}],
        difficulty=4,
    )
    + make_cases(
        "funcptr_from_int", UbKind.FUNC_POINTER,
        "integer transmuted into a function pointer",
        template='''\
use std::mem;
fn {fname}() -> i32 {{ {ret} }}
fn main() {{
    let f = unsafe {{ mem::transmute::<usize, fn() -> i32>({addr}) }};
    let v = f();
    println!("{{}}", v);
}}
''',
        fixed_template='''\
use std::mem;
fn {fname}() -> i32 {{ {ret} }}
fn main() {{
    let f = unsafe {{ {fname} }};
    let v = f();
    println!("{{}}", v);
}}
''',
        strategies=(Strategy("replace_int_fn_transmute_with_fn"),),
        variants=[{"fname": "default_answer", "ret": 42, "addr": 64},
                  {"fname": "fallback_code", "ret": -1, "addr": 4096},
                  {"fname": "unit_code", "ret": 7, "addr": 256}],
        difficulty=4,
    )
    + make_cases(
        "funcptr_wrong_ret", UbKind.FUNC_POINTER,
        "fn pointer transmuted to a different return type",
        template='''\
use std::mem;
fn {fname}() -> i32 {{ {ret} }}
fn main() {{
    let f = unsafe {{ mem::transmute::<fn() -> i32, fn() -> u64>({fname}) }};
    let v = f();
    println!("{{}}", v);
}}
''',
        fixed_template='''\
use std::mem;
fn {fname}() -> i32 {{ {ret} }}
fn main() {{
    let f = {fname};
    let v = f();
    println!("{{}}", v);
}}
''',
        strategies=(Strategy("call_with_actual_signature"),),
        variants=[{"fname": "read_level", "ret": 3}, {"fname": "read_mode", "ret": 5}],
        difficulty=3,
    )
)

# ---------------------------------------------------------------------------
# tailcall — dispatchers that tail-call through a laundered pointer

TAIL_CALL_CASES = (
    make_cases(
        "tailcall_wrong_sig", UbKind.TAIL_CALL,
        "tail dispatch through a pointer with the wrong parameter width",
        template='''\
use std::mem;
fn {fname}(n: i32) -> i32 {{ n {op} {k} }}
fn dispatch(n: i32) -> i32 {{
    let target = unsafe {{ mem::transmute::<fn(i32) -> i32, fn(i64) -> i64>({fname}) }};
    target(n as i64) as i32
}}
fn main() {{
    println!("{{}}", dispatch({arg}));
}}
''',
        fixed_template='''\
use std::mem;
fn {fname}(n: i32) -> i32 {{ n {op} {k} }}
fn dispatch(n: i32) -> i32 {{
    let target = unsafe {{ {fname} }};
    target(n as i64) as i32
}}
fn main() {{
    println!("{{}}", dispatch({arg}));
}}
''',
        strategies=(Strategy("correct_tail_dispatch"),
                    Strategy("call_with_actual_signature")),
        variants=[{"fname": "halve", "op": "/", "k": 2, "arg": 10},
                  {"fname": "advance", "op": "+", "k": 3, "arg": 4},
                  {"fname": "scale", "op": "*", "k": 5, "arg": 6}],
        difficulty=4,
    )
    + make_cases(
        "tailcall_wrong_ret_chain", UbKind.TAIL_CALL,
        "chained tail dispatch with a laundered return type",
        template='''\
use std::mem;
fn {fname}(n: i32) -> i32 {{ n - {k} }}
fn relay(n: i32) -> i32 {{
    let hop = unsafe {{ mem::transmute::<fn(i32) -> i32, fn(i32) -> u32>({fname}) }};
    hop(n) as i32
}}
fn main() {{
    println!("{{}}", relay({arg}));
}}
''',
        fixed_template='''\
use std::mem;
fn {fname}(n: i32) -> i32 {{ n - {k} }}
fn relay(n: i32) -> i32 {{
    let hop = unsafe {{ {fname} }};
    hop(n) as i32
}}
fn main() {{
    println!("{{}}", relay({arg}));
}}
''',
        strategies=(Strategy("correct_tail_dispatch"),
                    Strategy("call_with_actual_signature")),
        variants=[{"fname": "decrement_by", "k": 2, "arg": 12},
                  {"fname": "reduce", "k": 7, "arg": 100},
                  {"fname": "shrink", "k": 4, "arg": 44}],
        difficulty=4,
    )
)

CASES = FUNC_CALL_CASES + FUNC_POINTER_CASES + TAIL_CALL_CASES
