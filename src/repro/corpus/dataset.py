"""Dataset loader: the full UB corpus, indexed by name and category.

>>> from repro.corpus.dataset import load_dataset
>>> ds = load_dataset()
>>> len(ds.categories()) >= 14
True
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..miri.errors import UbKind
from .case import Strategy, UbCase
from . import cases_borrows, cases_concurrency, cases_functions, \
    cases_memory, cases_values


@dataclass(frozen=True)
class Dataset:
    cases: tuple[UbCase, ...]

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self):
        return iter(self.cases)

    def get(self, name: str) -> UbCase:
        for case in self.cases:
            if case.name == name:
                return case
        raise KeyError(name)

    def by_category(self, category: UbKind) -> list[UbCase]:
        return [case for case in self.cases if case.category is category]

    def categories(self) -> list[UbKind]:
        seen: list[UbKind] = []
        for case in self.cases:
            if case.category not in seen:
                seen.append(case.category)
        return seen

    def subset(self, categories: list[UbKind]) -> "Dataset":
        return Dataset(tuple(
            case for case in self.cases if case.category in categories))


@lru_cache(maxsize=1)
def load_dataset() -> Dataset:
    """The full corpus (the paper's 'Miri dataset' analogue)."""
    cases: list[UbCase] = []
    for module in (cases_memory, cases_borrows, cases_concurrency,
                   cases_functions, cases_values):
        cases.extend(module.CASES)
    names = [case.name for case in cases]
    assert len(names) == len(set(names)), "duplicate case names"
    return Dataset(tuple(cases))
