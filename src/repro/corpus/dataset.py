"""Dataset loader: the full UB corpus, indexed by name and category.

>>> from repro.corpus.dataset import load_dataset
>>> ds = load_dataset()
>>> len(ds.categories()) >= 14
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..miri.errors import UbKind
from .case import Strategy, UbCase
from . import cases_borrows, cases_compile, cases_concurrency, \
    cases_functions, cases_memory, cases_values


class DuplicateCaseError(ValueError):
    """Two cases in one dataset share a name.

    Raised at *load* time — generated corpora make name collisions a real
    possibility (a manifest edited by hand, two manifests concatenated),
    and a duplicate that only surfaced on :meth:`Dataset.get` would
    silently shadow one case everywhere else (campaign telemetry, journal
    replay, and cache keys all address cases by name).
    """


@dataclass(frozen=True)
class Dataset:
    cases: tuple[UbCase, ...]
    #: Name index built at construction — :meth:`get` is O(1), and building
    #: the index is where duplicate names are rejected.  Excluded from
    #: eq/repr so two datasets still compare by their cases alone.
    _by_name: dict = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        index: dict[str, UbCase] = {}
        for case in self.cases:
            if case.name in index:
                raise DuplicateCaseError(
                    f"duplicate case name {case.name!r}")
            index[case.name] = case
        object.__setattr__(self, "_by_name", index)

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self):
        return iter(self.cases)

    def get(self, name: str) -> UbCase:
        return self._by_name[name]

    def by_category(self, category: UbKind) -> list[UbCase]:
        return [case for case in self.cases if case.category is category]

    def categories(self) -> list[UbKind]:
        seen: list[UbKind] = []
        for case in self.cases:
            if case.category not in seen:
                seen.append(case.category)
        return seen

    def subset(self, categories: list[UbKind]) -> "Dataset":
        return Dataset(tuple(
            case for case in self.cases if case.category in categories))


@lru_cache(maxsize=1)
def load_dataset() -> Dataset:
    """The full corpus (the paper's 'Miri dataset' analogue)."""
    cases: list[UbCase] = []
    for module in (cases_memory, cases_borrows, cases_concurrency,
                   cases_functions, cases_values):
        cases.extend(module.CASES)
    return Dataset(tuple(cases))


@lru_cache(maxsize=1)
def load_compile_dataset() -> Dataset:
    """The compile-error corpus: non-running sources labelled with the
    stable checker code they trip.  Kept out of :func:`load_dataset` so
    every consumer of the dynamic corpus (campaigns, the UB generator's
    rng stream, manifests) sees exactly the cases it always did."""
    return Dataset(tuple(cases_compile.CASES))
