"""Versioned on-disk manifests for generated corpora (``repro.corpus/1``).

A manifest is one JSON document holding everything a later process needs
to reload a generated corpus as a :class:`~repro.corpus.dataset.Dataset`
— plus the generation report, so validation rates travel with the cases
they describe.  Two invariants make manifests safe to diff, cache, and
regenerate:

* **Byte-determinism.**  Serialization is ``json.dumps(..., indent=2,
  sort_keys=True)`` over data that contains no timestamps, hostnames, or
  float jitter; the same ``(n, seed, categories)`` therefore produces a
  byte-identical file on every run and machine.  The corpus smoke
  benchmark gates on exactly this.
* **Fingerprint keying.**  Every entry carries
  :func:`~repro.miri.fingerprint.source_fingerprint` of its buggy
  source.  Result-cache keys and journal fingerprints are derived from
  case *sources*, so loaded cases flow through ``CACHE_EPOCH``/cache and
  journal machinery unchanged — the stored fingerprint is a load-time
  integrity check (the source on disk still means what the generator
  validated), not a parallel identity scheme.

Loading re-checks the schema id, the fingerprints, and (via the
:class:`Dataset` constructor) name uniqueness; it deliberately does
*not* re-run detector validation — that is the generator's job, and the
smoke benchmark's to audit.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..miri.errors import UbKind
from ..miri.fingerprint import source_fingerprint
from .case import Strategy, UbCase
from .dataset import Dataset
from .generator import GENERATOR_VERSION, GenerationReport

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = "repro.corpus/1"


class ManifestError(ValueError):
    """The manifest file is malformed, mislabelled, or corrupt."""


def case_to_dict(case: UbCase) -> dict:
    entry = {
        "name": case.name,
        "category": case.category.value,
        "description": case.description,
        "difficulty": case.difficulty,
        "fingerprint": source_fingerprint(case.source),
        "source": case.source,
        "fixed_source": case.fixed_source,
        "strategies": [{"rule": strategy.rule, "exact": strategy.exact}
                       for strategy in case.strategies],
    }
    # Emitted only when set, so pre-existing UB-corpus manifests stay
    # byte-identical (the corpus smoke benchmark gates on exactly that).
    if case.expected_code is not None:
        entry["expected_code"] = case.expected_code
    return entry


def case_from_dict(entry: dict) -> UbCase:
    try:
        case = UbCase(
            name=entry["name"],
            category=UbKind(entry["category"]),
            description=entry["description"],
            source=entry["source"],
            fixed_source=entry["fixed_source"],
            strategies=tuple(Strategy(s["rule"], exact=s["exact"])
                             for s in entry["strategies"]),
            difficulty=entry["difficulty"],
            expected_code=entry.get("expected_code"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ManifestError(f"malformed case entry: {exc}") from exc
    recorded = entry.get("fingerprint")
    actual = source_fingerprint(case.source)
    if recorded != actual:
        raise ManifestError(
            f"case {case.name!r}: stored fingerprint {recorded!r} does not "
            f"match its source ({actual!r}) — manifest edited or corrupt")
    return case


def manifest_bytes(cases: list[UbCase],
                   report: GenerationReport | None = None) -> bytes:
    """The canonical serialized form (what :func:`save_manifest` writes)."""
    document = {
        "schema": MANIFEST_SCHEMA,
        "generator_version": GENERATOR_VERSION,
        "count": len(cases),
        "cases": [case_to_dict(case) for case in cases],
        "report": report.to_dict() if report is not None else None,
    }
    text = json.dumps(document, indent=2, sort_keys=True,
                      ensure_ascii=False) + "\n"
    return text.encode("utf-8")


def save_manifest(cases: list[UbCase], path: str | Path,
                  report: GenerationReport | None = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(manifest_bytes(cases, report))
    return path


def load_manifest(path: str | Path) -> Dataset:
    """Load a manifest back as a :class:`Dataset` (schema, fingerprint,
    and duplicate-name checked)."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ManifestError(f"cannot read manifest {path}: {exc}") from exc
    if not isinstance(document, dict) \
            or document.get("schema") != MANIFEST_SCHEMA:
        raise ManifestError(
            f"{path}: expected schema {MANIFEST_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
            if isinstance(document, dict)
            else f"{path}: manifest must be a JSON object")
    entries = document.get("cases")
    if not isinstance(entries, list):
        raise ManifestError(f"{path}: 'cases' must be a list")
    if document.get("count") != len(entries):
        raise ManifestError(
            f"{path}: count field says {document.get('count')}, "
            f"file holds {len(entries)} cases")
    return Dataset(tuple(case_from_dict(entry) for entry in entries))


def load_report(path: str | Path) -> dict | None:
    """The generation report stored alongside the cases, if any."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return document.get("report")
