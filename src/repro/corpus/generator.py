"""Seeded synthetic UB corpus generator.

The hand-written corpus is ~117 cases across 14 categories — enough to
anchor the paper's figures, far too small to exercise the execution layer
(scheduler, cache, service) at scale or to represent every ``UbKind``
well.  This module grows it deterministically: given ``(n, seed)`` it
emits ``n`` fresh :class:`~repro.corpus.case.UbCase` instances that are
**guaranteed valid** by construction, via two complementary sources:

* **Mutation** of existing cases through the AST.  Operators reuse the
  canonical printer and the conservative rename analysis from
  :mod:`repro.miri.fingerprint`:

  ========== ===================== ==========================================
  operator   fingerprint           effect
  ========== ===================== ==========================================
  rename     preserved             alpha-rename every renameable identifier
                                   to a fresh realistic spelling
  format     preserved             comments, blank lines, indentation noise
  distract   preserved             re-spell the benign ``aux_*`` distractor
                                   names (the noise block's identity)
  reorder    changed               permute provably-inert adjacent ``let``
                                   statements (literal-only initializer,
                                   name referenced nowhere) — the UB site
                                   and all observable behaviour survive
  inject     changed               add fresh benign distractor statements
                                   to both the buggy and fixed program
  perturb    changed               nudge integer literals inside provably-
                                   inert statements
  ========== ===================== ==========================================

* **Recombination** via parametric templates per :class:`UbKind`,
  weighted toward the under-represented kinds (UNALIGNED, UNINIT unions,
  DATA_RACE, drop-order ALLOC/DANGLING bugs), optionally spliced with
  UB-free context *preludes* borrowed from other categories' repaired
  patterns — cross-category recombination that never disturbs the
  labelled UB site.

Every candidate passes :func:`validate_case` before it is emitted: the
detector must report the labelled ``UbKind`` on ``source``, the
``fixed_source`` must run UB-free, and at least one listed
:class:`~repro.corpus.case.Strategy` must genuinely repair the program
(strategy exactness is *recomputed* against the fixed source's stdout).
Candidates that fail are rejected with a structured reason and the
generator resamples; the :class:`GenerationReport` counts both sides per
category.

Determinism contract: one ``random.Random(seed)`` stream drives every
choice, rejected candidates consume the stream exactly once each, names
are assigned per-category counters on acceptance — so the same
``(n, seed, categories)`` always yields the same cases in the same
order, and the serialized manifest (:mod:`repro.corpus.manifest`) is
byte-identical across runs, machines, and worker counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..check import apply_suggestion, check_source
from ..core.rewrites import REGISTRY, apply_rule
from ..lang import ast_nodes as ast
from ..lang.lexer import tokenize
from ..lang.parser import parse_program
from ..lang.printer import print_program
from ..lang.tokens import TokenKind as T
from ..miri import detect_ub
from ..miri.errors import UbKind
from ..miri.fingerprint import renameable_names
from .case import Strategy, UbCase, distractor_block, inject_preamble
from .dataset import Dataset, load_compile_dataset, load_dataset

#: Bump when generation rules change enough that the same seed produces a
#: different corpus; serialized into every manifest.
GENERATOR_VERSION = 1


# ---------------------------------------------------------------------------
# Validation


class CaseInvalid(Exception):
    """A candidate case failed self-validation.

    ``reason`` is one of the stable machine-readable codes below (the
    generation report buckets rejections by it); ``detail`` is the
    human-facing diagnosis.

    * ``source_passes``        — the buggy source runs UB-free
    * ``wrong_kind``           — first detected error is not the label
    * ``fixed_source_ub``      — the repaired reference still fails
    * ``unknown_rule``         — a strategy names an unregistered rule
    * ``no_repairing_strategy``— no listed strategy actually repairs
    * ``duplicate_source``     — byte-identical to an already-known case

    Compile cases (``UbKind.COMPILE``) validate against the static
    checker instead of the detector and add their own reasons:

    * ``checks_clean``             — the buggy source produces no
      diagnostics
    * ``wrong_code``               — the labelled ``expected_code`` is
      missing from the checker's report
    * ``fixed_source_diagnostics`` — the repaired reference does not
      check clean
    * ``suggestions_dont_repair``  — iteratively applying the first
      machine-applicable suggestion never reaches a checks-clean,
      UB-free program
    """

    def __init__(self, reason: str, detail: str):
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


#: Tail-call misuse legitimately surfaces as a function-pointer/call error
#: (the corpus ground-truth tests use the same relaxation).
_KIND_ALIASES = {
    UbKind.TAIL_CALL: (UbKind.TAIL_CALL, UbKind.FUNC_POINTER,
                       UbKind.FUNC_CALL),
}


def _validate_compile_case(case: UbCase) -> tuple[Strategy, ...]:
    """The compile-corpus contract: the buggy source must trip the static
    checker on the labelled code, the fix must check clean *and* run
    UB-free, and — when the checker offers machine-applicable
    suggestions — splicing the first suggestion repeatedly must converge
    to a checks-clean, UB-free program (the ``compile_fix`` engine
    leans on exactly that convergence)."""
    report = check_source(case.source)
    if report.ok:
        raise CaseInvalid(
            "checks_clean",
            f"{case.name}: buggy source produces no diagnostics")
    if case.expected_code is None or case.expected_code not in report.codes():
        raise CaseInvalid(
            "wrong_code",
            f"{case.name}: labelled {case.expected_code!r}, checker "
            f"reports {sorted(set(report.codes()))}")
    fixed_report = check_source(case.fixed_source)
    if not fixed_report.ok:
        raise CaseInvalid(
            "fixed_source_diagnostics",
            f"{case.name}: fixed source reports "
            f"{sorted(set(fixed_report.codes()))}")
    reference = detect_ub(case.fixed_source)
    if not reference.passed:
        raise CaseInvalid(
            "fixed_source_ub",
            f"{case.name}: fixed source still fails: "
            f"{reference.errors[0].message}")
    if any(diag.suggestions for diag in report.diagnostics):
        current = case.source
        for _round in range(5):
            round_report = check_source(current)
            if round_report.ok:
                break
            suggestions = [s for diag in round_report.diagnostics
                           for s in diag.suggestions]
            if not suggestions:
                raise CaseInvalid(
                    "suggestions_dont_repair",
                    f"{case.name}: suggestions ran dry before checking "
                    f"clean")
            current = apply_suggestion(current, suggestions[0])
        if not check_source(current).ok:
            raise CaseInvalid(
                "suggestions_dont_repair",
                f"{case.name}: still failing after 5 suggestion rounds")
        if not detect_ub(current).passed:
            raise CaseInvalid(
                "suggestions_dont_repair",
                f"{case.name}: suggestion-repaired program checks clean "
                f"but fails the detector")
    return case.strategies


def validate_case(case: UbCase) -> tuple[Strategy, ...]:
    """Check the full corpus contract for one case.

    Returns the *validated* strategies — the subset that genuinely
    repairs, with ``exact`` recomputed against the fixed source's stdout
    — or raises :class:`CaseInvalid` with a structured reason.  Compile
    cases validate against the static checker (see
    :func:`_validate_compile_case`); their strategies pass through
    unvetted (usually empty — the repair signal lives in the checker's
    suggestions, not the rewrite registry).
    """
    if case.category is UbKind.COMPILE:
        return _validate_compile_case(case)
    report = detect_ub(case.source)
    if report.passed:
        raise CaseInvalid("source_passes",
                          f"{case.name}: buggy source detects no UB")
    got = report.errors[0].kind
    allowed = _KIND_ALIASES.get(case.category, (case.category,))
    if got not in allowed:
        raise CaseInvalid(
            "wrong_kind",
            f"{case.name}: labelled {case.category.value}, detector "
            f"reports {got.value}")
    reference = detect_ub(case.fixed_source)
    if not reference.passed:
        raise CaseInvalid(
            "fixed_source_ub",
            f"{case.name}: fixed source still fails: "
            f"{reference.errors[0].message}")
    validated: list[Strategy] = []
    for strategy in case.strategies:
        if strategy.rule not in REGISTRY:
            raise CaseInvalid(
                "unknown_rule",
                f"{case.name}: strategy rule {strategy.rule!r} is not "
                f"registered")
        program = parse_program(case.source)
        repaired = apply_rule(program, strategy.rule)
        if repaired is None:
            continue
        outcome = detect_ub(print_program(repaired))
        if not outcome.passed:
            continue
        validated.append(Strategy(strategy.rule,
                                  exact=outcome.stdout == reference.stdout))
    if not validated:
        raise CaseInvalid(
            "no_repairing_strategy",
            f"{case.name}: none of "
            f"{[s.rule for s in case.strategies]} repairs the program")
    return tuple(validated)


# ---------------------------------------------------------------------------
# Mutation operators


class MutationSkip(Exception):
    """The operator does not apply to this case (not an error)."""


_LOWER_STEMS = ("val", "ptr", "buf", "cnt", "tmp", "raw", "data", "item",
                "slot", "mark", "reg", "acc", "probe", "cell", "word",
                "entry", "gauge", "level", "batch", "chunk")
_UPPER_STEMS = ("TOTAL", "COUNT", "STATE", "LIMIT", "QUOTA", "EPOCH",
                "PHASE", "TALLY", "DEPTH", "SCORE")
_SUFFIXES = ("", "_a", "_b", "_x", "_y", "_z", "_0", "_1", "_2", "_io",
             "_hi", "_lo")


def _ident_texts(source: str) -> set[str]:
    """Every identifier token spelled anywhere in ``source``."""
    return {token.text for token in tokenize(source)
            if token.kind is T.IDENT}


def _fresh_name(rng: random.Random, like: str, taken: set[str]) -> str:
    """A new identifier in the style of ``like`` that collides with
    nothing in ``taken``; deterministic in the rng stream."""
    stems = _UPPER_STEMS if like.isupper() else _LOWER_STEMS
    while True:
        name = rng.choice(stems) + rng.choice(_SUFFIXES)
        if like.isupper():
            name = name.upper()
        if name not in taken and name != like:
            taken.add(name)
            return name


def _splice_rename(source: str, mapping: dict[str, str]) -> str:
    """Apply an identifier mapping textually, splicing at token spans."""
    pieces: list[str] = []
    cursor = 0
    for token in tokenize(source):
        if token.kind is T.IDENT and token.text in mapping:
            pieces.append(source[cursor:token.span.start])
            pieces.append(mapping[token.text])
            cursor = token.span.end
    pieces.append(source[cursor:])
    return "".join(pieces)


def _canonical_pair(case: UbCase) -> tuple[str, str]:
    """Both sources in canonical (parse → print) form.

    Mutants are emitted in canonical style so one round of
    parse → print is a fixed point on everything the generator writes.
    """
    return (print_program(parse_program(case.source)),
            print_program(parse_program(case.fixed_source)))


def _rename_mapping(rng: random.Random, source: str, fixed: str,
                    only_prefix: str | None = None) -> dict[str, str]:
    """A shared, collision-free rename for both program texts.

    A name is renamed only when *every* text that spells it allows the
    rename (otherwise the buggy and fixed programs would drift apart in
    ways the fingerprint analysis never vetted for that text).
    """
    renameable = renameable_names(source)
    fixed_renameable = renameable_names(fixed)
    fixed_idents = _ident_texts(fixed)
    candidates = [name for name in renameable
                  if name not in fixed_idents or name in fixed_renameable]
    if only_prefix is not None:
        candidates = [name for name in candidates
                      if name.startswith(only_prefix)]
    if not candidates:
        raise MutationSkip("no renameable identifiers")
    taken = _ident_texts(source) | fixed_idents
    return {name: _fresh_name(rng, name, taken)
            for name in sorted(candidates)}


def mutate_rename(case: UbCase, rng: random.Random) -> tuple[str, str]:
    """Alpha-rename every renameable identifier (fingerprint-preserving)."""
    source, fixed = _canonical_pair(case)
    mapping = _rename_mapping(rng, source, fixed)
    return _splice_rename(source, mapping), _splice_rename(fixed, mapping)


def mutate_distract(case: UbCase, rng: random.Random) -> tuple[str, str]:
    """Re-spell only the benign ``aux_*`` distractor identifiers
    (fingerprint-preserving: the noise block changes identity, nothing
    else moves)."""
    source, fixed = _canonical_pair(case)
    mapping = _rename_mapping(rng, source, fixed, only_prefix="aux")
    return _splice_rename(source, mapping), _splice_rename(fixed, mapping)


_COMMENTS = (
    "// reviewed: matches the upstream driver",
    "// TODO(perf): hoist out of the hot loop",
    "// invariant checked by the caller",
    "// see the allocator notes in the module docs",
    "// keep in sync with the serializer",
    "/* carried over from the C prototype */",
)


def _mutate_format_text(text: str, rng: random.Random) -> str:
    """Comment/whitespace noise on one program text."""
    lines = text.splitlines()
    count = rng.randint(1, 3)
    for _ in range(count):
        at = rng.randrange(len(lines) + 1)
        indent = ""
        if at < len(lines):
            stripped = lines[at].lstrip()
            indent = lines[at][:len(lines[at]) - len(stripped)]
        lines.insert(at, indent + rng.choice(_COMMENTS))
    if rng.random() < 0.5:
        at = rng.randrange(len(lines))
        if lines[at].rstrip().endswith(";"):
            lines[at] = lines[at] + "  // noqa"
    if rng.random() < 0.5:
        lines.insert(rng.randrange(len(lines) + 1), "")
    return "\n".join(lines) + "\n"


def mutate_format(case: UbCase, rng: random.Random) -> tuple[str, str]:
    """Insert comments and blank lines (fingerprint-preserving)."""
    source, fixed = _canonical_pair(case)
    return (_mutate_format_text(source, rng),
            _mutate_format_text(fixed, rng))


def _is_inert_let(stmt: ast.Stmt, program: ast.Program) -> bool:
    """Provably-inert binding: a non-mut ``let`` whose initializer is
    built from literals alone (no paths, calls, or references — hence no
    reads, writes, allocation, or panics beyond const arithmetic) and
    whose name no expression in the program ever mentions.  Reordering or
    deleting such a statement cannot move the UB site."""
    if not isinstance(stmt, ast.LetStmt) or stmt.init is None or stmt.mutable:
        return False
    for node in ast.walk(stmt.init):
        if not isinstance(node, (ast.IntLit, ast.BoolLit, ast.StrLit,
                                 ast.CharLit, ast.Binary, ast.Unary)):
            return False
        if isinstance(node, ast.Unary) and node.op in ("&", "&mut", "*"):
            return False
        if isinstance(node, ast.Binary) and node.op in ("/", "%"):
            # Constant division can still panic on a zero denominator.
            if not (isinstance(node.right, ast.IntLit)
                    and node.right.value != 0):
                return False
    for node in ast.walk(program):
        if isinstance(node, ast.PathExpr) and node.is_local \
                and node.name == stmt.name and node is not stmt.init:
            return False
    return True


def _inert_runs(body: ast.Block, program: ast.Program) -> list[list[int]]:
    """Indices of maximal runs (length ≥ 2) of adjacent inert lets."""
    runs: list[list[int]] = []
    current: list[int] = []
    for index, stmt in enumerate(body.stmts):
        if _is_inert_let(stmt, program):
            current.append(index)
        else:
            if len(current) >= 2:
                runs.append(current)
            current = []
    if len(current) >= 2:
        runs.append(current)
    return runs


def mutate_reorder(case: UbCase, rng: random.Random) -> tuple[str, str]:
    """Permute a run of provably-inert statements in ``main`` — the UB
    site provably survives, the fingerprint does not."""
    program = parse_program(case.source)
    main = program.fn("main")
    if main is None:
        raise MutationSkip("no main function")
    runs = _inert_runs(main.body, program)
    if not runs:
        raise MutationSkip("no inert statement run to permute")
    run = runs[rng.randrange(len(runs))]
    order = list(run)
    rng.shuffle(order)
    if order == list(run):
        order = list(reversed(run))
    stmts = main.body.stmts
    originals = [stmts[index] for index in run]
    for slot, src_index in zip(run, order):
        stmts[slot] = originals[run.index(src_index)]
    source = print_program(program)
    _, fixed = _canonical_pair(case)
    if source == print_program(parse_program(case.source)):
        raise MutationSkip("permutation is the identity")
    return source, fixed


def mutate_inject(case: UbCase, rng: random.Random) -> tuple[str, str]:
    """Add a fresh benign distractor block to both programs."""
    source, fixed = _canonical_pair(case)
    if "fn main() {" not in source or "fn main() {" not in fixed:
        raise MutationSkip("no main block to inject into")
    prefix = f"aux{rng.randrange(2, 10)}"
    if f"{prefix}_" in source:
        raise MutationSkip("distractor prefix already taken")
    block = distractor_block(rng, prefix=prefix)
    return inject_preamble(source, block), inject_preamble(fixed, block)


def mutate_perturb(case: UbCase, rng: random.Random) -> tuple[str, str]:
    """Nudge integer literals inside provably-inert statements of the
    buggy program — behaviour-preserving, fingerprint-changing."""
    program = parse_program(case.source)
    main = program.fn("main")
    if main is None:
        raise MutationSkip("no main function")
    literals = [node
                for stmt in main.body.stmts
                if _is_inert_let(stmt, program)
                for node in ast.walk(stmt.init)
                if isinstance(node, ast.IntLit) and node.value > 0]
    if not literals:
        raise MutationSkip("no inert literal to perturb")
    for literal in literals:
        if rng.random() < 0.6:
            literal.value = literal.value + rng.randint(1, 40)
    _, fixed = _canonical_pair(case)
    source = print_program(program)
    if source == print_program(parse_program(case.source)):
        raise MutationSkip("no literal actually changed")
    return source, fixed


#: name → (operator, preserves_fingerprint).  Order matters: the rng
#: samples by index, so reordering this table changes every seed's output.
MUTATION_OPERATORS: dict[str, tuple[Callable, bool]] = {
    "rename": (mutate_rename, True),
    "format": (mutate_format, True),
    "distract": (mutate_distract, True),
    "reorder": (mutate_reorder, False),
    "inject": (mutate_inject, False),
    "perturb": (mutate_perturb, False),
}


def mutate_case(case: UbCase, rng: random.Random,
                operators: list[str] | None = None,
                name: str | None = None) -> UbCase:
    """Apply a chain of mutation operators to one case (unvalidated).

    ``operators`` defaults to a random 1–3 operator chain.  Raises
    :class:`MutationSkip` when no operator in the chain applied.
    """
    if operators is None:
        count = rng.randint(1, 3)
        pool = list(MUTATION_OPERATORS)
        operators = [pool[rng.randrange(len(pool))] for _ in range(count)]
    source, fixed = case.source, case.fixed_source
    applied: list[str] = []
    for op_name in operators:
        operator, _preserving = MUTATION_OPERATORS[op_name]
        stage = UbCase(name=case.name, category=case.category,
                       description=case.description, source=source,
                       fixed_source=fixed, strategies=case.strategies,
                       difficulty=case.difficulty)
        try:
            source, fixed = operator(stage, rng)
        except MutationSkip:
            continue
        applied.append(op_name)
    if not applied:
        raise MutationSkip("no operator in the chain applied")
    return UbCase(
        name=name or f"{case.name}__{'_'.join(applied)}",
        category=case.category,
        description=f"{case.description} [mutated: {'+'.join(applied)}]",
        source=source,
        fixed_source=fixed,
        strategies=case.strategies,
        difficulty=case.difficulty,
    )


# ---------------------------------------------------------------------------
# Parametric templates (recombination)


@dataclass(frozen=True)
class CaseTemplate:
    """One parametric UB pattern: a buggy/fixed source pair with holes,
    a sampler that fills them from the rng, and the candidate repair
    rules the validator will vet."""

    key: str
    category: UbKind
    description: str
    source: str
    fixed: str
    rules: tuple[str, ...]
    sampler: Callable[[random.Random], dict]
    difficulty: int = 2


def _pick(rng: random.Random, *options):
    return options[rng.randrange(len(options))]


def _tpl_unaligned(rng: random.Random) -> dict:
    width, align = _pick(rng, ("u16", 2), ("u32", 4), ("u64", 8))
    offset = rng.randrange(1, align) if align > 1 else 1
    return {
        "wty": width,
        "off": offset + align * rng.randrange(0, 2),
        "a": rng.randrange(1, 2 ** 31),
        "b": rng.randrange(1, 2 ** 31),
    }


def _tpl_union(rng: random.Random) -> dict:
    narrow, wide = _pick(rng, ("u8", "u32"), ("u8", "u64"), ("u16", "u64"),
                         ("u16", "u32"), ("u32", "u64"))
    return {
        "U": _pick(rng, "Header", "Lane", "Word", "Payload", "Packet",
                   "Record", "Fragment"),
        "narrow": narrow,
        "wide": wide,
        "val": rng.randrange(1, 200),
    }


def _tpl_race(rng: random.Random) -> dict:
    return {
        "NAME": _pick(rng, "SHARED", "TICKS", "EVENTS", "BYTES", "ROUNDS",
                      "PENDING"),
        "init": rng.randrange(0, 50),
        "inc": rng.randrange(1, 9),
        "inc2": rng.randrange(1, 9),
    }


def _tpl_drop(rng: random.Random) -> dict:
    return {
        "val": rng.randrange(1, 9999),
        "a": rng.randrange(1, 99),
        "b": rng.randrange(1, 99),
    }


def _tpl_ints(rng: random.Random) -> dict:
    return {
        "a": rng.randrange(1, 99),
        "b": rng.randrange(1, 99),
        "c": rng.randrange(1, 99),
        "idx": rng.randrange(4, 30),
    }


TEMPLATES: tuple[CaseTemplate, ...] = (
    # -- unaligned: new structural shapes around misaligned typed reads
    CaseTemplate(
        key="unaligned_cursor_read",
        category=UbKind.UNALIGNED,
        description="typed read through a byte cursor off the "
                    "alignment grid",
        source='''\
fn main() {{
    let words = [{a}u64, {b}];
    let base = words.as_ptr() as *const u8;
    let cursor = unsafe {{ base.add({off}) }};
    let typed = cursor as *const {wty};
    let value = unsafe {{ *typed }};
    println!("{{}}", value);
}}
''',
        fixed='''\
fn main() {{
    let words = [{a}u64, {b}];
    let base = words.as_ptr() as *const u8;
    let cursor = unsafe {{ base.add({off}) }};
    let typed = cursor as *const {wty};
    let value = unsafe {{ typed.read_unaligned() }};
    println!("{{}}", value);
}}
''',
        rules=("read_unaligned_instead", "guard_alignment_before_cast_read"),
        sampler=_tpl_unaligned,
        difficulty=2,
    ),
    # -- uninit unions: wider-than-written reads in fresh shapes
    CaseTemplate(
        key="uninit_union_wide_read",
        category=UbKind.UNINIT,
        description="union read through a wider field than was written",
        source='''\
union {U} {{
    small: {narrow},
    big: {wide},
}}
fn main() {{
    let packet = {U} {{ small: {val} }};
    let decoded = unsafe {{ packet.big }};
    println!("{{}}", decoded);
}}
''',
        fixed='''\
union {U} {{
    small: {narrow},
    big: {wide},
}}
fn main() {{
    let packet = {U} {{ small: {val} }};
    let decoded = unsafe {{ packet.small }};
    println!("{{}}", decoded);
}}
''',
        rules=("read_written_union_field",),
        sampler=_tpl_union,
        difficulty=3,
    ),
    CaseTemplate(
        key="uninit_assume_init_fresh",
        category=UbKind.UNINIT,
        description="assume_init on a MaybeUninit that was never written",
        source='''\
fn main() {{
    let staged: MaybeUninit<{wide}> = MaybeUninit::uninit();
    let level = unsafe {{ staged.assume_init() }};
    println!("{{}} {{}}", level, {val});
}}
''',
        fixed='''\
fn main() {{
    let staged: MaybeUninit<{wide}> = MaybeUninit::new(0);
    let level = unsafe {{ staged.assume_init() }};
    println!("{{}} {{}}", level, {val});
}}
''',
        rules=("replace_uninit_with_zero_init", "write_before_assume_init"),
        sampler=_tpl_union,
        difficulty=1,
    ),
    # -- data races: unsynchronized static mut traffic in fresh shapes
    CaseTemplate(
        key="datarace_accumulate",
        category=UbKind.DATA_RACE,
        description="parent and child both accumulate into a static mut",
        source='''\
static mut {NAME}: usize = {init};
fn main() {{
    let child = std::thread::spawn(move || {{
        unsafe {{ {NAME} += {inc}; }}
    }});
    unsafe {{ {NAME} += {inc2}; }}
    child.join();
    println!("{{}}", unsafe {{ {NAME} }});
}}
''',
        fixed='''\
static mut {NAME}: usize = {init};
fn main() {{
    let child = std::thread::spawn(move || {{
        unsafe {{ {NAME} += {inc}; }}
    }});
    child.join();
    unsafe {{ {NAME} += {inc2}; }}
    println!("{{}}", unsafe {{ {NAME} }});
}}
''',
        rules=("join_thread_before_access",
               "replace_static_mut_with_atomic", "protect_with_mutex"),
        sampler=_tpl_race,
        difficulty=3,
    ),
    CaseTemplate(
        key="datarace_snapshot",
        category=UbKind.DATA_RACE,
        description="unsynchronized snapshot read racing a writer thread",
        source='''\
static mut {NAME}: usize = {init};
fn main() {{
    let writer = std::thread::spawn(move || {{
        unsafe {{ {NAME} += {inc}; }}
    }});
    let seen = unsafe {{ {NAME} }};
    writer.join();
    println!("{{}}", seen + {inc2});
}}
''',
        fixed='''\
static mut {NAME}: usize = {init};
fn main() {{
    let writer = std::thread::spawn(move || {{
        unsafe {{ {NAME} += {inc}; }}
    }});
    writer.join();
    let seen = unsafe {{ {NAME} }};
    println!("{{}}", seen + {inc2});
}}
''',
        rules=("join_thread_before_access",),
        sampler=_tpl_race,
        difficulty=3,
    ),
    # -- drop-order bugs: frees and uses ordered wrongly
    CaseTemplate(
        key="alloc_drop_order_double_free",
        category=UbKind.ALLOC,
        description="drop-order bug: raw Box handle freed on both exits",
        source='''\
fn main() {{
    let owned = Box::new({val});
    let handle = Box::into_raw(owned);
    let copy = unsafe {{ *handle }};
    unsafe {{ drop(Box::from_raw(handle)); }}
    unsafe {{ drop(Box::from_raw(handle)); }}
    println!("{{}} {{}}", copy, {a});
}}
''',
        fixed='''\
fn main() {{
    let owned = Box::new({val});
    let handle = Box::into_raw(owned);
    let copy = unsafe {{ *handle }};
    unsafe {{ drop(Box::from_raw(handle)); }}
    println!("{{}} {{}}", copy, {a});
}}
''',
        rules=("remove_second_free",),
        sampler=_tpl_drop,
        difficulty=1,
    ),
    CaseTemplate(
        key="dangling_drop_order_use",
        category=UbKind.DANGLING_POINTER,
        description="drop-order bug: buffer dropped before its last use",
        source='''\
fn main() {{
    let staging = vec![{a}, {b}, {val}];
    let head = staging[0];
    drop(staging);
    let tail = staging[2];
    println!("{{}} {{}}", head, tail);
}}
''',
        fixed='''\
fn main() {{
    let staging = vec![{a}, {b}, {val}];
    let head = staging[0];
    let tail = staging[2];
    drop(staging);
    println!("{{}} {{}}", head, tail);
}}
''',
        rules=("move_drop_after_last_use",),
        sampler=_tpl_drop,
        difficulty=2,
    ),
    # -- a broader tail so every generatable category has a template
    CaseTemplate(
        key="panic_index_sweep",
        category=UbKind.PANIC,
        description="index out of bounds on a short buffer",
        source='''\
fn main() {{
    let samples = vec![{a}, {b}, {c}];
    let want = {idx};
    let sample = samples[want];
    println!("{{}}", sample);
}}
''',
        fixed='''\
fn main() {{
    let samples = vec![{a}, {b}, {c}];
    let want = {idx};
    let sample = if want < samples.len() {{ samples[want] }} else {{ 0 }};
    println!("{{}}", sample);
}}
''',
        rules=("guard_index_with_len_check",),
        sampler=_tpl_ints,
        difficulty=1,
    ),
    CaseTemplate(
        key="dangling_ptr_walk",
        category=UbKind.DANGLING_POINTER,
        description="pointer arithmetic walks past the buffer end",
        source='''\
fn main() {{
    let lane = vec![{a}, {b}, {c}];
    let step = {idx};
    let base = lane.as_ptr();
    let out = unsafe {{ *base.add(step) }};
    println!("{{}}", out);
}}
''',
        fixed='''\
fn main() {{
    let lane = vec![{a}, {b}, {c}];
    let step = {idx};
    let base = lane.as_ptr();
    let out = if step < lane.len() {{ unsafe {{ *base.add(step) }} }} else {{ 0 }};
    println!("{{}}", out);
}}
''',
        rules=("guard_ptr_add_with_len_check",),
        sampler=_tpl_ints,
        difficulty=2,
    ),
    CaseTemplate(
        key="uninit_set_len_window",
        category=UbKind.UNINIT,
        description="set_len publishes an uninitialised window",
        source='''\
fn main() {{
    let mut window: Vec<{narrow}> = Vec::with_capacity(8);
    unsafe {{ window.set_len(4); }}
    let probe = window[2];
    println!("{{}} {{}}", probe, {val});
}}
''',
        fixed='''\
fn main() {{
    let mut window: Vec<{narrow}> = Vec::with_capacity(8);
    window.resize(4, 0);
    let probe = window[2];
    println!("{{}} {{}}", probe, {val});
}}
''',
        rules=("replace_set_len_with_resize",),
        sampler=_tpl_union,
        difficulty=2,
    ),
)

#: Benign, UB-free context snippets harvested from *other* categories'
#: repaired patterns; splicing one into a template instantiation is the
#: cross-category recombination step.  Each entry is (origin category,
#: items prelude, main-body statements) — all pure context, provably
#: outside the labelled UB site.
CONTEXT_PRELUDES: tuple[tuple[UbKind, str, str], ...] = (
    (UbKind.FUNC_CALL,
     "fn ctx_scale(x: i32, k: i32) -> i32 { x * k }\n",
     "    let ctx_scaled = ctx_scale(3, 4);\n"
     "    let ctx_shift = ctx_scaled + 1;\n"),
    (UbKind.UNALIGNED,
     "",
     "    let ctx_words = [7u64, 9];\n"
     "    let ctx_bytes = ctx_words.as_ptr() as *const u8;\n"
     "    let ctx_head = unsafe { *ctx_bytes };\n"),
    (UbKind.PANIC,
     "",
     "    let ctx_pool = vec![5, 6, 7];\n"
     "    let ctx_pick = if 1 < ctx_pool.len() { ctx_pool[1] } else { 0 };\n"),
    (UbKind.VALIDITY,
     "",
     "    let ctx_raw: u8 = 1;\n"
     "    let ctx_flag = ctx_raw != 0;\n"),
)


def instantiate_template(template: CaseTemplate, rng: random.Random,
                         name: str) -> UbCase:
    """One concrete case from a template: sample parameters, optionally
    recombine with a cross-category context prelude, add distractors."""
    params = template.sampler(rng)
    source = template.source.format(**params)
    fixed = template.fixed.format(**params)
    if rng.random() < 0.5:
        origin, items, stmts = CONTEXT_PRELUDES[
            rng.randrange(len(CONTEXT_PRELUDES))]
        if origin is not template.category:
            source = items + source
            fixed = items + fixed
            source = inject_preamble(source, stmts.rstrip("\n"))
            fixed = inject_preamble(fixed, stmts.rstrip("\n"))
    block = distractor_block(rng)
    source = inject_preamble(source, block)
    fixed = inject_preamble(fixed, block)
    return UbCase(
        name=name,
        category=template.category,
        description=template.description,
        source=source,
        fixed_source=fixed,
        strategies=tuple(Strategy(rule) for rule in template.rules),
        difficulty=template.difficulty,
    )


# ---------------------------------------------------------------------------
# Compile-error templates (the non-compiling corpus)


@dataclass(frozen=True)
class CompileTemplate:
    """One parametric compile-error pattern: a buggy/fixed pair with
    holes, the stable checker code the buggy side must trip, and a
    sampler filling the holes from the rng.  Kept in a separate table
    from :data:`TEMPLATES` so the UB generator's rng stream — and hence
    every existing ``(n, seed)`` corpus — is untouched."""

    key: str
    expected_code: str
    description: str
    source: str
    fixed: str
    sampler: Callable[[random.Random], dict]
    difficulty: int = 1


_TYPO_NAMES = ("count", "total", "width", "level", "budget", "offset",
               "cursor", "window")
_FN_NAMES = ("combine", "scale_by", "merge", "accumulate", "blend")


def _swap_typo(name: str, rng: random.Random) -> str:
    """Transpose two adjacent characters — close enough that the
    checker's difflib suggestion recovers the original spelling."""
    at = rng.randrange(len(name) - 1)
    chars = list(name)
    chars[at], chars[at + 1] = chars[at + 1], chars[at]
    return "".join(chars)


def _tpl_typo(rng: random.Random) -> dict:
    name = _pick(rng, *_TYPO_NAMES)
    typo = _swap_typo(name, rng)
    while typo == name:
        typo = _swap_typo(name, rng)
    return {"name": name, "typo": typo,
            "a": rng.randrange(1, 99), "b": rng.randrange(1, 99)}


def _tpl_name_ints(rng: random.Random) -> dict:
    return {"name": _pick(rng, *_TYPO_NAMES),
            "a": rng.randrange(1, 99), "b": rng.randrange(1, 99)}


def _tpl_fn_call(rng: random.Random) -> dict:
    return {"fn": _pick(rng, *_FN_NAMES),
            "a": rng.randrange(1, 99), "b": rng.randrange(1, 99)}


def _tpl_transmute(rng: random.Random) -> dict:
    src, dst = _pick(rng, ("u32", "u64"), ("u16", "u64"), ("u16", "u32"),
                     ("u8", "u32"), ("u8", "u64"))
    return {"src": src, "dst": dst, "a": rng.randrange(1, 200)}


COMPILE_TEMPLATES: tuple[CompileTemplate, ...] = (
    CompileTemplate(
        key="compile_typo_use",
        expected_code="E0425",
        description="misspelled local in an initializer",
        source='''\
fn main() {{
    let {name} = {a};
    let report = {typo} + {b};
    println!("{{}}", report);
}}
''',
        fixed='''\
fn main() {{
    let {name} = {a};
    let report = {name} + {b};
    println!("{{}}", report);
}}
''',
        sampler=_tpl_typo,
    ),
    CompileTemplate(
        key="compile_immutable_reassign",
        expected_code="E0384",
        description="reassignment of an immutable binding",
        source='''\
fn main() {{
    let {name} = {a};
    {name} = {name} + {b};
    println!("{{}}", {name});
}}
''',
        fixed='''\
fn main() {{
    let mut {name} = {a};
    {name} = {name} + {b};
    println!("{{}}", {name});
}}
''',
        sampler=_tpl_name_ints,
    ),
    CompileTemplate(
        key="compile_assign_through_shared",
        expected_code="E0594",
        description="assignment through a shared reference",
        source='''\
fn main() {{
    let mut {name} = {a};
    let slot = &{name};
    *slot = {b};
    println!("{{}}", {name});
}}
''',
        fixed='''\
fn main() {{
    let mut {name} = {a};
    let slot = &mut {name};
    *slot = {b};
    println!("{{}}", {name});
}}
''',
        sampler=_tpl_name_ints,
        difficulty=2,
    ),
    CompileTemplate(
        key="compile_bool_from_int",
        expected_code="E0308",
        description="bool annotation on an integer initializer",
        source='''\
fn main() {{
    let {name} = {a};
    let ready: bool = {name};
    if ready {{
        println!("{{}}", {b});
    }}
}}
''',
        fixed='''\
fn main() {{
    let {name} = {a};
    let ready: bool = {name} != 0;
    if ready {{
        println!("{{}}", {b});
    }}
}}
''',
        sampler=_tpl_name_ints,
    ),
    CompileTemplate(
        key="compile_missing_arg",
        expected_code="E0061",
        description="call with one argument short of the signature",
        source='''\
fn {fn}(base: i32, extra: i32) -> i32 {{ base + extra }}
fn main() {{
    let summed = {fn}({a});
    println!("{{}}", summed);
}}
''',
        fixed='''\
fn {fn}(base: i32, extra: i32) -> i32 {{ base + extra }}
fn main() {{
    let summed = {fn}({a}, {b});
    println!("{{}}", summed);
}}
''',
        sampler=_tpl_fn_call,
    ),
    CompileTemplate(
        key="compile_transmute_widen",
        expected_code="E0512",
        description="transmute between differently sized integers",
        source='''\
fn main() {{
    let raw: {src} = {a};
    let wide: {dst} = unsafe {{ std::mem::transmute::<{src}, {dst}>(raw) }};
    println!("{{}}", wide);
}}
''',
        fixed='''\
fn main() {{
    let raw: {src} = {a};
    let wide: {dst} = raw as {dst};
    println!("{{}}", wide);
}}
''',
        sampler=_tpl_transmute,
        difficulty=2,
    ),
)


def instantiate_compile_template(template: CompileTemplate,
                                 rng: random.Random, name: str) -> UbCase:
    """One concrete compile case: sample parameters, add distractors to
    both sides (the filler checks clean, so the labelled code stays the
    only diagnostic family present)."""
    params = template.sampler(rng)
    source = template.source.format(**params)
    fixed = template.fixed.format(**params)
    block = distractor_block(rng)
    source = inject_preamble(source, block)
    fixed = inject_preamble(fixed, block)
    return UbCase(
        name=name,
        category=UbKind.COMPILE,
        description=template.description,
        source=source,
        fixed_source=fixed,
        strategies=(),
        difficulty=template.difficulty,
        expected_code=template.expected_code,
    )


def generate_compile_corpus(n: int, seed: int,
                            ) -> tuple[list[UbCase], GenerationReport]:
    """Generate ``n`` validated compile-error cases, deterministic in
    ``seed``.  Templates round-robin so every error shape is
    represented; every emitted case has passed the compile branch of
    :func:`validate_case`."""
    if n < 0:
        raise GenerationError(f"n must be non-negative, got {n}")
    rng = random.Random(seed)
    report = GenerationReport(seed=seed, requested=n)
    stats = report.stats(UbKind.COMPILE)
    known_sources = {case.source for case in load_compile_dataset()}
    emitted: list[UbCase] = []
    counter = 0
    while len(emitted) < n:
        template = COMPILE_TEMPLATES[len(emitted) % len(COMPILE_TEMPLATES)]
        case = None
        for _attempt in range(_MAX_ATTEMPTS_PER_CASE):
            stats.attempts += 1
            report.attempts += 1
            name = f"gen_compile_{counter:04d}"
            candidate = instantiate_compile_template(template, rng, name)
            try:
                if candidate.source in known_sources:
                    raise CaseInvalid(
                        "duplicate_source",
                        f"{name}: byte-identical to a known case")
                validate_case(candidate)
            except CaseInvalid as invalid:
                stats.reject(invalid.reason)
                continue
            case = candidate
            break
        if case is None:
            raise GenerationError(
                f"compile template {template.key}: "
                f"{_MAX_ATTEMPTS_PER_CASE} consecutive candidates rejected "
                f"({dict(sorted(stats.rejected.items()))})")
        emitted.append(case)
        known_sources.add(case.source)
        counter += 1
        stats.emitted += 1
        report.emitted += 1
    return emitted, report


# ---------------------------------------------------------------------------
# The generator


class GenerationError(Exception):
    """Generation cannot make progress (bad category, budget exhausted)."""


@dataclass
class CategoryStats:
    emitted: int = 0
    attempts: int = 0
    rejected: dict[str, int] = field(default_factory=dict)

    def reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def to_dict(self) -> dict:
        total_rejected = sum(self.rejected.values())
        return {
            "emitted": self.emitted,
            "attempts": self.attempts,
            "rejected": dict(sorted(self.rejected.items())),
            "validation_rate": round(self.emitted / self.attempts, 4)
            if self.attempts else None,
            "total_rejected": total_rejected,
        }


@dataclass
class GenerationReport:
    """What one :func:`generate_corpus` run did, per category."""

    seed: int
    requested: int
    emitted: int = 0
    attempts: int = 0
    categories: dict[str, CategoryStats] = field(default_factory=dict)

    def stats(self, category: UbKind) -> CategoryStats:
        return self.categories.setdefault(category.value, CategoryStats())

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "requested": self.requested,
            "emitted": self.emitted,
            "attempts": self.attempts,
            "categories": {name: stats.to_dict()
                           for name, stats in sorted(self.categories.items())},
        }


#: Categories the generator can mint cases for: every category with at
#: least one template or at least one mutable parent in the base corpus.
def generatable_categories() -> list[UbKind]:
    kinds = {template.category for template in TEMPLATES}
    kinds.update(case.category for case in load_dataset())
    order = {kind: index for index, kind in enumerate(UbKind)}
    return sorted(kinds, key=lambda kind: order[kind])


#: Attempt budget per emitted case before generation aborts; generous —
#: observed rejection rates are a few percent.
_MAX_ATTEMPTS_PER_CASE = 25


def generate_corpus(n: int, seed: int,
                    categories: list[UbKind] | None = None,
                    ) -> tuple[list[UbCase], GenerationReport]:
    """Generate ``n`` validated cases, deterministically in ``seed``.

    Categories round-robin so every requested kind is represented
    (under-represented kinds get exactly the same share as the rest of
    the requested list).  Every emitted case has passed
    :func:`validate_case`; rejects are counted in the report.
    """
    if n < 0:
        raise GenerationError(f"n must be non-negative, got {n}")
    available = generatable_categories()
    if categories is None:
        categories = available
    else:
        unsupported = [cat for cat in categories if cat not in available]
        if unsupported:
            raise GenerationError(
                "no templates or mutable parents for: "
                + ", ".join(cat.value for cat in unsupported))
        categories = list(categories)
    rng = random.Random(seed)
    base = load_dataset()
    parents: dict[UbKind, list[UbCase]] = {
        category: base.by_category(category) for category in categories}
    templates: dict[UbKind, list[CaseTemplate]] = {}
    for template in TEMPLATES:
        templates.setdefault(template.category, []).append(template)
    known_sources = {case.source for case in base}
    report = GenerationReport(seed=seed, requested=n)
    emitted: list[UbCase] = []
    counters: dict[UbKind, int] = {category: 0 for category in categories}

    slot = 0
    while len(emitted) < n:
        category = categories[slot % len(categories)]
        stats = report.stats(category)
        case = None
        for _attempt in range(_MAX_ATTEMPTS_PER_CASE):
            stats.attempts += 1
            report.attempts += 1
            name = f"gen_{category.value}_{counters[category]:04d}"
            cat_templates = templates.get(category, [])
            cat_parents = parents.get(category, [])
            use_template = bool(cat_templates) and (
                not cat_parents or rng.random() < 0.5)
            try:
                if use_template:
                    template = cat_templates[rng.randrange(len(cat_templates))]
                    candidate = instantiate_template(template, rng, name)
                else:
                    parent = cat_parents[rng.randrange(len(cat_parents))]
                    candidate = mutate_case(parent, rng, name=name)
                if candidate.source in known_sources:
                    raise CaseInvalid(
                        "duplicate_source",
                        f"{name}: byte-identical to a known case")
                validated = validate_case(candidate)
            except MutationSkip:
                stats.reject("no_mutation_applied")
                continue
            except CaseInvalid as invalid:
                stats.reject(invalid.reason)
                continue
            case = UbCase(
                name=candidate.name, category=candidate.category,
                description=candidate.description, source=candidate.source,
                fixed_source=candidate.fixed_source, strategies=validated,
                difficulty=candidate.difficulty)
            break
        if case is None:
            raise GenerationError(
                f"category {category.value}: {_MAX_ATTEMPTS_PER_CASE} "
                f"consecutive candidates rejected "
                f"({dict(sorted(stats.rejected.items()))})")
        emitted.append(case)
        known_sources.add(case.source)
        # Accepted mutants join the parent pool, so later cases can
        # compound mutations (lineage chains).
        parents.setdefault(category, []).append(case)
        counters[category] += 1
        stats.emitted += 1
        report.emitted += 1
        slot += 1
    return emitted, report


def generate_sources(count: int, seed: int) -> list[str]:
    """``count`` parseable mutated source texts, *without* validation.

    The cheap feed for the lang-layer property tests: every text comes
    from a mutation chain over a real corpus case (buggy or fixed side),
    so the round-trip suite sees generator-shaped programs without
    paying for detector runs.
    """
    rng = random.Random(seed)
    base = list(load_dataset())
    sources: list[str] = []
    while len(sources) < count:
        parent = base[rng.randrange(len(base))]
        try:
            mutant = mutate_case(parent, rng)
        except MutationSkip:
            continue
        sources.append(mutant.source)
        if len(sources) < count:
            sources.append(mutant.fixed_source)
    return sources[:count]
