"""Dataset case model.

A :class:`UbCase` mirrors one entry of the Miri-test-suite dataset the paper
evaluates on: a buggy program that triggers a specific UB category, the
developer-repaired reference (which defines "acceptable semantics" for the
*exec* metric, exactly as §II-A describes), and the repair strategies that
genuinely fix it — used by the corpus self-tests and as the ground truth the
simulated LLM oracle is *scored against* (never handed directly).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from ..miri.errors import UbKind


@dataclass(frozen=True)
class Strategy:
    """One genuinely-viable repair for a case.

    ``exact`` marks strategies whose repaired program is observably
    equivalent to the developer reference (→ counts for the *exec* rate);
    non-exact strategies pass Miri but change observable behaviour
    (→ counts only for the *pass* rate).
    """

    rule: str
    exact: bool = True


@dataclass(frozen=True)
class UbCase:
    name: str
    category: UbKind
    description: str
    source: str
    fixed_source: str
    strategies: tuple[Strategy, ...]
    #: 1 (mechanical) .. 5 (requires deep semantic understanding). Drives the
    #: simulated-LLM difficulty model and the human-expert timing model.
    difficulty: int = 2
    #: For ``UbKind.COMPILE`` cases only: the stable checker code
    #: (``"E0xxx"``) the buggy source is labelled with.  ``None`` for the
    #: dynamic-UB corpus, whose sources all check clean.
    expected_code: str | None = None

    def strategy_rules(self) -> list[str]:
        return [s.rule for s in self.strategies]

    def exact_rules(self) -> set[str]:
        return {s.rule for s in self.strategies if s.exact}


#: Benign filler statements (no unsafe ops, literal-only arithmetic, no IO)
#: mixed into every case. Real-world functions carry plenty of logic that is
#: irrelevant to the UB — this is precisely the noise Algorithm 1 prunes.
_DISTRACTOR_POOL = [
    "let aux_rate = {a} * 3 + 1;",
    "let aux_span = {a} + {b};",
    "let mut aux_total = 0;\n"
    "    for aux_i in 0..{b} {{\n"
    "        aux_total += aux_i * 2;\n"
    "    }}",
    "let aux_half = {a} / 2;",
    "let aux_flag = {a} > {b};",
    "let aux_mask = ({a} << 2) | 1;",
    "let aux_label = \"phase-{b}\";",
    "let aux_delta = {a} - {b} + 4;",
]


def distractor_block(rng: random.Random, prefix: str = "aux") -> str:
    """Benign filler statements drawn from ``rng``.

    ``prefix`` replaces the pool's ``aux`` stem, so callers (the corpus
    generator) can inject several independent blocks into one program
    without name collisions.
    """
    count = rng.randint(2, 4)
    picks = rng.sample(range(len(_DISTRACTOR_POOL)), count)
    lines = []
    for pick in sorted(picks):
        a, b = rng.randint(2, 9), rng.randint(2, 9)
        text = _DISTRACTOR_POOL[pick].format(a=a, b=b)
        if prefix != "aux":
            text = text.replace("aux_", f"{prefix}_")
        lines.append("    " + text)
    return "\n".join(lines)


def _distractors(case_name: str) -> str:
    """Deterministic filler block derived from the case name."""
    digest = hashlib.blake2b(case_name.encode(), digest_size=8).digest()
    return distractor_block(random.Random(int.from_bytes(digest, "big")))


def inject_preamble(source: str, preamble: str) -> str:
    """Insert the filler right after ``fn main() {``."""
    marker = "fn main() {"
    index = source.find(marker)
    if index == -1:
        return source
    insert_at = index + len(marker)
    newline = source.find("\n", insert_at)
    if newline == -1:
        return source
    return source[: newline + 1] + preamble + "\n" + source[newline + 1 :]


def make_cases(prefix: str, category: UbKind, description: str,
               template: str, fixed_template: str,
               strategies: tuple[Strategy, ...],
               variants: list[dict], difficulty: int = 2,
               distractors: bool = True) -> list[UbCase]:
    """Instantiate several concrete cases from one buggy/fixed template pair.

    Mirrors how the Miri test suite contains many small variations of each
    failure pattern; distinct names/constants give each case a distinct AST
    (exercising the knowledge base's similarity search, not string equality).
    Each case also receives deterministic benign filler statements so that
    programs contain UB-irrelevant context, as real code does.
    """
    cases = []
    for index, subs in enumerate(variants):
        name = f"{prefix}_{index + 1}"
        source = template.format(**subs)
        fixed = fixed_template.format(**subs)
        if distractors:
            preamble = _distractors(name)
            source = inject_preamble(source, preamble)
            fixed = inject_preamble(fixed, preamble)
        cases.append(UbCase(
            name=name,
            category=category,
            description=description,
            source=source,
            fixed_source=fixed,
            strategies=strategies,
            difficulty=difficulty,
        ))
    return cases
