"""Dataset cases: datarace, concurrency."""

from ..miri.errors import UbKind
from .case import Strategy, UbCase, make_cases

# ---------------------------------------------------------------------------
# datarace — unsynchronized cross-thread accesses

DATARACE_CASES = (
    make_cases(
        "datarace_static_counter", UbKind.DATA_RACE,
        "two threads increment a static mut without synchronisation",
        template='''\
static mut {NAME}: usize = 0;
fn main() {{
    let worker = std::thread::spawn(move || {{
        unsafe {{ {NAME} += {inc}; }}
    }});
    unsafe {{ {NAME} += {inc2}; }}
    worker.join();
    println!("{{}}", unsafe {{ {NAME} }});
}}
''',
        fixed_template='''\
static {NAME}: AtomicUsize = AtomicUsize::new(0);
fn main() {{
    let worker = std::thread::spawn(move || {{
        {NAME}.fetch_add({inc}, Ordering::SeqCst);
    }});
    {NAME}.fetch_add({inc2}, Ordering::SeqCst);
    worker.join();
    println!("{{}}", {NAME}.load(Ordering::SeqCst));
}}
''',
        strategies=(Strategy("replace_static_mut_with_atomic"),
                    Strategy("protect_with_mutex"),
                    Strategy("join_thread_before_access")),
        variants=[{"NAME": "COUNTER", "inc": 1, "inc2": 1},
                  {"NAME": "TICKS", "inc": 5, "inc2": 3},
                  {"NAME": "HITS", "inc": 2, "inc2": 7}],
        difficulty=3,
    )
    + make_cases(
        "datarace_raw_pointer", UbKind.DATA_RACE,
        "child writes through a captured raw pointer while parent writes too",
        template='''\
fn main() {{
    let mut buffer = {val}i64;
    let p = &mut buffer as *mut i64;
    let h = std::thread::spawn(move || {{
        unsafe {{ *p = {tval}; }}
    }});
    buffer = {mval};
    h.join();
    println!("{{}}", buffer);
}}
''',
        fixed_template='''\
fn main() {{
    let mut buffer = {val}i64;
    let p = &mut buffer as *mut i64;
    let h = std::thread::spawn(move || {{
        unsafe {{ *p = {tval}; }}
    }});
    h.join();
    buffer = {mval};
    println!("{{}}", buffer);
}}
''',
        strategies=(Strategy("join_thread_before_access"),),
        variants=[{"val": 0, "tval": 1, "mval": 2},
                  {"val": 10, "tval": 20, "mval": 30},
                  {"val": 5, "tval": 6, "mval": 7}],
        difficulty=4,
    )
    + make_cases(
        "datarace_reader", UbKind.DATA_RACE,
        "parent reads a static mut the child is writing",
        template='''\
static mut {NAME}: usize = {init};
fn main() {{
    let writer = std::thread::spawn(move || {{
        unsafe {{ {NAME} += {inc}; }}
    }});
    let snapshot = unsafe {{ {NAME} }};
    writer.join();
    println!("{{}}", snapshot);
}}
''',
        fixed_template='''\
static mut {NAME}: usize = {init};
fn main() {{
    let writer = std::thread::spawn(move || {{
        unsafe {{ {NAME} += {inc}; }}
    }});
    writer.join();
    let snapshot = unsafe {{ {NAME} }};
    println!("{{}}", snapshot);
}}
''',
        strategies=(Strategy("join_thread_before_access"),),
        variants=[{"NAME": "TOTAL", "init": 100, "inc": 11},
                  {"NAME": "GAUGE", "init": 50, "inc": 3}],
        difficulty=3,
    )
)

# ---------------------------------------------------------------------------
# concurrency — thread lifecycle and lock misuse (non-race)

CONCURRENCY_CASES = (
    make_cases(
        "concurrency_unjoined_thread", UbKind.CONCURRENCY,
        "main exits without joining a spawned thread",
        template='''\
static {FLAG}: AtomicUsize = AtomicUsize::new(0);
fn main() {{
    std::thread::spawn(move || {{
        {FLAG}.store({val}, Ordering::SeqCst);
    }});
    println!("spawned");
}}
''',
        fixed_template='''\
static {FLAG}: AtomicUsize = AtomicUsize::new(0);
fn main() {{
    let __handle = std::thread::spawn(move || {{
        {FLAG}.store({val}, Ordering::SeqCst);
    }});
    __handle.join();
    println!("spawned");
}}
''',
        strategies=(Strategy("add_missing_join"),),
        variants=[{"FLAG": "READY", "val": 1},
                  {"FLAG": "STATE", "val": 7},
                  {"FLAG": "DONE", "val": 3}],
        difficulty=1,
    )
    + make_cases(
        "concurrency_double_lock", UbKind.CONCURRENCY,
        "locking a mutex twice on the same thread (deadlock)",
        template='''\
static {M}: Mutex<i32> = Mutex::new({init});
fn main() {{
    let first = {M}.lock();
    let total = *first + {inc};
    let second = {M}.lock();
    println!("{{}} {{}}", total, *second);
}}
''',
        fixed_template='''\
static {M}: Mutex<i32> = Mutex::new({init});
fn main() {{
    let first = {M}.lock();
    let total = *first + {inc};
    drop(first);
    let second = {M}.lock();
    println!("{{}} {{}}", total, *second);
}}
''',
        strategies=(Strategy("release_lock_before_relock"),),
        variants=[{"M": "STATE", "init": 4, "inc": 6},
                  {"M": "BUDGET", "init": 100, "inc": -10},
                  {"M": "CACHE", "init": 9, "inc": 1}],
        difficulty=3,
    )
    + make_cases(
        "concurrency_two_workers_unjoined", UbKind.CONCURRENCY,
        "one of two workers is never joined",
        template='''\
static {C}: AtomicUsize = AtomicUsize::new(0);
fn main() {{
    let first = std::thread::spawn(move || {{
        {C}.fetch_add(1, Ordering::SeqCst);
    }});
    std::thread::spawn(move || {{
        {C}.fetch_add(1, Ordering::SeqCst);
    }});
    first.join();
    println!("done");
}}
''',
        fixed_template='''\
static {C}: AtomicUsize = AtomicUsize::new(0);
fn main() {{
    let first = std::thread::spawn(move || {{
        {C}.fetch_add(1, Ordering::SeqCst);
    }});
    let __handle = std::thread::spawn(move || {{
        {C}.fetch_add(1, Ordering::SeqCst);
    }});
    first.join();
    __handle.join();
    println!("done");
}}
''',
        strategies=(Strategy("add_missing_join"),),
        variants=[{"C": "JOBS"}, {"C": "TICKETS"}],
        difficulty=2,
    )
)

CASES = DATARACE_CASES + CONCURRENCY_CASES
