"""The UB corpus: mini-Rust programs with labelled undefined behaviour.

Analogous to the dataset the paper collects from the Miri repository
(§IV "Datasets"): each case carries the buggy source, the developer-repaired
reference (defining acceptable semantics for the *exec* metric), and the
ground-truth repair strategies used for corpus validation and oracle scoring.

The hand-written base corpus loads through :func:`load_dataset`; the
seeded synthetic generator (:mod:`repro.corpus.generator`) scales it
deterministically, and generated corpora round-trip through versioned
``repro.corpus/1`` manifests (:mod:`repro.corpus.manifest`).
"""

from .case import Strategy, UbCase
from .dataset import (Dataset, DuplicateCaseError, load_compile_dataset,
                      load_dataset)
from .generator import (CaseInvalid, GenerationError, GenerationReport,
                        generate_compile_corpus, generate_corpus,
                        generate_sources, validate_case)
from .manifest import (MANIFEST_SCHEMA, ManifestError, load_manifest,
                       save_manifest)

__all__ = [
    "CaseInvalid",
    "Dataset",
    "DuplicateCaseError",
    "GenerationError",
    "GenerationReport",
    "MANIFEST_SCHEMA",
    "ManifestError",
    "Strategy",
    "UbCase",
    "generate_compile_corpus",
    "generate_corpus",
    "generate_sources",
    "load_compile_dataset",
    "load_dataset",
    "load_manifest",
    "save_manifest",
    "validate_case",
]
