"""The UB corpus: mini-Rust programs with labelled undefined behaviour.

Analogous to the dataset the paper collects from the Miri repository
(§IV "Datasets"): each case carries the buggy source, the developer-repaired
reference (defining acceptable semantics for the *exec* metric), and the
ground-truth repair strategies used for corpus validation and oracle scoring.
"""

from .case import Strategy, UbCase
from .dataset import Dataset, load_dataset

__all__ = ["Dataset", "Strategy", "UbCase", "load_dataset"]
