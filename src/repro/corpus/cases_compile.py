"""Hand-written compile-error corpus: one case per stable checker code.

Where the UB corpus anchors the *dynamic* repair engines, this set
anchors the static front door: every :data:`~repro.check.ERROR_CODES`
entry has one minimal case whose buggy source trips exactly that code
and whose fixed source both checks clean and runs UB-free.  The golden
diagnostic tests and the ``compile_fix`` benchmark sweep this set, so
these sources double as the checker's regression fixtures — keep them
small and single-fault.

Strategies are empty by design: the repair signal for compile cases is
the checker's machine-applicable suggestion, not the rewrite registry.
"""

from ..miri.errors import UbKind
from .case import UbCase


def _case(name: str, code: str, description: str, source: str,
          fixed: str, difficulty: int = 1) -> UbCase:
    return UbCase(
        name=name,
        category=UbKind.COMPILE,
        description=description,
        source=source,
        fixed_source=fixed,
        strategies=(),
        difficulty=difficulty,
        expected_code=code,
    )


CASES = (
    _case(
        "compile_syntax_unclosed", "E0001",
        "unclosed parameter list in a function header",
        "fn main( {\n    let x = 1;\n}\n",
        'fn main() {\n    let x = 1;\n    println!("{}", x);\n}\n',
    ),
    _case(
        "compile_unknown_value", "E0425",
        "misspelled local name in an expression",
        'fn main() {\n'
        '    let count = 4;\n'
        '    let total = cuont + 1;\n'
        '    println!("{}", total);\n'
        '}\n',
        'fn main() {\n'
        '    let count = 4;\n'
        '    let total = count + 1;\n'
        '    println!("{}", total);\n'
        '}\n',
    ),
    _case(
        "compile_duplicate_item", "E0428",
        "two functions share one name",
        'fn probe() -> i32 { 1 }\n'
        'fn probe() -> i32 { 2 }\n'
        'fn main() {\n'
        '    println!("{}", probe());\n'
        '}\n',
        'fn probe() -> i32 { 1 }\n'
        'fn probe_alt() -> i32 { 2 }\n'
        'fn main() {\n'
        '    println!("{}", probe() + probe_alt());\n'
        '}\n',
    ),
    _case(
        "compile_unknown_type", "E0412",
        "annotation names an undeclared type",
        'fn main() {\n'
        '    let x: Wat = 3;\n'
        '    println!("{}", x);\n'
        '}\n',
        'fn main() {\n'
        '    let x: i32 = 3;\n'
        '    println!("{}", x);\n'
        '}\n',
    ),
    _case(
        "compile_unknown_struct", "E0422",
        "struct literal for an undeclared struct",
        'fn main() {\n'
        '    let h = Header { size: 4 };\n'
        '    println!("{}", h.size);\n'
        '}\n',
        'struct Header { size: i32 }\n'
        'fn main() {\n'
        '    let h = Header { size: 4 };\n'
        '    println!("{}", h.size);\n'
        '}\n',
        difficulty=2,
    ),
    _case(
        "compile_bool_mismatch", "E0308",
        "integer initializer under a bool annotation",
        'fn main() {\n'
        '    let flag: bool = 3;\n'
        '    println!("{}", flag);\n'
        '}\n',
        'fn main() {\n'
        '    let flag: bool = 3 != 0;\n'
        '    println!("{}", flag);\n'
        '}\n',
    ),
    _case(
        "compile_missing_arg", "E0061",
        "call passes one argument fewer than the signature",
        'fn add(a: i32, b: i32) -> i32 { a + b }\n'
        'fn main() {\n'
        '    let s = add(1);\n'
        '    println!("{}", s);\n'
        '}\n',
        'fn add(a: i32, b: i32) -> i32 { a + b }\n'
        'fn main() {\n'
        '    let s = add(1, 2);\n'
        '    println!("{}", s);\n'
        '}\n',
    ),
    _case(
        "compile_bool_plus_int", "E0369",
        "arithmetic on a bool operand",
        'fn main() {\n'
        '    let x = true + 1;\n'
        '    println!("{}", x);\n'
        '}\n',
        'fn main() {\n'
        '    let x = 1 + 1;\n'
        '    println!("{}", x);\n'
        '}\n',
    ),
    _case(
        "compile_index_scalar", "E0608",
        "indexing into a plain integer",
        'fn main() {\n'
        '    let x: i32 = 5;\n'
        '    let y = x[0];\n'
        '    println!("{}", y);\n'
        '}\n',
        'fn main() {\n'
        '    let x = vec![5, 6];\n'
        '    let y = x[0];\n'
        '    println!("{}", y);\n'
        '}\n',
    ),
    _case(
        "compile_unknown_field", "E0609",
        "access to a field the struct does not declare",
        'struct Point { x: i32, y: i32 }\n'
        'fn main() {\n'
        '    let p = Point { x: 1, y: 2 };\n'
        '    let z = p.z;\n'
        '    println!("{}", z);\n'
        '}\n',
        'struct Point { x: i32, y: i32 }\n'
        'fn main() {\n'
        '    let p = Point { x: 1, y: 2 };\n'
        '    let z = p.y;\n'
        '    println!("{}", z);\n'
        '}\n',
        difficulty=2,
    ),
    _case(
        "compile_extra_lit_field", "E0560",
        "struct literal spells a field the struct lacks",
        'struct Pair { x: i32 }\n'
        'fn main() {\n'
        '    let p = Pair { x: 1, q: 2 };\n'
        '    println!("{}", p.x);\n'
        '}\n',
        'struct Pair { x: i32 }\n'
        'fn main() {\n'
        '    let p = Pair { x: 1 };\n'
        '    println!("{}", p.x);\n'
        '}\n',
        difficulty=2,
    ),
    _case(
        "compile_missing_lit_field", "E0063",
        "struct literal omits a declared field",
        'struct Pair { x: i32, y: i32 }\n'
        'fn main() {\n'
        '    let p = Pair { x: 1 };\n'
        '    println!("{}", p.x);\n'
        '}\n',
        'struct Pair { x: i32, y: i32 }\n'
        'fn main() {\n'
        '    let p = Pair { x: 1, y: 2 };\n'
        '    println!("{}", p.x + p.y);\n'
        '}\n',
        difficulty=2,
    ),
    _case(
        "compile_deref_scalar", "E0614",
        "dereference of a plain integer",
        'fn main() {\n'
        '    let x: i32 = 5;\n'
        '    let y = *x;\n'
        '    println!("{}", y);\n'
        '}\n',
        'fn main() {\n'
        '    let x: i32 = 5;\n'
        '    let r = &x;\n'
        '    let y = *r;\n'
        '    println!("{}", y);\n'
        '}\n',
    ),
    _case(
        "compile_cast_to_bool", "E0605",
        "as-cast from an integer to bool",
        'fn main() {\n'
        '    let x: i32 = 5;\n'
        '    let b = x as bool;\n'
        '    println!("{}", b);\n'
        '}\n',
        'fn main() {\n'
        '    let x: i32 = 5;\n'
        '    let b = x != 0;\n'
        '    println!("{}", b);\n'
        '}\n',
    ),
    _case(
        "compile_transmute_widen", "E0512",
        "transmute between integers of different sizes",
        'fn main() {\n'
        '    let x: u32 = 7;\n'
        '    let y: u64 = unsafe { std::mem::transmute::<u32, u64>(x) };\n'
        '    println!("{}", y);\n'
        '}\n',
        'fn main() {\n'
        '    let x: u32 = 7;\n'
        '    let y: u64 = x as u64;\n'
        '    println!("{}", y);\n'
        '}\n',
        difficulty=2,
    ),
    _case(
        "compile_infinite_layout", "E0277",
        "struct that contains itself without indirection",
        'struct Node { next: Node }\n'
        'fn main() {\n'
        '    let depth = 3;\n'
        '    println!("{}", depth);\n'
        '}\n',
        'struct Node { next: i32 }\n'
        'fn main() {\n'
        '    let depth = 3;\n'
        '    println!("{}", depth);\n'
        '}\n',
        difficulty=3,
    ),
    _case(
        "compile_use_after_move", "E0382",
        "use of a Vec after it moved to a new binding",
        'fn main() {\n'
        '    let v = vec![1, 2, 3];\n'
        '    let w = v;\n'
        '    let n = v.len();\n'
        '    println!("{}", n);\n'
        '}\n',
        'fn main() {\n'
        '    let v = vec![1, 2, 3];\n'
        '    let w = v;\n'
        '    let n = w.len();\n'
        '    println!("{}", n);\n'
        '}\n',
        difficulty=2,
    ),
    _case(
        "compile_immutable_reassign", "E0384",
        "second assignment to an immutable binding",
        'fn main() {\n'
        '    let x = 1;\n'
        '    x = 2;\n'
        '    println!("{}", x);\n'
        '}\n',
        'fn main() {\n'
        '    let mut x = 1;\n'
        '    x = 2;\n'
        '    println!("{}", x);\n'
        '}\n',
    ),
    _case(
        "compile_double_mut_borrow", "E0499",
        "two live mutable borrows of one local",
        'fn main() {\n'
        '    let mut t = 0;\n'
        '    let a = &mut t;\n'
        '    let b = &mut t;\n'
        '    *a += 1;\n'
        '    *b += 1;\n'
        '    println!("{}", t);\n'
        '}\n',
        'fn main() {\n'
        '    let mut t = 0;\n'
        '    let a = &mut t;\n'
        '    *a += 1;\n'
        '    let b = &mut t;\n'
        '    *b += 1;\n'
        '    println!("{}", t);\n'
        '}\n',
        difficulty=3,
    ),
    _case(
        "compile_shared_then_mut", "E0502",
        "mutable borrow while a shared borrow is still live",
        'fn main() {\n'
        '    let mut t = 0;\n'
        '    let a = &t;\n'
        '    let b = &mut t;\n'
        '    *b += 1;\n'
        '    let c = *a;\n'
        '    println!("{}", c);\n'
        '}\n',
        'fn main() {\n'
        '    let mut t = 0;\n'
        '    let a = &t;\n'
        '    let c = *a;\n'
        '    let b = &mut t;\n'
        '    *b += 1;\n'
        '    println!("{}", c);\n'
        '}\n',
        difficulty=3,
    ),
    _case(
        "compile_assign_through_shared", "E0594",
        "assignment through a shared reference",
        'fn main() {\n'
        '    let mut x = 1;\n'
        '    let r = &x;\n'
        '    *r = 5;\n'
        '    println!("{}", x);\n'
        '}\n',
        'fn main() {\n'
        '    let mut x = 1;\n'
        '    let r = &mut x;\n'
        '    *r = 5;\n'
        '    println!("{}", x);\n'
        '}\n',
        difficulty=2,
    ),
)
