"""Dataset cases: alloc, dangling_pointer, uninit."""

from ..miri.errors import UbKind
from .case import Strategy, UbCase, make_cases

# ---------------------------------------------------------------------------
# alloc — allocator misuse: double free, layout mismatch, zero-size alloc

ALLOC_CASES = (
    make_cases(
        "alloc_double_free_box", UbKind.ALLOC,
        "Box freed twice through Box::from_raw",
        template='''\
fn main() {{
    let b = Box::new({val});
    let p = Box::into_raw(b);
    let first = unsafe {{ *p }};
    unsafe {{ drop(Box::from_raw(p)); }}
    unsafe {{ drop(Box::from_raw(p)); }}
    println!("{{}}", first);
}}
''',
        fixed_template='''\
fn main() {{
    let b = Box::new({val});
    let p = Box::into_raw(b);
    let first = unsafe {{ *p }};
    unsafe {{ drop(Box::from_raw(p)); }}
    println!("{{}}", first);
}}
''',
        strategies=(Strategy("remove_second_free"),),
        variants=[{"val": 7}, {"val": 1234}, {"val": -8}],
        difficulty=1,
    )
    + make_cases(
        "alloc_wrong_layout", UbKind.ALLOC,
        "dealloc with a layout different from the allocation's",
        template='''\
use std::alloc;
fn main() {{
    let layout = Layout::from_size_align({size}, 8).unwrap();
    let p = unsafe {{ alloc::alloc(layout) }} as *mut u64;
    unsafe {{ *p = {val}; }}
    let v = unsafe {{ *p }};
    let wrong = Layout::from_size_align({wrong_size}, 8).unwrap();
    unsafe {{ alloc::dealloc(p as *mut u8, wrong); }}
    println!("{{}}", v);
}}
''',
        fixed_template='''\
use std::alloc;
fn main() {{
    let layout = Layout::from_size_align({size}, 8).unwrap();
    let p = unsafe {{ alloc::alloc(layout) }} as *mut u64;
    unsafe {{ *p = {val}; }}
    let v = unsafe {{ *p }};
    unsafe {{ alloc::dealloc(p as *mut u8, layout); }}
    println!("{{}}", v);
}}
''',
        strategies=(Strategy("fix_dealloc_layout"),),
        variants=[{"size": 8, "wrong_size": 16, "val": 42},
                  {"size": 8, "wrong_size": 4, "val": 99},
                  {"size": 16, "wrong_size": 8, "val": 7}],
        difficulty=2,
    )
    + make_cases(
        "alloc_zero_size", UbKind.ALLOC,
        "calling the global allocator with a zero-size layout",
        template='''\
use std::alloc;
fn main() {{
    let size = {size};
    let layout = Layout::from_size_align(size, 1).unwrap();
    let p = unsafe {{ alloc::alloc(layout) }};
    unsafe {{ alloc::dealloc(p, layout); }}
    println!("requested {{}} bytes", size);
}}
''',
        fixed_template='''\
use std::alloc;
fn main() {{
    let size = {size};
    let layout = Layout::from_size_align(size.max(1), 1).unwrap();
    let p = unsafe {{ alloc::alloc(layout) }};
    unsafe {{ alloc::dealloc(p, layout); }}
    println!("requested {{}} bytes", size);
}}
''',
        strategies=(Strategy("guard_layout_nonzero"),),
        variants=[{"size": 0}],
        difficulty=2,
    )
    + make_cases(
        "alloc_double_free_vec", UbKind.ALLOC,
        "Vec buffer freed twice via duplicate drop",
        template='''\
fn main() {{
    let v = vec![{a}, {b}];
    let total = v[0] + v[1];
    drop(v);
    drop(v);
    println!("{{}}", total);
}}
''',
        fixed_template='''\
fn main() {{
    let v = vec![{a}, {b}];
    let total = v[0] + v[1];
    drop(v);
    println!("{{}}", total);
}}
''',
        strategies=(Strategy("remove_second_free"),),
        variants=[{"a": 3, "b": 4}, {"a": 10, "b": 20}],
        difficulty=1,
    )
)

# ---------------------------------------------------------------------------
# dangling_pointer — use-after-free, OOB pointers, null derefs

DANGLING_CASES = (
    make_cases(
        "dangling_use_after_free", UbKind.DANGLING_POINTER,
        "raw pointer dereferenced after the Box was dropped",
        template='''\
fn main() {{
    let b = Box::new({val});
    let p = Box::into_raw(b);
    unsafe {{ drop(Box::from_raw(p)); }}
    let v = unsafe {{ *p }};
    println!("{{}}", v);
}}
''',
        fixed_template='''\
fn main() {{
    let b = Box::new({val});
    let p = Box::into_raw(b);
    let v = unsafe {{ *p }};
    unsafe {{ drop(Box::from_raw(p)); }}
    println!("{{}}", v);
}}
''',
        strategies=(Strategy("move_drop_after_last_use"),),
        variants=[{"val": 7}, {"val": -31}, {"val": 123}],
        difficulty=2,
    )
    + make_cases(
        "dangling_vec_realloc", UbKind.DANGLING_POINTER,
        "as_ptr pointer invalidated by a reallocating push",
        template='''\
fn main() {{
    let mut v: Vec<i32> = Vec::with_capacity(1);
    v.push({a});
    let p = v.as_ptr();
    v.push({b});
    let first = unsafe {{ *p }};
    println!("{{}}", first);
}}
''',
        fixed_template='''\
fn main() {{
    let mut v: Vec<i32> = Vec::with_capacity(1);
    v.push({a});
    v.push({b});
    let p = v.as_ptr();
    let first = unsafe {{ *p }};
    println!("{{}}", first);
}}
''',
        strategies=(Strategy("take_pointer_after_mutation"),),
        variants=[{"a": 10, "b": 20}, {"a": 5, "b": 6}],
        difficulty=3,
    )
    + make_cases(
        "dangling_null_deref", UbKind.DANGLING_POINTER,
        "dereferencing a pointer that may be null",
        template='''\
use std::ptr;
fn lookup(found: bool) -> *const i32 {{
    if found {{ &{val} as *const i32 }} else {{ ptr::null() }}
}}
fn main() {{
    let p = lookup(false);
    let v = unsafe {{ *p }};
    println!("{{}}", v);
}}
''',
        fixed_template='''\
use std::ptr;
fn lookup(found: bool) -> *const i32 {{
    if found {{ &{val} as *const i32 }} else {{ ptr::null() }}
}}
fn main() {{
    let p = lookup(false);
    let v = if !p.is_null() {{ unsafe {{ *p }} }} else {{ 0 }};
    println!("{{}}", v);
}}
''',
        strategies=(Strategy("guard_nonnull_before_deref"),),
        variants=[{"val": 5}, {"val": 42}],
        difficulty=2,
    )
    + make_cases(
        "dangling_ptr_add_oob", UbKind.DANGLING_POINTER,
        "pointer arithmetic walks past the end of the buffer",
        template='''\
fn main() {{
    let v = vec![{a}, {b}, {c}];
    let idx = {idx};
    let p = v.as_ptr();
    let val = unsafe {{ *p.add(idx) }};
    println!("{{}}", val);
}}
''',
        fixed_template='''\
fn main() {{
    let v = vec![{a}, {b}, {c}];
    let idx = {idx};
    let p = v.as_ptr();
    let val = if idx < v.len() {{ unsafe {{ *p.add(idx) }} }} else {{ 0 }};
    println!("{{}}", val);
}}
''',
        strategies=(Strategy("guard_ptr_add_with_len_check"),),
        variants=[{"a": 1, "b": 2, "c": 3, "idx": 7},
                  {"a": 4, "b": 5, "c": 6, "idx": 8}],
        difficulty=2,
    )
    + make_cases(
        "dangling_drop_then_index", UbKind.DANGLING_POINTER,
        "Vec indexed after being dropped",
        template='''\
fn main() {{
    let v = vec![{a}, {b}, {c}];
    let total = v[0] + v[2];
    drop(v);
    let again = v[1];
    println!("{{}} {{}}", total, again);
}}
''',
        fixed_template='''\
fn main() {{
    let v = vec![{a}, {b}, {c}];
    let total = v[0] + v[2];
    let again = v[1];
    drop(v);
    println!("{{}} {{}}", total, again);
}}
''',
        strategies=(Strategy("move_drop_after_last_use"),),
        variants=[{"a": 1, "b": 5, "c": 9}, {"a": 2, "b": 4, "c": 6}],
        difficulty=2,
    )
)

# ---------------------------------------------------------------------------
# uninit — reads of uninitialised memory

UNINIT_CASES = (
    make_cases(
        "uninit_assume_init", UbKind.UNINIT,
        "assume_init on never-written MaybeUninit",
        template='''\
fn main() {{
    let mu: MaybeUninit<{ity}> = MaybeUninit::uninit();
    let v = unsafe {{ mu.assume_init() }};
    println!("{{}}", v);
}}
''',
        fixed_template='''\
fn main() {{
    let mu: MaybeUninit<{ity}> = MaybeUninit::new(0);
    let v = unsafe {{ mu.assume_init() }};
    println!("{{}}", v);
}}
''',
        strategies=(Strategy("replace_uninit_with_zero_init"),
                    Strategy("write_before_assume_init")),
        variants=[{"ity": "i32"}, {"ity": "u64"}, {"ity": "u32"}],
        difficulty=1,
    )
    + make_cases(
        "uninit_set_len", UbKind.UNINIT,
        "set_len exposes uninitialised Vec elements",
        template='''\
fn main() {{
    let mut v: Vec<{ity}> = Vec::with_capacity({cap});
    unsafe {{ v.set_len({n}); }}
    let x = v[{i}];
    println!("{{}}", x);
}}
''',
        fixed_template='''\
fn main() {{
    let mut v: Vec<{ity}> = Vec::with_capacity({cap});
    v.resize({n}, 0);
    let x = v[{i}];
    println!("{{}}", x);
}}
''',
        strategies=(Strategy("replace_set_len_with_resize"),),
        variants=[{"ity": "i32", "cap": 4, "n": 3, "i": 2},
                  {"ity": "u8", "cap": 8, "n": 5, "i": 4},
                  {"ity": "u64", "cap": 4, "n": 2, "i": 1}],
        difficulty=2,
    )
    + make_cases(
        "uninit_union_field", UbKind.UNINIT,
        "reading a wider union field than was written",
        template='''\
union {U} {{
    small: u8,
    big: u32,
}}
fn main() {{
    let bits = {U} {{ small: {val} }};
    let v = unsafe {{ bits.big }};
    println!("{{}}", v);
}}
''',
        fixed_template='''\
union {U} {{
    small: u8,
    big: u32,
}}
fn main() {{
    let bits = {U} {{ small: {val} }};
    let v = unsafe {{ bits.small }};
    println!("{{}}", v);
}}
''',
        strategies=(Strategy("read_written_union_field"),),
        variants=[{"U": "Packet", "val": 17}, {"U": "Frame", "val": 200}],
        difficulty=3,
    )
    + make_cases(
        "uninit_fresh_heap", UbKind.UNINIT,
        "reading freshly allocated heap memory before initialising it",
        template='''\
use std::alloc;
fn main() {{
    let layout = Layout::from_size_align(4, 4).unwrap();
    let p = unsafe {{ alloc::alloc(layout) }} as *mut i32;
    let v = unsafe {{ *p }};
    println!("{{}}", v);
    unsafe {{ alloc::dealloc(p as *mut u8, layout); }}
}}
''',
        fixed_template='''\
use std::alloc;
fn main() {{
    let layout = Layout::from_size_align(4, 4).unwrap();
    let p = unsafe {{ alloc::alloc(layout) }} as *mut i32;
    unsafe {{ *p = 0; }}
    let v = unsafe {{ *p }};
    println!("{{}}", v);
    unsafe {{ alloc::dealloc(p as *mut u8, layout); }}
}}
''',
        strategies=(Strategy("write_zero_after_alloc"),),
        variants=[{}],
        difficulty=2,
    )
)

CASES = ALLOC_CASES + DANGLING_CASES + UNINIT_CASES
