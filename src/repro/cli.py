"""Command-line interface.

Subcommands::

    repro detect   FILE.rs               # run the UB detector (Miri analogue)
    repro check    FILE.rs [--json]      # static type/borrow checker
    repro check    --sweep [...]         # zero-diagnostic corpus oracle
    repro repair   FILE.rs [--engine S]  # repair with any registered engine
    repro dataset  [--category C]        # list the corpus
    repro engines                        # list registered repair engines
    repro campaign --engine SPEC ...     # sweep engine arms over the corpus
    repro bench    NAME                  # regenerate one paper artifact
    repro serve    [--host H --port P]   # repair-as-a-service HTTP front door
    repro corpus generate --n N --seed S # mint a validated synthetic corpus
    repro corpus validate MANIFEST       # re-run self-validation on a manifest

Engine specs are ``name?key=value&...`` strings, e.g.
``rustbrain?kb=off&rollback=none&temperature=0.2`` — see
:mod:`repro.engine.spec`.
"""

from __future__ import annotations

import argparse
import pathlib
import sys


class _SourceReadError(Exception):
    """A source file could not be read; message is user-facing."""


def _read_source(file_arg: str) -> str:
    """Read a program from a path or stdin (``-``); clean error on failure."""
    if file_arg == "-":
        return sys.stdin.read()
    path = pathlib.Path(file_arg)
    try:
        with path.open("r", encoding="utf-8") as handle:
            return handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        detail = getattr(exc, "strerror", None) or str(exc)
        raise _SourceReadError(
            f"repro: cannot read {file_arg!r}: {detail}") from exc


def _cmd_detect(args: argparse.Namespace) -> int:
    from .miri import detect_ub
    try:
        source = _read_source(args.file)
    except _SourceReadError as exc:
        print(exc, file=sys.stderr)
        return 2
    report = detect_ub(source, collect=args.collect)
    print(report.render())
    if report.stdout:
        print("\n--- program stdout ---")
        for line in report.stdout:
            print(line)
    return 0 if report.passed else 1


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import check_source
    if args.sweep:
        return _check_sweep(args)
    if args.file is None:
        print("repro: check needs a FILE (or --sweep)", file=sys.stderr)
        return 2
    try:
        source = _read_source(args.file)
    except _SourceReadError as exc:
        print(exc, file=sys.stderr)
        return 2
    report = check_source(source)
    if args.json:
        import json
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _check_sweep(args: argparse.Namespace) -> int:
    """Run the checker as a corpus oracle: every corpus source (buggy AND
    fixed) plus ``--generated N`` unvalidated mutants must produce zero
    diagnostics — the corpus' defects are dynamic UB, not compile errors."""
    from .check import check_source
    from .corpus.manifest import ManifestError
    try:
        dataset = _load_corpus(args.corpus)
    except ManifestError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    sources: list[tuple[str, str]] = []
    for case in dataset:
        sources.append((f"{case.name}/buggy", case.source))
        sources.append((f"{case.name}/fixed", case.fixed_source))
    if args.generated:
        from .corpus.generator import generate_sources
        for idx, text in enumerate(generate_sources(args.generated,
                                                    seed=args.seed)):
            sources.append((f"generated/{idx}", text))
    failures = 0
    for name, text in sources:
        report = check_source(text)
        if not report.ok:
            failures += 1
            codes = ",".join(report.codes())
            print(f"DIAGNOSTICS {name}: {codes}")
    print(f"{len(sources) - failures}/{len(sources)} sources check clean")
    return 1 if failures else 0


#: Defaults for the flags an engine spec's reserved params take precedence
#: over — the single source for both argparse and the override warnings.
_ARG_DEFAULTS = {"model": "gpt-4", "seed": 0, "temperature": 0.5}


def _warn_spec_overrides(spec_text: str, args: argparse.Namespace,
                         no_kb: bool = False) -> None:
    """Warn when an explicit CLI flag is silently pinned by the spec."""
    from .engine.spec import EngineSpec, SpecError
    try:
        spec = EngineSpec.parse(spec_text)
        pinned = spec.factory_kwargs()  # typed, so 2e-1 == 0.2
    except SpecError:
        return  # the caller reports the parse error itself
    for key, default in _ARG_DEFAULTS.items():
        value = getattr(args, key, default)
        if key in pinned and value != default and value != pinned[key]:
            print(f"repro: warning: --{key} {value} is overridden by the "
                  f"engine spec ({key}={pinned[key]})", file=sys.stderr)
    raw_keys = {key for key, _value in spec.params}
    if no_kb and ("kb" in raw_keys or "use_knowledge_base" in raw_keys):
        print("repro: warning: --no-kb is overridden by the engine spec's "
              "kb setting", file=sys.stderr)


def _run_with_deadline(engine, source: str, timeout_seconds: float | None):
    """Run ``engine.repair`` bounded by a wall-clock deadline.

    The repair call is synchronous, so the deadline runs it on a daemon
    thread and abandons it on expiry (returning ``None``) — the same
    bounded-client-wait semantics as the server's per-request deadline,
    and no join with the shared executor service at exit.
    """
    if timeout_seconds is None:
        return engine.repair(source)
    import threading
    box: dict = {}

    def work() -> None:
        try:
            box["outcome"] = engine.repair(source)
        except BaseException as exc:  # re-raised on the main thread
            box["error"] = exc

    thread = threading.Thread(target=work, daemon=True)
    thread.start()
    thread.join(timeout_seconds)
    if thread.is_alive():
        return None
    if "error" in box:
        raise box["error"]
    return box["outcome"]


def _cmd_repair(args: argparse.Namespace) -> int:
    from .engine import UnknownEngineError, create_engine
    from .engine.spec import SpecError
    from .service.jobs import RequestError, validate_timeout_seconds
    try:
        timeout_seconds = validate_timeout_seconds(args.timeout_seconds)
    except RequestError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    try:
        source = _read_source(args.file)
    except _SourceReadError as exc:
        print(exc, file=sys.stderr)
        return 2
    _warn_spec_overrides(args.engine, args, no_kb=args.no_kb)
    try:
        overrides = {}
        if args.no_kb:
            from .engine import REGISTRY
            from .engine.spec import EngineSpec
            info = REGISTRY.get(EngineSpec.parse(args.engine).name)
            if "rustbrain" not in info.tags:
                print(f"repro: --no-kb only applies to rustbrain engines, "
                      f"not {info.name!r}", file=sys.stderr)
                return 2
            overrides["use_knowledge_base"] = False
        engine = create_engine(args.engine, model=args.model,
                               temperature=args.temperature, seed=args.seed,
                               **overrides)
    except (SpecError, UnknownEngineError, ValueError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    previous_exec = None
    if args.engine_exec is not None:
        from .miri import set_default_engine
        previous_exec = set_default_engine(args.engine_exec)
    try:
        outcome = _run_with_deadline(engine, source, timeout_seconds)
    finally:
        if previous_exec is not None:
            set_default_engine(previous_exec)
    if outcome is None:
        print(f"== repair FAILED: timed out after {timeout_seconds:g}s ==")
        return 1
    if outcome.passed and outcome.repaired_source:
        print("== repair PASSED Miri ==")
        print(f"-- {outcome.solutions_tried} solutions, "
              f"{outcome.steps_executed} steps, "
              f"{outcome.seconds:.1f}s simulated, "
              f"{outcome.llm_calls} model calls --")
        print(outcome.repaired_source)
        return 0
    print(f"== repair FAILED: {outcome.failure_reason} ==")
    return 1


def _load_corpus(corpus_arg: str | None):
    """The base corpus, or a generated one when ``--corpus`` names a
    manifest.  Raises :class:`~repro.corpus.ManifestError` on bad files."""
    if corpus_arg is None:
        from .corpus.dataset import load_dataset
        return load_dataset()
    from .corpus.manifest import load_manifest
    return load_manifest(corpus_arg)


def _cmd_dataset(args: argparse.Namespace) -> int:
    from .corpus.manifest import ManifestError
    from .miri.errors import UbKind
    try:
        dataset = _load_corpus(args.corpus)
    except ManifestError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if args.category:
        dataset = dataset.subset([UbKind(args.category)])
    for case in dataset:
        print(f"{case.name:36s} {case.category.value:18s} "
              f"difficulty={case.difficulty}  {case.description}")
    print(f"\n{len(dataset)} cases, {len(dataset.categories())} categories")
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    from .engine import available_engines
    infos = available_engines()
    width = max(len(info.name) for info in infos)
    for info in infos:
        tags = f"  [{', '.join(info.tags)}]" if info.tags else ""
        print(f"{info.name:{width}s}  {info.summary}{tags}")
    print(f"\n{len(infos)} engines registered")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .bench.reporting import render_table
    from .engine import (Campaign, CampaignJournal, JournalError,
                         ProgressPrinter, SpecError, UnknownEngineError)
    from .engine.journal import JOURNAL_FILENAME
    from .corpus.manifest import ManifestError
    from .miri.errors import UbKind

    try:
        dataset = _load_corpus(args.corpus)
    except ManifestError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if args.category:
        try:
            dataset = dataset.subset([UbKind(cat) for cat in args.category])
        except ValueError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return 2
        if not len(dataset):
            print("repro: no cases match the requested categories",
                  file=sys.stderr)
            return 2

    if args.json:
        # Probe writability now — discovering a bad path only after the
        # sweep would throw away the whole run ("a" mode: no truncation;
        # a file the probe itself created is removed again).
        json_path = pathlib.Path(args.json)
        existed = json_path.exists()
        try:
            with json_path.open("a", encoding="utf-8"):
                pass
        except OSError as exc:
            detail = exc.strerror or str(exc)
            print(f"repro: cannot write {args.json!r}: {detail}",
                  file=sys.stderr)
            return 2
        if not existed:
            json_path.unlink(missing_ok=True)

    for spec in args.engine:
        _warn_spec_overrides(spec, args)
    observers = [] if args.quiet else [ProgressPrinter()]
    # --cache-dir (or the REPRO_CACHE_DIR environment default) enables the
    # content-addressed result cache; --no-cache beats both.
    import os
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")

    # --resume is --journal plus the requirement that a journal already
    # exists: resuming nothing is a usage error, not an empty no-op.
    journal_dir = args.resume or args.journal
    if args.resume:
        journal_path = pathlib.Path(args.resume) / JOURNAL_FILENAME
        if not journal_path.is_file():
            print(f"repro: nothing to resume: {journal_path} does not exist",
                  file=sys.stderr)
            return 2
    journal = CampaignJournal(journal_dir) if journal_dir else None

    try:
        # Construction fails fast on unknown engines / bad spec options;
        # run() errors past this point are genuine bugs, not usage errors.
        campaign = Campaign(args.engine, dataset, model=args.model,
                            seed=args.seed, temperature=args.temperature,
                            workers=args.workers,
                            shard_size=args.shard_size,
                            isolation=args.isolation,
                            executor=args.executor,
                            cache_dir=cache_dir, observers=observers,
                            journal=journal)
    except (SpecError, UnknownEngineError, ValueError, OSError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    try:
        result = _run_interruptible(campaign)
    except JournalError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return _campaign_interrupted(campaign, journal_dir)
    finally:
        if journal is not None:
            journal.close()

    rows = []
    for arm in result.arms:
        results = arm.results  # derived property; aggregate once per arm
        rows.append([arm.label,
                     f"{100 * results.pass_rate():.1f}",
                     f"{100 * results.exec_rate():.1f}",
                     f"{results.mean_seconds():.0f}",
                     f"{len(results.results)}"])
    print(render_table(["arm", "pass %", "exec %", "mean s", "cases"],
                       rows, title="Campaign"))
    if cache_dir is not None:
        hits, misses = result.telemetry.cache_counts()
        print(f"cache: {hits} hits, {misses} misses ({cache_dir})")
    if journal is not None:
        print(f"journal: {journal.replayed} replayed, "
              f"{journal.appended} appended ({journal_dir})")
    if args.json:
        try:
            result.save(args.json)
        except OSError as exc:
            detail = exc.strerror or str(exc)
            print(f"repro: cannot write {args.json!r}: {detail}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.json}")
    return 0


def _run_interruptible(campaign):
    """``campaign.run()`` with SIGTERM folded into KeyboardInterrupt.

    A supervisor's polite kill and the operator's Ctrl-C should take the
    same path: flush-and-summarize in :func:`_campaign_interrupted`, exit
    130.  The previous handler is restored afterwards — library code must
    not leave process-wide signal state behind.
    """
    import signal

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _terminate)
    except ValueError:  # not the main thread (embedding, tests)
        previous = None
    try:
        return campaign.run()
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


def _campaign_interrupted(campaign, journal_dir) -> int:
    """Interrupt epilogue: durable state is already safe (the journal
    fsyncs per case), so flush what is diagnostic — partial telemetry —
    release the worker pools, and exit with the conventional 130."""
    import json

    from .engine import EXECUTOR_SERVICE

    journal = campaign.journal
    if journal is not None:
        journal.close()
    lines = ["repro: campaign interrupted"]
    if journal is not None:
        lines.append(f"repro: journal holds {len(journal)} completed "
                     f"results ({journal.appended} from this run); resume "
                     f"with: repro campaign --resume {journal_dir} ...")
        partial = pathlib.Path(journal_dir) / "telemetry.partial.json"
        try:
            partial.write_text(
                json.dumps(campaign.telemetry.to_dict(), indent=2,
                           sort_keys=True) + "\n", encoding="utf-8")
            lines.append(f"repro: partial telemetry written to {partial}")
        except OSError as exc:
            detail = exc.strerror or str(exc)
            lines.append(f"repro: could not write {partial}: {detail}")
    for line in lines:
        print(line, file=sys.stderr, flush=True)
    EXECUTOR_SERVICE.shutdown()
    return 130


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from .engine import ResultCache
    from .service.jobs import RequestError, validate_timeout_seconds
    from .service.server import RepairServer
    try:
        timeout_seconds = validate_timeout_seconds(args.timeout_seconds)
    except RequestError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
        if cache_dir:
            try:
                cache = ResultCache(cache_dir)
            except OSError as exc:
                detail = exc.strerror or str(exc)
                print(f"repro: cannot use cache dir {cache_dir!r}: {detail}",
                      file=sys.stderr)
                return 2
    try:
        server = RepairServer(host=args.host, port=args.port,
                              workers=args.workers,
                              max_queue=args.max_queue,
                              rate=args.rate_limit, burst=args.burst,
                              cache=cache,
                              default_timeout_seconds=timeout_seconds)
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2

    async def main() -> None:
        await server.start()
        print(f"repro serve: listening on http://{server.host}:{server.port}"
              f" ({server.workers} workers, queue {server.max_queue})",
              file=sys.stderr, flush=True)
        try:
            await server.serve()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro serve: shut down", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import figures
    from .bench.reporting import category_label, render_table
    name = args.name
    if name == "table1":
        rows = figures.table1_data()
        avg = figures.table1_average(rows)
        rendered = [[category_label(r.category),
                     f"{r.no_knowledge_seconds:.0f}",
                     f"{r.knowledge_seconds:.0f}",
                     f"{r.human_seconds:.0f}", f"{r.speedup:.1f}x"]
                    for r in rows]
        rendered.append(["Average", f"{avg.no_knowledge_seconds:.1f}",
                         f"{avg.knowledge_seconds:.1f}",
                         f"{avg.human_seconds:.0f}", f"{avg.speedup:.1f}x"])
        print(render_table(["type", "no-KB s", "KB s", "human s", "speedup"],
                           rendered, title="Table I"))
        return 0
    if name in ("fig8", "fig9"):
        data = figures.fig8_fig9_data()
        metric = "pass" if name == "fig8" else "exec"
        headers = ["arm", f"{metric} %"]
        rows = [[label,
                 f"{100 * (arm.pass_rate if name == 'fig8' else arm.exec_rate):.1f}"]
                for label, arm in data.items()]
        print(render_table(headers, rows, title=f"Fig. {name[-1]} averages"))
        return 0
    if name == "fig11":
        for point in figures.fig11_data():
            print(f"T={point.temperature:.1f}  pass={point.pass_ci}  "
                  f"exec={point.exec_ci}")
        return 0
    if name == "ensemble":
        data = figures.ensemble_data()
        best = figures.ensemble_best_standalone(data)
        rows = [[label, f"{100 * summary.pass_rate:.1f}",
                 f"{100 * summary.exec_rate:.1f}",
                 f"{summary.mean_seconds:.0f}"]
                for label, summary in sorted(data.items())]
        print(render_table(["arm", "pass %", "exec %", "mean s"], rows,
                           title="Model portfolio"))
        print(f"best single model: {best.label} "
              f"({100 * best.pass_rate:.1f}% pass, "
              f"{best.mean_seconds:.0f}s mean)")
        return 0
    print(f"unknown bench {name!r}; try: table1 fig8 fig9 fig11 ensemble",
          file=sys.stderr)
    return 2


def _parse_categories(names: list[str] | None):
    """``--categories`` values → ``UbKind`` list (None passes through)."""
    from .miri.errors import UbKind
    if not names:
        return None
    return [UbKind(name) for name in names]


def _cmd_corpus_generate(args: argparse.Namespace) -> int:
    from .corpus import (GenerationError, generate_compile_corpus,
                         generate_corpus, save_manifest)
    try:
        categories = _parse_categories(args.categories)
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if args.compile and categories is not None:
        print("repro: --compile and --categories are mutually exclusive",
              file=sys.stderr)
        return 2
    try:
        if args.compile:
            cases, report = generate_compile_corpus(args.n, args.seed)
        else:
            cases, report = generate_corpus(args.n, args.seed,
                                            categories=categories)
    except GenerationError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    out_dir = pathlib.Path(args.out)
    try:
        path = save_manifest(cases, out_dir / "corpus.json", report)
    except OSError as exc:
        detail = exc.strerror or str(exc)
        print(f"repro: cannot write {out_dir / 'corpus.json'}: {detail}",
              file=sys.stderr)
        return 2
    summary = report.to_dict()
    for name, stats in summary["categories"].items():
        rate = stats["validation_rate"]
        print(f"{name:18s} emitted={stats['emitted']:4d} "
              f"attempts={stats['attempts']:4d} "
              f"rate={rate if rate is not None else '-'}")
    print(f"\n{report.emitted} cases from {report.attempts} attempts "
          f"(seed {report.seed})")
    print(f"wrote {path}")
    return 0


def _cmd_corpus_validate(args: argparse.Namespace) -> int:
    from .corpus import CaseInvalid, ManifestError, load_manifest, \
        validate_case
    try:
        dataset = load_manifest(args.manifest)
    except ManifestError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    failures = 0
    for case in dataset:
        try:
            validate_case(case)
        except CaseInvalid as invalid:
            failures += 1
            print(f"INVALID {case.name}: [{invalid.reason}] {invalid.detail}")
    print(f"{len(dataset) - failures}/{len(dataset)} cases valid")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RustBrain reproduction: UB detection and LLM repair")
    sub = parser.add_subparsers(dest="command", required=True)

    p_detect = sub.add_parser("detect", help="run the UB detector")
    p_detect.add_argument("file")
    p_detect.add_argument("--collect", action="store_true",
                          help="keep going after the first UB")
    p_detect.set_defaults(fn=_cmd_detect)

    p_check = sub.add_parser(
        "check", help="run the static type/borrow checker")
    p_check.add_argument("file", nargs="?", default=None)
    p_check.add_argument("--json", action="store_true",
                         help="emit the repro.diagnostics/1 report")
    p_check.add_argument("--sweep", action="store_true",
                         help="check every corpus source (buggy and fixed) "
                              "instead of one file; exit 1 on any "
                              "diagnostic")
    p_check.add_argument("--corpus", default=None, metavar="MANIFEST",
                         help="sweep a generated repro.corpus/1 manifest "
                              "instead of the built-in corpus")
    p_check.add_argument("--generated", type=int, default=0, metavar="N",
                         help="also sweep N generator mutants")
    p_check.add_argument("--seed", type=int, default=0,
                         help="seed for --generated mutants")
    p_check.set_defaults(fn=_cmd_check)

    p_repair = sub.add_parser("repair",
                              help="repair UBs with a registered engine")
    p_repair.add_argument("file")
    p_repair.add_argument("--engine", default="rustbrain",
                          help="engine spec, e.g. rustbrain?kb=off "
                               "(default: rustbrain)")
    p_repair.add_argument("--model", default=_ARG_DEFAULTS["model"])
    p_repair.add_argument("--temperature", type=float,
                          default=_ARG_DEFAULTS["temperature"])
    p_repair.add_argument("--seed", type=int, default=_ARG_DEFAULTS["seed"])
    p_repair.add_argument("--no-kb", action="store_true",
                          help="shorthand for kb=off")
    p_repair.add_argument("--timeout-seconds", default=None, metavar="S",
                          help="abandon the repair after S wall-clock "
                               "seconds (exit 1); shares the server's "
                               "per-request deadline validation")
    p_repair.add_argument("--engine-exec", choices=("vm", "tree"),
                          default=None, dest="engine_exec",
                          help="interpreter backend for every detector run "
                               "this repair makes: the bytecode vm "
                               "(default) or the reference tree-walker, "
                               "for divergence triage")
    p_repair.set_defaults(fn=_cmd_repair)

    p_dataset = sub.add_parser("dataset", help="list the UB corpus")
    p_dataset.add_argument("--category", default=None)
    p_dataset.add_argument("--corpus", default=None, metavar="MANIFEST",
                           help="list a generated repro.corpus/1 manifest "
                                "instead of the built-in corpus")
    p_dataset.set_defaults(fn=_cmd_dataset)

    p_engines = sub.add_parser("engines",
                               help="list registered repair engines")
    p_engines.set_defaults(fn=_cmd_engines)

    p_campaign = sub.add_parser(
        "campaign", help="sweep engine arms over the corpus in parallel")
    p_campaign.add_argument("--engine", action="append", required=True,
                            help="engine spec (repeatable)")
    p_campaign.add_argument("--model", default=_ARG_DEFAULTS["model"])
    p_campaign.add_argument("--seed", type=int,
                            default=_ARG_DEFAULTS["seed"])
    p_campaign.add_argument("--temperature", type=float,
                            default=_ARG_DEFAULTS["temperature"])
    p_campaign.add_argument("--workers", type=int, default=1)
    p_campaign.add_argument("--shard-size", type=int, default=8)
    p_campaign.add_argument("--isolation", default="per_case",
                            choices=("per_case", "shared"),
                            help="per_case: fresh engine + derived seed per "
                                 "case (parallel-safe); shared: one stateful "
                                 "engine per arm, serial within the arm")
    p_campaign.add_argument("--executor", default="thread",
                            choices=("serial", "thread", "process"),
                            help="worker pool backend; 'process' gives real "
                                 "multi-core parallelism for the CPU-bound "
                                 "repair pipeline (results are byte-"
                                 "identical across backends)")
    p_campaign.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="consult/populate a content-addressed "
                                 "result cache (default: $REPRO_CACHE_DIR "
                                 "when set)")
    p_campaign.add_argument("--no-cache", action="store_true",
                            help="disable the result cache even when "
                                 "REPRO_CACHE_DIR is set")
    p_campaign.add_argument("--category", action="append",
                            help="restrict to a UB category (repeatable)")
    p_campaign.add_argument("--corpus", default=None, metavar="MANIFEST",
                            help="sweep a generated repro.corpus/1 manifest "
                                 "instead of the built-in corpus")
    p_campaign.add_argument("--json", default=None, metavar="PATH",
                            help="write the full campaign.json trajectory")
    p_campaign.add_argument("--journal", default=None, metavar="DIR",
                            help="append every completed result to "
                                 "DIR/campaign.journal (fsync'd), making "
                                 "the campaign crash-resumable")
    p_campaign.add_argument("--resume", default=None, metavar="DIR",
                            help="resume from DIR/campaign.journal: replay "
                                 "journaled results, execute only what is "
                                 "missing (implies --journal DIR)")
    p_campaign.add_argument("--quiet", action="store_true",
                            help="suppress progress lines")
    p_campaign.set_defaults(fn=_cmd_campaign)

    p_bench = sub.add_parser("bench", help="regenerate a paper artifact")
    p_bench.add_argument("name")
    p_bench.set_defaults(fn=_cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="serve single-case repairs over HTTP/JSON")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8357,
                         help="0 picks an ephemeral port")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="concurrent repairs (default: min(4, core "
                              "budget); clamped to the budget either way)")
    p_serve.add_argument("--max-queue", type=int, default=32,
                         help="bounded admission queue depth (503 past it)")
    p_serve.add_argument("--rate-limit", type=float, default=10.0,
                         metavar="RPS",
                         help="per-client token-bucket refill rate "
                              "(requests/second; 0 disables)")
    p_serve.add_argument("--burst", type=float, default=20.0,
                         help="per-client token-bucket capacity")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="read-through result cache (default: "
                              "$REPRO_CACHE_DIR when set)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the result cache even when "
                              "REPRO_CACHE_DIR is set")
    p_serve.add_argument("--timeout-seconds", default=None, metavar="S",
                         help="default per-request deadline (clients may "
                              "override per request)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_corpus = sub.add_parser(
        "corpus", help="generate and validate synthetic corpora")
    corpus_sub = p_corpus.add_subparsers(dest="corpus_command", required=True)

    p_generate = corpus_sub.add_parser(
        "generate", help="mint a seeded, self-validated synthetic corpus")
    p_generate.add_argument("--n", type=int, required=True,
                            help="number of cases to generate")
    p_generate.add_argument("--seed", type=int, required=True,
                            help="generation seed (same seed → byte-"
                                 "identical manifest)")
    p_generate.add_argument("--categories", nargs="+", default=None,
                            metavar="KIND",
                            help="restrict to these UB categories "
                                 "(default: every generatable kind)")
    p_generate.add_argument("--out", default="corpus.out", metavar="DIR",
                            help="output directory; the manifest lands at "
                                 "DIR/corpus.json (default: corpus.out)")
    p_generate.add_argument("--compile", action="store_true",
                            help="mint compile-error cases (static-checker "
                                 "labels) instead of dynamic-UB cases")
    p_generate.set_defaults(fn=_cmd_corpus_generate)

    p_validate = corpus_sub.add_parser(
        "validate", help="re-run self-validation over a saved manifest")
    p_validate.add_argument("manifest",
                            help="path to a repro.corpus/1 manifest")
    p_validate.set_defaults(fn=_cmd_corpus_validate)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
