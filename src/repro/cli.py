"""Command-line interface.

Subcommands::

    repro detect  FILE.rs            # run the UB detector (Miri analogue)
    repro repair  FILE.rs            # repair with RustBrain, print the diff
    repro dataset [--category C]     # list the corpus
    repro bench   NAME               # regenerate one paper artifact
"""

from __future__ import annotations

import argparse
import sys


def _cmd_detect(args: argparse.Namespace) -> int:
    from .miri import detect_ub
    source = open(args.file).read() if args.file != "-" else sys.stdin.read()
    report = detect_ub(source, collect=args.collect)
    print(report.render())
    if report.stdout:
        print("\n--- program stdout ---")
        for line in report.stdout:
            print(line)
    return 0 if report.passed else 1


def _cmd_repair(args: argparse.Namespace) -> int:
    from .core import RustBrain, RustBrainConfig
    source = open(args.file).read() if args.file != "-" else sys.stdin.read()
    config = RustBrainConfig(model=args.model, temperature=args.temperature,
                             seed=args.seed,
                             use_knowledge_base=not args.no_kb)
    brain = RustBrain(config)
    outcome = brain.repair(source)
    if outcome.passed and outcome.repaired_source:
        print("== repair PASSED Miri ==")
        print(f"-- {outcome.solutions_tried} solutions, "
              f"{outcome.steps_executed} steps, "
              f"{outcome.seconds:.1f}s simulated, "
              f"{outcome.llm_calls} model calls --")
        print(outcome.repaired_source)
        return 0
    print(f"== repair FAILED: {outcome.failure_reason} ==")
    return 1


def _cmd_dataset(args: argparse.Namespace) -> int:
    from .corpus.dataset import load_dataset
    from .miri.errors import UbKind
    dataset = load_dataset()
    if args.category:
        dataset = dataset.subset([UbKind(args.category)])
    for case in dataset:
        print(f"{case.name:36s} {case.category.value:18s} "
              f"difficulty={case.difficulty}  {case.description}")
    print(f"\n{len(dataset)} cases, {len(dataset.categories())} categories")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import figures
    from .bench.reporting import category_label, render_table
    name = args.name
    if name == "table1":
        rows = figures.table1_data()
        avg = figures.table1_average(rows)
        rendered = [[category_label(r.category),
                     f"{r.no_knowledge_seconds:.0f}",
                     f"{r.knowledge_seconds:.0f}",
                     f"{r.human_seconds:.0f}", f"{r.speedup:.1f}x"]
                    for r in rows]
        rendered.append(["Average", f"{avg.no_knowledge_seconds:.1f}",
                         f"{avg.knowledge_seconds:.1f}",
                         f"{avg.human_seconds:.0f}", f"{avg.speedup:.1f}x"])
        print(render_table(["type", "no-KB s", "KB s", "human s", "speedup"],
                           rendered, title="Table I"))
        return 0
    if name in ("fig8", "fig9"):
        data = figures.fig8_fig9_data()
        metric = "pass" if name == "fig8" else "exec"
        headers = ["arm", f"{metric} %"]
        rows = [[label,
                 f"{100 * (arm.pass_rate if name == 'fig8' else arm.exec_rate):.1f}"]
                for label, arm in data.items()]
        print(render_table(headers, rows, title=f"Fig. {name[-1]} averages"))
        return 0
    if name == "fig11":
        for point in figures.fig11_data():
            print(f"T={point.temperature:.1f}  pass={point.pass_ci}  "
                  f"exec={point.exec_ci}")
        return 0
    print(f"unknown bench {name!r}; try: table1 fig8 fig9 fig11",
          file=sys.stderr)
    return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RustBrain reproduction: UB detection and LLM repair")
    sub = parser.add_subparsers(dest="command", required=True)

    p_detect = sub.add_parser("detect", help="run the UB detector")
    p_detect.add_argument("file")
    p_detect.add_argument("--collect", action="store_true",
                          help="keep going after the first UB")
    p_detect.set_defaults(fn=_cmd_detect)

    p_repair = sub.add_parser("repair", help="repair UBs with RustBrain")
    p_repair.add_argument("file")
    p_repair.add_argument("--model", default="gpt-4")
    p_repair.add_argument("--temperature", type=float, default=0.5)
    p_repair.add_argument("--seed", type=int, default=0)
    p_repair.add_argument("--no-kb", action="store_true")
    p_repair.set_defaults(fn=_cmd_repair)

    p_dataset = sub.add_parser("dataset", help="list the UB corpus")
    p_dataset.add_argument("--category", default=None)
    p_dataset.set_defaults(fn=_cmd_dataset)

    p_bench = sub.add_parser("bench", help="regenerate a paper artifact")
    p_bench.add_argument("name")
    p_bench.set_defaults(fn=_cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
