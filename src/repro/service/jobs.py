"""Repair jobs: payload validation, coalescing keys, and execution.

One service request is one *job*: a validated :class:`JobConfig` built
from the client's JSON payload, executed by :func:`execute_repair` on a
worker thread leased from the shared executor service.  Execution mirrors
a one-case per-case :class:`~repro.engine.campaign.Campaign` arm exactly —
same spec-pinned-seed hoisting, same per-case seed derivation, same cache
keys, same telemetry event stream — so a service response is byte-identical
to what a batch campaign would report for the same ``(spec, seed, source)``
(``benchmarks/service_smoke.py`` gates exactly that).

The :class:`EventLog` is the thread→asyncio bridge: engine threads append
telemetry frames under a plain lock and poke the server's event loop via
``call_soon_threadsafe``; SSE readers iterate the frame list with a cursor
and park on an :class:`asyncio.Event` between bursts, so a slow client
never blocks the worker.
"""

from __future__ import annotations

import asyncio
import dataclasses
import math
import threading

from ..engine.cache import ResultCache, case_key, fingerprint_case
from ..engine.campaign import case_seed, hoist_pinned_seed
from ..engine.faults import TransientServiceError, maybe_inject
from ..engine.registry import create_engine
from ..engine.retry import SERVICE_RETRY, RetryPolicy
from ..engine.spec import EngineSpec, SpecError, arm_label
from ..engine.telemetry import (CacheQueried, CampaignObserver, CaseFinished,
                                CaseStarted, EngineFinished, EngineStarted,
                                MemberFinished, RetryAttempted, RoundFinished)
from ..engine.types import RepairRequest, run_request
from ..miri import source_fingerprint
from ..miri.errors import UbKind


class RequestError(ValueError):
    """Invalid request payload; the message is the client-facing detail
    (mapped to HTTP 400 by the server, exit 2 by the CLI)."""


def validate_timeout_seconds(value) -> float | None:
    """Coerce a deadline from CLI/JSON input; ``None`` passes through.

    Shared by ``repro repair --timeout-seconds`` and the server's
    per-request ``timeout_seconds`` field so both fronts reject the same
    malformed values the same way.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise RequestError("timeout_seconds must be a number, "
                           f"got {value!r}")
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        raise RequestError("timeout_seconds must be a number, "
                           f"got {value!r}") from None
    if not math.isfinite(seconds) or not seconds > 0:
        raise RequestError("timeout_seconds must be a positive finite "
                           f"number, got {value!r}")
    return seconds


_PAYLOAD_DEFAULTS = {"engine": "rustbrain", "model": "gpt-4", "seed": 0,
                     "temperature": 0.5, "name": "request", "difficulty": 2,
                     "index": 0}

#: Every key a request payload may carry; anything else is a typo the
#: client should hear about rather than have silently ignored.
_KNOWN_KEYS = frozenset(_PAYLOAD_DEFAULTS) | frozenset(
    {"source", "category", "reference_source", "timeout_seconds", "wait"})


def _require(payload: dict, key: str, kind, label: str):
    value = payload.get(key, _PAYLOAD_DEFAULTS.get(key))
    # bool is an int subclass; no field validated here accepts one.
    if isinstance(value, bool) or not isinstance(value, kind):
        raise RequestError(f"{key} must be {label}, got {value!r}")
    return value


@dataclasses.dataclass(frozen=True)
class JobConfig:
    """One validated repair request, campaign-equivalent.

    ``spec`` is the *original* parsed spec (label and cache identity);
    ``seed`` is the campaign-level base seed before pinned-seed hoisting
    and per-case derivation — exactly the values a batch
    :class:`~repro.engine.campaign.Campaign` would have been handed.
    """

    spec: EngineSpec
    model: str
    seed: int
    temperature: float
    request: RepairRequest
    timeout_seconds: float | None = None
    wait: bool = True

    @classmethod
    def from_payload(cls, payload) -> "JobConfig":
        """Validate a decoded JSON body; :class:`RequestError` on anything
        malformed, including the spec resolving to no registered engine."""
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        unknown = sorted(set(payload) - _KNOWN_KEYS)
        if unknown:
            raise RequestError(f"unknown field(s): {', '.join(unknown)}")
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            raise RequestError("source must be a non-empty string")
        engine = _require(payload, "engine", str, "an engine spec string")
        model = _require(payload, "model", str, "a string")
        seed = _require(payload, "seed", int, "an integer")
        temperature = _require(payload, "temperature", (int, float),
                               "a number")
        name = _require(payload, "name", str, "a string")
        difficulty = _require(payload, "difficulty", int, "an integer")
        index = _require(payload, "index", int, "an integer")
        if index < 0:
            raise RequestError(f"index must be >= 0, got {index}")
        reference = payload.get("reference_source")
        if reference is not None and not isinstance(reference, str):
            raise RequestError("reference_source must be a string or null")
        category = payload.get("category")
        if category is not None:
            try:
                category = UbKind(category)
            except ValueError:
                choices = ", ".join(kind.value for kind in UbKind)
                raise RequestError(f"unknown category {category!r}; choose "
                                   f"from {choices}") from None
        wait = payload.get("wait", True)
        if not isinstance(wait, bool):
            raise RequestError(f"wait must be a boolean, got {wait!r}")
        try:
            spec = EngineSpec.parse(engine)
            # Fail fast, as Campaign's constructor does: an unknown engine
            # or a bad config key is the client's error, not a worker crash.
            create_engine(spec, model=model, seed=seed,
                          temperature=float(temperature))
        except (SpecError, ValueError) as exc:
            raise RequestError(str(exc)) from None
        request = RepairRequest(name=name, source=source,
                                difficulty=difficulty, category=category,
                                reference_source=reference, index=index)
        return cls(spec=spec, model=model, seed=seed,
                   temperature=float(temperature), request=request,
                   timeout_seconds=validate_timeout_seconds(
                       payload.get("timeout_seconds")),
                   wait=wait)

    @property
    def label(self) -> str:
        return arm_label(self.spec, self.model)

    def derived_seed(self) -> int:
        """The per-case engine seed a campaign would derive for this
        request's index (spec-pinned seeds hoist first)."""
        base_seed, _run_spec = hoist_pinned_seed(self.spec, self.seed)
        return case_seed(base_seed, self.request.index)


def coalesce_key(config: JobConfig) -> tuple:
    """Identity of an execution two in-flight requests may share.

    The issue's ``(EngineSpec, seed, source_fingerprint)`` triple plus
    every other input that can influence the report — model, temperature,
    case metadata, the reference program — so coalescing can never merge
    two requests a campaign would have answered differently.  The source
    enters as its normalized fingerprint: formatting-divergent duplicates
    share one execution (their verdicts are identical by the detector's
    fingerprint invariant; the shared report spells the leader's
    ``repaired_source`` variant, like batched verification does).
    """
    request = config.request
    return ("case", config.spec.to_string(), config.model,
            f"{config.temperature:.6g}", config.derived_seed(),
            request.name, request.difficulty,
            request.category.value if request.category else None,
            source_fingerprint(request.reference_source)
            if request.reference_source is not None else None,
            source_fingerprint(request.source))


def cache_key_for(config: JobConfig) -> str:
    """The exact :func:`~repro.engine.cache.case_key` a campaign would
    consult for this request — raw source, original spec string."""
    request = config.request
    return case_key(config.spec.to_string(), config.model,
                    config.temperature, config.derived_seed(),
                    fingerprint_case(request.name, request.source,
                                     request.reference_source,
                                     request.difficulty, request.category))


#: Default per-job telemetry frame cap.  A single-case job emits a dozen
#: frames; hundreds means a runaway producer, and an unbounded buffer is
#: a memory leak the moment jobs fail in a flood.
EVENT_LOG_MAX_FRAMES = 512


class EventLog(CampaignObserver):
    """Thread-safe telemetry frame buffer with asyncio wake-ups.

    Engine threads append ``(event_name, payload)`` frames through the
    observer hooks; async consumers iterate :meth:`stream`.  Frames are
    never dropped below the ``max_frames`` bound — a reader attaching
    after completion still replays the full stream.  At the bound, one
    ``events_truncated`` marker is appended and further non-terminal
    frames are counted but discarded (the terminal frame always lands,
    so streams still finish).
    """

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None,
                 max_frames: int = EVENT_LOG_MAX_FRAMES):
        if max_frames < 2:
            raise ValueError(f"max_frames must be >= 2, got {max_frames}")
        self._loop = loop
        self._max_frames = max_frames
        self._lock = threading.Lock()
        self._frames: list[tuple[str, dict]] = []
        self._done = False
        self._dropped = 0
        self._wakeup = asyncio.Event()

    # -- producer side (any thread) ----------------------------------------

    def _append(self, name: str, event) -> None:
        frame = (name, dataclasses.asdict(event))
        with self._lock:
            if self._done:
                return
            if len(self._frames) >= self._max_frames - 1:
                if self._dropped == 0:
                    self._frames.append(
                        ("events_truncated",
                         {"max_frames": self._max_frames}))
                self._dropped += 1
                return
            self._frames.append(frame)
        self._poke()

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def _poke(self) -> None:
        if self._loop is None:
            self._wakeup.set()
            return
        try:
            self._loop.call_soon_threadsafe(self._wakeup.set)
        except RuntimeError:
            pass  # loop already closed; nobody is listening

    def on_engine_start(self, event: EngineStarted) -> None:
        self._append("engine_started", event)

    def on_cache(self, event: CacheQueried) -> None:
        self._append("cache_queried", event)

    def on_case_start(self, event: CaseStarted) -> None:
        self._append("case_started", event)

    def on_member_done(self, event: MemberFinished) -> None:
        self._append("member_finished", event)

    def on_case_done(self, event: CaseFinished) -> None:
        self._append("case_finished", event)

    def on_round(self, event: RoundFinished) -> None:
        self._append("round_finished", event)

    def on_engine_done(self, event: EngineFinished) -> None:
        self._append("engine_finished", event)

    def on_retry(self, event: RetryAttempted) -> None:
        self._append("retry_attempted", event)

    def mark_done(self, name: str, payload: dict) -> None:
        """Append the terminal frame and end every stream."""
        with self._lock:
            if self._done:
                return
            self._frames.append((name, dict(payload)))
            self._done = True
        self._poke()

    # -- consumer side -----------------------------------------------------

    def frames(self) -> list[tuple[str, dict]]:
        with self._lock:
            return list(self._frames)

    def cache_hit(self) -> bool:
        with self._lock:
            return any(name == "cache_queried" and payload.get("hit")
                       for name, payload in self._frames)

    async def stream(self):
        """Yield every frame in order, waiting for more until the
        terminal frame arrives (clear-then-recheck, so a frame appended
        between the snapshot and the wait is never missed)."""
        cursor = 0
        while True:
            self._wakeup.clear()
            with self._lock:
                fresh = self._frames[cursor:]
                done = self._done
            cursor += len(fresh)
            for frame in fresh:
                yield frame
            if done:
                return
            await self._wakeup.wait()


def execute_repair(config: JobConfig, *, cache: ResultCache | None = None,
                   observer: CampaignObserver | None = None,
                   retry: RetryPolicy | None = None):
    """Run one request exactly as a one-case campaign arm would.

    Event order per the campaign contract: ``engine_started`` →
    ``cache_queried`` (when a cache is attached) → ``case_started`` →
    ``member_finished``* → ``case_finished`` → ``round_finished`` →
    ``engine_finished``.  Cache hits replay the stored report with the
    identical stream; misses run a fresh per-case engine and write back.
    Returns the :class:`~repro.engine.types.RepairReport`.

    When a fault plan enables the ``service`` site, an injected transient
    failure may fire *before* any telemetry is emitted; it is retried
    with deterministic backoff (``retry_attempted`` frames precede
    ``engine_started`` in that case), so the recovered event stream and
    report are byte-identical to a fault-free execution.
    """
    emit = observer if observer is not None else CampaignObserver()
    policy = retry if retry is not None else SERVICE_RETRY
    fault_key = (f"{config.label}|{config.request.name}"
                 f"|{config.seed}|{config.request.index}")

    def attempt_once(attempt: int):
        maybe_inject("service", key=fault_key, attempt=attempt)
        return _execute_repair_inner(config, cache=cache, emit=emit)

    return policy.run(attempt_once, site="service", key=fault_key,
                      retryable=TransientServiceError,
                      on_retry=emit.on_retry)


def _execute_repair_inner(config: JobConfig, *,
                          cache: ResultCache | None,
                          emit: CampaignObserver):
    request = config.request
    label = config.label
    base_seed, run_spec = hoist_pinned_seed(config.spec, config.seed)
    emit.on_engine_start(EngineStarted(engine=label, cases=1))
    key = None
    report = None
    if cache is not None:
        key = cache_key_for(config)
        cached = cache.get(key)
        if cached is not None:
            report = cached[0]
        emit.on_cache(CacheQueried(engine=label, case=request.name,
                                   index=request.index,
                                   hit=report is not None, key=key))
    emit.on_case_start(CaseStarted(engine=label, case=request.name,
                                   index=request.index, total=1))
    if report is None:
        engine = create_engine(run_spec, model=config.model,
                               seed=case_seed(base_seed, request.index),
                               temperature=config.temperature)
        report = run_request(engine, request, engine_label=label)
        if key is not None:
            cache.put(key, [report])
    for member in report.members:
        emit.on_member_done(MemberFinished(
            engine=label, case=request.name, index=request.index,
            member=member["member"], model=member["model"],
            member_index=member["index"], passed=member["passed"],
            seconds=member["seconds"], wave=member.get("wave", 0)))
    emit.on_case_done(CaseFinished(engine=label, case=request.name,
                                   index=request.index, total=1,
                                   passed=report.passed,
                                   acceptable=report.acceptable,
                                   seconds=report.seconds))
    emit.on_round(RoundFinished(engine=label, round_index=0, rounds=1,
                                completed=1, total=1,
                                passed_so_far=int(report.passed)))
    emit.on_engine_done(EngineFinished(engine=label, cases=1,
                                       passed=int(report.passed),
                                       acceptable=int(report.acceptable),
                                       virtual_seconds=report.seconds))
    return report
