"""Repair-as-a-service: the asyncio HTTP front door over the engines.

The batch path sweeps a fixed dataset through a
:class:`~repro.engine.campaign.Campaign`; this package serves the same
engines one request at a time — ``repro serve`` — with admission control
(token buckets + a bounded queue, both budget-aware through the shared
:data:`~repro.engine.pool.EXECUTOR_SERVICE`), request coalescing on the
normalized source fingerprint, a read-through
:class:`~repro.engine.cache.ResultCache` tier, and per-request telemetry
streamed as server-sent events.  Responses are byte-identical to the
batch path for the same ``(spec, seed, source)``; see DESIGN.md
("Serving") and docs/reference.md for the wire contract.
"""

from .admission import RateLimiter, TokenBucket, retry_after_header
from .jobs import (EventLog, JobConfig, RequestError, cache_key_for,
                   coalesce_key, execute_repair, validate_timeout_seconds)
from .server import RepairServer

__all__ = [
    "EventLog", "JobConfig", "RateLimiter", "RepairServer", "RequestError",
    "TokenBucket", "cache_key_for", "coalesce_key", "execute_repair",
    "retry_after_header", "validate_timeout_seconds",
]
