"""The asyncio repair server: admission, coalescing, streaming telemetry.

``repro serve`` binds a stdlib-only HTTP/1.1 front door over
:func:`asyncio.start_server` (one short-lived connection per request,
``Connection: close``).  Routes::

    POST /repair              submit one repair request (JSON body)
    GET  /repair/{id}         poll a job's status / final report
    GET  /repair/{id}/events  server-sent-event stream of its telemetry
    GET  /healthz             liveness probe
    GET  /stats               queue, coalescing, cache, and detector stats

Three layers between the socket and the engine:

* **Admission** — a per-client token bucket answers bursts with 429 +
  ``Retry-After``; a bounded job queue answers saturation with 503 +
  ``Retry-After``; a per-server circuit breaker answers consecutive
  engine failures with 503 + ``Retry-After`` until a half-open probe
  succeeds.  The server holds one long-lived
  :meth:`~repro.engine.pool.ExecutorService.lease` for its worker pool,
  so its concurrency is charged against the same
  :class:`~repro.engine.pool.CoreBudget` that clamps nested engine
  parallelism — one machine-wide admission token, exactly as campaigns
  share it.
* **Coalescing** — requests whose :func:`~repro.service.jobs.coalesce_key`
  matches an in-flight job attach to it and share its report instead of
  re-executing; the :class:`~repro.engine.cache.ResultCache` sits in
  front of execution as the cross-request read-through tier.
* **Execution** — jobs run :func:`repro.service.jobs.execute_repair` on
  leased worker threads (the event loop never blocks on the interpreter)
  and are byte-identical to a batch campaign for the same
  ``(spec, seed, source)``.

All mutable server state (queue, in-flight map, counters, buckets) is
loop-confined: worker threads only touch their job's
:class:`~repro.service.jobs.EventLog` and marshal completion back with
``call_soon_threadsafe``, so the server needs no locks of its own.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

from ..engine.cache import ResultCache
from ..engine.faults import FAULT_STATS
from ..engine.pool import EXECUTOR_SERVICE, ExecutorService
from ..miri import CASE_MEMO, DETECTOR_STATS
from . import jobs
from .admission import (CircuitBreaker, DrainEstimator, RateLimiter,
                        retry_after_header)
from .jobs import EventLog, JobConfig, RequestError, coalesce_key

#: Request framing limits; past either the request is rejected, not read.
MAX_HEADER_BYTES = 32_768
MAX_BODY_BYTES = 1_048_576

#: Finished jobs kept around for GET /repair/{id} after completion.
FINISHED_JOBS_KEPT = 256

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout"}


class _HttpError(Exception):
    """Maps straight to an error response; never leaves the handler."""

    def __init__(self, status: int, detail: str, headers: tuple = ()):
        super().__init__(detail)
        self.status = status
        self.detail = detail
        self.headers = headers


@dataclass(eq=False)  # identity semantics: jobs live in sets, keyed maps
class Job:
    """One admitted execution; coalesced requests all point at it."""

    id: str
    config: JobConfig
    key: tuple
    events: EventLog
    done: asyncio.Event
    status: str = "queued"  # queued | running | done | failed | cancelled
    report: object | None = None
    error: str | None = None
    waiters: int = 0        # coalesced requests sharing this execution
    created: float = 0.0
    finished: float = 0.0

    def public_state(self) -> dict:
        payload = {"id": self.id, "status": self.status,
                   "label": self.config.label,
                   "coalesced_waiters": self.waiters,
                   "error": self.error,
                   "report": self.report.to_dict()
                   if self.report is not None else None}
        return payload


@dataclass
class Counters:
    """Lifetime admission/outcome counters (the ``/stats`` ledger)."""

    received: int = 0
    admitted: int = 0
    coalesced: int = 0
    rejected_rate: int = 0
    rejected_queue: int = 0
    rejected_breaker: int = 0
    rejected_invalid: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    deadline_expired: int = 0

    def to_dict(self) -> dict:
        return dict(vars(self))


class RepairServer:
    """See the module docstring.  Construct, then ``await start()`` (or
    use :meth:`run_forever` / the ``repro serve`` CLI)."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 8357,
                 workers: int | None = None, max_queue: int = 32,
                 rate: float = 10.0, burst: float = 20.0,
                 cache: ResultCache | None = None,
                 executor_service: ExecutorService | None = None,
                 default_timeout_seconds: float | None = None,
                 breaker_threshold: int = 8,
                 breaker_reset_seconds: float = 30.0,
                 finished_jobs_kept: int = FINISHED_JOBS_KEPT,
                 clock=time.monotonic):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if finished_jobs_kept < 1:
            raise ValueError("finished_jobs_kept must be >= 1, "
                             f"got {finished_jobs_kept}")
        self.host = host
        self.port = port
        self._service = (executor_service if executor_service is not None
                         else EXECUTOR_SERVICE)
        if workers is None:
            workers = max(1, min(4, self._service.budget.total))
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        # The lease will clamp the pool to the budget's total anyway;
        # mirroring the clamp here keeps the dispatch bound honest.
        self.workers = min(workers, self._service.budget.total)
        self.max_queue = max_queue
        self.cache = cache
        self.default_timeout_seconds = default_timeout_seconds
        self.finished_jobs_kept = finished_jobs_kept
        self._clock = clock
        self.limiter = (RateLimiter(rate, burst, clock=clock)
                        if rate > 0 else None)
        self.breaker = CircuitBreaker(breaker_threshold,
                                      breaker_reset_seconds, clock=clock)
        self.estimator = DrainEstimator()
        self.counters = Counters()
        self._queue: deque[Job] = deque()
        self._running: set[Job] = set()
        self._inflight: dict[tuple, Job] = {}
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._finished_order: deque[str] = deque()
        self._next_id = 0
        self._draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._lease = None
        self._pool = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and take the lifetime worker-pool lease."""
        self._loop = asyncio.get_running_loop()
        self._lease = self._service.lease("thread", self.workers)
        self._pool = self._lease.__enter__()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, 503 the queue, drain
        running jobs, release the executor lease."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        while self._queue:
            self._conclude(self._queue.popleft(), status="cancelled",
                           error="server shutting down")
        if self._running:
            await asyncio.gather(
                *(job.done.wait() for job in list(self._running)))
        if self._lease is not None:
            self._lease.__exit__(None, None, None)
            self._lease = None
            self._pool = None

    async def serve(self) -> None:
        """Serve on the already-:meth:`start`-ed socket until cancelled."""
        await self._server.serve_forever()

    async def run_forever(self) -> None:
        """start(), serve until cancelled/interrupted, then stop()."""
        await self.start()
        try:
            await self.serve()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                parsed = await self._read_request(reader)
                if parsed is None:
                    return
                method, path, headers, body = parsed
                await self._route(writer, method, path, headers, body)
            except _HttpError as exc:
                await self._respond(writer, exc.status,
                                    {"error": exc.detail},
                                    headers=exc.headers)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(raw)
            if header_bytes > MAX_HEADER_BYTES:
                raise _HttpError(400, "headers too large")
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header {raw!r}")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if headers.get("content-length"):
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(400, "malformed Content-Length") from None
            if length < 0:
                raise _HttpError(400, "malformed Content-Length")
            if length > MAX_BODY_BYTES:
                raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            body = await reader.readexactly(length)
        path = target.split("?", 1)[0]
        return method, path, headers, body

    async def _route(self, writer, method: str, path: str,
                     headers: dict, body: bytes) -> None:
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "healthz is GET-only")
            await self._respond(writer, 200, {
                "status": "draining" if self._draining else "ok"})
            return
        if path == "/stats":
            if method != "GET":
                raise _HttpError(405, "stats is GET-only")
            await self._respond(writer, 200, self.stats())
            return
        if path == "/repair":
            if method != "POST":
                raise _HttpError(405, "submit repairs with POST /repair")
            await self._handle_repair(writer, headers, body)
            return
        if path.startswith("/repair/"):
            if method != "GET":
                raise _HttpError(405, "job endpoints are GET-only")
            tail = path[len("/repair/"):]
            job_id, _, rest = tail.partition("/")
            job = self._jobs.get(job_id)
            if job is None or rest not in ("", "events"):
                raise _HttpError(404, f"unknown job {tail!r}")
            if rest == "events":
                await self._handle_events(writer, job)
            else:
                await self._respond(writer, 200, job.public_state())
            return
        raise _HttpError(404, f"no route for {path!r}")

    # -- the POST /repair pipeline -----------------------------------------

    def _client_id(self, writer, headers: dict) -> str:
        explicit = headers.get("x-client-id")
        if explicit:
            return explicit
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if peer else "unknown"

    async def _handle_repair(self, writer, headers: dict,
                             body: bytes) -> None:
        self.counters.received += 1
        if self._draining:
            raise _HttpError(503, "server shutting down",
                             headers=(("Retry-After", "1"),))
        if self.limiter is not None:
            wait = self.limiter.admit(self._client_id(writer, headers))
            if wait > 0:
                self.counters.rejected_rate += 1
                raise _HttpError(
                    429, f"rate limit exceeded; retry in {wait:.3f}s",
                    headers=(("Retry-After", retry_after_header(wait)),))
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
            config = JobConfig.from_payload(payload)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.counters.rejected_invalid += 1
            raise _HttpError(400, f"body is not valid JSON: {exc}") from None
        except RequestError as exc:
            self.counters.rejected_invalid += 1
            raise _HttpError(400, str(exc)) from None

        key = coalesce_key(config)
        job = self._inflight.get(key)
        coalesced = job is not None
        if coalesced:
            self.counters.coalesced += 1
            job.waiters += 1
        else:
            job = self._admit(config, key)
        await self._reply_for(writer, job, config, coalesced)

    def _admit(self, config: JobConfig, key: tuple) -> Job:
        admitted, wait = self.breaker.allow()
        if not admitted:
            self.counters.rejected_breaker += 1
            raise _HttpError(
                503, f"circuit open ({self.breaker.state}); "
                     f"retry in ~{wait:.1f}s",
                headers=(("Retry-After", retry_after_header(wait)),))
        if len(self._queue) >= self.max_queue:
            # A half-open probe admission must not be stranded by a full
            # queue — free the slot for the next prober.
            self.breaker.abort_probe()
            self.counters.rejected_queue += 1
            wait = self._drain_estimate()
            raise _HttpError(
                503, f"queue full ({self.max_queue} deep); "
                     f"retry in ~{wait:.1f}s",
                headers=(("Retry-After", retry_after_header(wait)),))
        self.counters.admitted += 1
        self._next_id += 1
        job = Job(id=f"j{self._next_id:06d}", config=config, key=key,
                  events=EventLog(self._loop), done=asyncio.Event(),
                  created=self._clock())
        self._jobs[job.id] = job
        self._inflight[key] = job
        self._queue.append(job)
        self._pump()
        return job

    def _drain_estimate(self) -> float:
        pending = len(self._queue) + len(self._running)
        return self.estimator.estimate(pending, self.workers)

    async def _reply_for(self, writer, job: Job, config: JobConfig,
                         coalesced: bool) -> None:
        if not config.wait:
            await self._respond(writer, 202, {
                "id": job.id, "status": job.status,
                "label": job.config.label, "coalesced": coalesced})
            return
        timeout = (config.timeout_seconds
                   if config.timeout_seconds is not None
                   else self.default_timeout_seconds)
        if timeout is None:
            await job.done.wait()
        else:
            try:
                await asyncio.wait_for(job.done.wait(), timeout)
            except TimeoutError:
                self.counters.deadline_expired += 1
                raise _HttpError(
                    504, f"deadline of {timeout:g}s exceeded; the job "
                         f"continues — poll GET /repair/{job.id}") from None
        status = {"done": 200, "failed": 500, "cancelled": 503}[job.status]
        payload = {"id": job.id, "status": job.status,
                   "label": job.config.label, "coalesced": coalesced,
                   "error": job.error}
        if job.status == "done":
            payload["cache_hit"] = job.events.cache_hit()
            payload["report"] = job.report.to_dict()
        extra = (("Retry-After", "1"),) if status == 503 else ()
        await self._respond(writer, status, payload, headers=extra)

    # -- dispatch (loop-confined) ------------------------------------------

    def _pump(self) -> None:
        while (self._queue and len(self._running) < self.workers
               and not self._draining):
            job = self._queue.popleft()
            self._start_job(job)

    def _start_job(self, job: Job) -> None:
        job.status = "running"
        self._running.add(job)
        # Resolved through the module so tests can monkeypatch execution.
        future = self._pool.submit(jobs.execute_repair, job.config,
                                   cache=self.cache, observer=job.events)
        future.add_done_callback(
            lambda fut: self._threadsafe(self._finish_job, job, fut))

    def _threadsafe(self, fn, *args) -> None:
        try:
            self._loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass  # loop already closed (process teardown)

    def _finish_job(self, job: Job, future) -> None:
        self._running.discard(job)
        try:
            job.report = future.result()
        except BaseException as exc:  # surface, never crash the loop
            self._conclude(job, status="failed",
                           error=f"{type(exc).__name__}: {exc}")
        else:
            self._conclude(job, status="done")
        self._pump()

    def _conclude(self, job: Job, *, status: str,
                  error: str | None = None) -> None:
        job.status = status
        job.error = error
        job.finished = self._clock()
        if status == "done":
            self.counters.completed += 1
            self.breaker.record_success()
            self.estimator.observe(max(0.0, job.finished - job.created))
        elif status == "failed":
            self.counters.failed += 1
            self.breaker.record_failure()
        else:
            self.counters.cancelled += 1
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        job.events.mark_done("job_finished", {
            "id": job.id, "status": status, "error": error})
        job.done.set()
        self._finished_order.append(job.id)
        while len(self._finished_order) > self.finished_jobs_kept:
            stale = self._finished_order.popleft()
            self._jobs.pop(stale, None)

    # -- responses ---------------------------------------------------------

    async def _respond(self, writer, status: int, payload: dict,
                       headers: tuple = ()) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        lines.extend(f"{name}: {value}" for name, value in headers)
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()

    async def _handle_events(self, writer, job: Job) -> None:
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1"))
        await writer.drain()
        async for name, payload in job.events.stream():
            frame = (f"event: {name}\n"
                     f"data: {json.dumps(payload, sort_keys=True)}\n\n")
            writer.write(frame.encode("utf-8"))
            await writer.drain()

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        counters = self.counters
        shareable = counters.coalesced + counters.admitted
        budget = self._service.budget
        return {
            "server": {"host": self.host, "port": self.port,
                       "workers": self.workers,
                       "max_queue": self.max_queue,
                       "draining": self._draining},
            "queue": {"depth": len(self._queue),
                      "running": len(self._running),
                      "jobs_tracked": len(self._jobs)},
            "counters": counters.to_dict(),
            "coalescing": {
                "attached": counters.coalesced,
                "executions": counters.admitted,
                "hit_rate": (counters.coalesced / shareable
                             if shareable else 0.0)},
            "cache": self.cache.counts() if self.cache is not None else None,
            "breaker": self.breaker.to_dict(),
            "drain": self.estimator.to_dict(),
            "faults": FAULT_STATS.snapshot(),
            "detector": DETECTOR_STATS.snapshot(),
            "case_memo": CASE_MEMO.snapshot(),
            "budget": {"total": budget.total, "in_use": budget.in_use,
                       "available": budget.available},
            "rate_limiter": ({"clients": self.limiter.clients(),
                              "rate": self.limiter.rate,
                              "burst": self.limiter.burst}
                             if self.limiter is not None else None),
        }
