"""Admission control primitives: per-client token buckets.

The server's admission layer has two gates — the per-client rate limit
here (HTTP 429) and the bounded job queue in the server itself (HTTP 503).
Both answer rejections with ``Retry-After`` so well-behaved clients back
off instead of hammering.

Everything in this module is loop-confined: the server only touches a
:class:`RateLimiter` from its event loop, so no locks are needed.  The
clock is injectable (monotonic seconds) for deterministic tests, mirroring
``engine/pool.py``'s idle-reap testing seam.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``.

    Starts full, refills continuously, never goes negative.  ``rate``
    must be positive — a disabled limiter is represented by *no* limiter,
    not a zero-rate bucket.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if not rate > 0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        if not burst >= 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False (and no debit) otherwise."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will have refilled (0 when ready now)."""
        self._refill()
        missing = tokens - self._tokens
        return max(0.0, missing / self.rate)


class RateLimiter:
    """Per-client token buckets with bounded LRU client tracking.

    ``admit(client)`` returns ``0.0`` when the request may proceed, else
    the seconds the client should wait before retrying (the server turns
    that into 429 + ``Retry-After``).  The client table is capped: the
    least-recently-seen client is evicted first, so an open endpoint
    cannot grow state without bound — a returning evicted client simply
    starts with a fresh (full) bucket.
    """

    def __init__(self, rate: float, burst: float, *,
                 clock=time.monotonic, max_clients: int = 1024):
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def admit(self, client: str) -> float:
        bucket = self._buckets.get(client)
        if bucket is None:
            while len(self._buckets) >= self.max_clients:
                self._buckets.popitem(last=False)
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client] = bucket
        self._buckets.move_to_end(client)
        if bucket.try_acquire():
            return 0.0
        # Never answer a rejection with "retry in 0s".
        return max(bucket.retry_after(), 1e-3)

    def clients(self) -> int:
        return len(self._buckets)


def retry_after_header(seconds: float) -> str:
    """``Retry-After`` is whole seconds; always advise at least 1."""
    return str(max(1, math.ceil(seconds)))
