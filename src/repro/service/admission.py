"""Admission control primitives: token buckets, circuit breaker, drain
estimates.

The server's admission layer has three gates — the per-client rate limit
here (HTTP 429), the bounded job queue in the server itself (HTTP 503),
and the per-server :class:`CircuitBreaker` (HTTP 503 while the engine
substrate is failing consecutively).  All rejections answer with
``Retry-After`` so well-behaved clients back off instead of hammering;
the queue-full estimate comes from :class:`DrainEstimator`'s observed
mean job duration.

Everything in this module is loop-confined: the server only touches
these objects from its event loop, so no locks are needed.  The clock is
injectable (monotonic seconds) for deterministic tests, mirroring
``engine/pool.py``'s idle-reap testing seam.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``.

    Starts full, refills continuously, never goes negative.  ``rate``
    must be positive — a disabled limiter is represented by *no* limiter,
    not a zero-rate bucket.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if not rate > 0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        if not burst >= 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False (and no debit) otherwise."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will have refilled (0 when ready now)."""
        self._refill()
        missing = tokens - self._tokens
        return max(0.0, missing / self.rate)


class RateLimiter:
    """Per-client token buckets with bounded LRU client tracking.

    ``admit(client)`` returns ``0.0`` when the request may proceed, else
    the seconds the client should wait before retrying (the server turns
    that into 429 + ``Retry-After``).  The client table is capped: the
    least-recently-seen client is evicted first, so an open endpoint
    cannot grow state without bound — a returning evicted client simply
    starts with a fresh (full) bucket.
    """

    def __init__(self, rate: float, burst: float, *,
                 clock=time.monotonic, max_clients: int = 1024):
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def admit(self, client: str) -> float:
        bucket = self._buckets.get(client)
        if bucket is None:
            while len(self._buckets) >= self.max_clients:
                self._buckets.popitem(last=False)
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client] = bucket
        self._buckets.move_to_end(client)
        if bucket.try_acquire():
            return 0.0
        # Never answer a rejection with "retry in 0s".
        return max(bucket.retry_after(), 1e-3)

    def clients(self) -> int:
        return len(self._buckets)


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    States follow the classic automaton, driven entirely by the injected
    clock and the observed job outcomes — no randomness, so transitions
    are deterministic and ``benchmarks/chaos_smoke.py`` can gate them:

    * **closed** — requests flow; ``threshold`` *consecutive* failures
      trip the breaker (one success resets the count).
    * **open** — requests are rejected with the seconds remaining until
      the reset window elapses (the server maps this to 503 +
      ``Retry-After``).
    * **half-open** — after ``reset_seconds``, exactly one probe request
      is admitted; success closes the breaker, failure re-opens it for a
      fresh window.  Further requests during the probe stay rejected.
    """

    def __init__(self, threshold: int = 5, reset_seconds: float = 30.0,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if not reset_seconds > 0:
            raise ValueError("reset_seconds must be > 0, "
                             f"got {reset_seconds!r}")
        self.threshold = threshold
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._probing:
            return "half_open"
        elapsed = self._clock() - self._opened_at
        return "half_open" if elapsed >= self.reset_seconds else "open"

    def allow(self) -> tuple[bool, float]:
        """``(admit, retry_after_seconds)`` for one incoming request.

        A half-open admission *is* the probe: the caller must report the
        job's outcome via :meth:`record_success`/:meth:`record_failure`,
        or :meth:`abort_probe` if the request never became a job.
        """
        state = self.state
        if state == "closed":
            return True, 0.0
        if state == "open":
            remaining = (self._opened_at + self.reset_seconds
                         - self._clock())
            return False, max(remaining, 1e-3)
        if self._probing:
            # One probe in flight; advise waiting roughly its duration.
            return False, max(self.reset_seconds / 2.0, 1e-3)
        self._probing = True
        return True, 0.0

    def abort_probe(self) -> None:
        """The admitted probe was rejected downstream (queue full, bad
        payload) before becoming a job; free the slot for the next one."""
        self._probing = False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        if self._probing or (self._opened_at is not None
                             and self.state == "half_open"):
            # Failed probe: re-open for a fresh window.
            self._opened_at = self._clock()
            self._probing = False
            return
        if self._opened_at is not None:
            # A straggler job from before the trip; stay open, and do not
            # extend the window (probe timing must stay deterministic).
            return
        self._failures += 1
        if self._failures >= self.threshold:
            self._opened_at = self._clock()

    def to_dict(self) -> dict:
        """Snapshot for ``/stats``."""
        return {"state": self.state,
                "consecutive_failures": self._failures,
                "threshold": self.threshold,
                "reset_seconds": self.reset_seconds}


class DrainEstimator:
    """Observed mean job duration, seeded with a sane default.

    Backs the queue-full 503's ``Retry-After``: *estimated queue drain
    time* = pending jobs × mean job seconds ÷ workers.  Before any job
    has completed the estimate uses ``default_seconds`` — a deliberate
    prior rather than a magic constant buried in the server — and after
    that a running mean over everything observed, which is stabler than
    the previous EWMA cold-start guess for the short bursty jobs the
    simulated engines produce.
    """

    def __init__(self, default_seconds: float = 1.0):
        if not default_seconds > 0:
            raise ValueError("default_seconds must be > 0, "
                             f"got {default_seconds!r}")
        self.default_seconds = float(default_seconds)
        self._total = 0.0
        self._count = 0

    def observe(self, seconds: float) -> None:
        self._total += max(0.0, float(seconds))
        self._count += 1

    @property
    def mean_seconds(self) -> float:
        if self._count == 0:
            return self.default_seconds
        return self._total / self._count

    def estimate(self, pending: int, workers: int) -> float:
        """Seconds until a queue of ``pending`` jobs drains (>= 0.1)."""
        return max(0.1, pending * self.mean_seconds / max(1, workers))

    def to_dict(self) -> dict:
        return {"mean_seconds": self.mean_seconds,
                "observed_jobs": self._count}


def retry_after_header(seconds: float) -> str:
    """``Retry-After`` is whole seconds; always advise at least 1."""
    return str(max(1, math.ceil(seconds)))
