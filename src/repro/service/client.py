"""Minimal stdlib async HTTP client for the repair service.

Just enough protocol for the server's dialect — one request per
connection, JSON bodies, ``Content-Length`` responses, SSE streams —
shared by the service tests and ``benchmarks/service_smoke.py`` so
neither grows its own socket plumbing.  Not a general HTTP client.

Connections that are refused or reset mid-handshake are retried with
:data:`CONNECT_RETRY` (same capped-backoff/deterministic-jitter policy
as the engine's LLM retries, awaited on the event loop instead of
blocking); each attempt is announced on
:data:`~repro.engine.retry.RETRY_EVENTS`.  An HTTP *response* is never
retried here — status handling stays with the caller.
"""

from __future__ import annotations

import asyncio
import json

from ..engine.retry import RETRY_EVENTS, RetryPolicy
from ..engine.telemetry import RetryAttempted

#: Connection-level transient policy: short fuse, the server restarts or
#: sheds load in well under a second in the scenarios we model.
CONNECT_RETRY = RetryPolicy(attempts=4, base_delay=0.05, max_delay=0.5)

#: The errors worth a reconnect — the TCP dial failed or died before a
#: response head arrived.  Anything later is the caller's problem.
_CONNECT_ERRORS = (ConnectionRefusedError, ConnectionResetError,
                   BrokenPipeError)


async def _open_connection(host: str, port: int, *, key: str,
                           retry: RetryPolicy | None = None):
    """``asyncio.open_connection`` with transient-dial retries."""
    policy = retry if retry is not None else CONNECT_RETRY
    for attempt in range(policy.attempts):
        try:
            return await asyncio.open_connection(host, port)
        except _CONNECT_ERRORS as exc:
            if attempt + 1 >= policy.attempts:
                raise
            delay = policy.delay_for(attempt, key)
            RETRY_EVENTS.emit(RetryAttempted(
                site="client", key=key, attempt=attempt + 1,
                max_attempts=policy.attempts, delay_seconds=delay,
                error=f"{type(exc).__name__}: {exc}"))
            await asyncio.sleep(delay)
    raise RuntimeError("unreachable")  # pragma: no cover


class ServiceResponse:
    """Status, headers, and decoded JSON body of one exchange."""

    def __init__(self, status: int, headers: dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self):
        return json.loads(self.body.decode("utf-8")) if self.body else None

    @property
    def retry_after(self) -> str | None:
        return self.headers.get("retry-after")


async def request(host: str, port: int, method: str, path: str, *,
                  payload=None, headers: dict[str, str] | None = None,
                  retry: RetryPolicy | None = None) -> ServiceResponse:
    """One HTTP exchange; the connection is closed afterwards."""
    body = (json.dumps(payload).encode("utf-8")
            if payload is not None else b"")
    lines = [f"{method} {path} HTTP/1.1", f"Host: {host}:{port}",
             "Connection: close"]
    if body:
        lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(body)}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    reader, writer = await _open_connection(
        host, port, key=f"{method} {path}", retry=retry)
    try:
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()
        status, response_headers = await _read_head(reader)
        length = response_headers.get("content-length")
        if length is not None:
            response_body = await reader.readexactly(int(length))
        else:
            response_body = await reader.read()
        return ServiceResponse(status, response_headers, response_body)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _read_head(reader) -> tuple[int, dict[str, str]]:
    status_line = (await reader.readline()).decode("latin-1")
    parts = status_line.split()
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ValueError(f"malformed status line {status_line!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def post_repair(host: str, port: int, payload: dict, *,
                      client_id: str | None = None) -> ServiceResponse:
    headers = {"X-Client-Id": client_id} if client_id else None
    return await request(host, port, "POST", "/repair",
                         payload=payload, headers=headers)


async def get_json(host: str, port: int, path: str) -> ServiceResponse:
    return await request(host, port, "GET", path)


async def read_sse(host: str, port: int, path: str
                   ) -> list[tuple[str, dict]]:
    """Collect a whole SSE stream (the server ends it at the terminal
    frame) as ``(event_name, decoded_data)`` tuples."""
    reader, writer = await _open_connection(host, port,
                                            key=f"GET {path}")
    try:
        writer.write((f"GET {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
                      "Connection: close\r\n\r\n").encode("latin-1"))
        await writer.drain()
        status, _headers = await _read_head(reader)
        if status != 200:
            body = await reader.read()
            raise ValueError(f"SSE request failed: {status} "
                             f"{body.decode('utf-8', 'replace')}")
        frames: list[tuple[str, dict]] = []
        event = None
        data_lines: list[str] = []
        while True:
            raw = await reader.readline()
            if not raw:
                break
            line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
            if not line:
                if event is not None or data_lines:
                    frames.append((event or "message",
                                   json.loads("\n".join(data_lines))))
                event = None
                data_lines = []
                continue
            if line.startswith("event:"):
                event = line[len("event:"):].strip()
            elif line.startswith("data:"):
                data_lines.append(line[len("data:"):].strip())
        return frames
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
