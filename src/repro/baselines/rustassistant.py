"""RustAssistant-style fixed-pipeline baseline (Deligiannis et al.).

The published loop shape: feed the compiler/Miri error to the model, apply
the suggested patch, re-check, iterate — with a *fixed* strategy order
(always try safe-replacement first, then assertions, then modification,
regardless of code features), a pattern-matching lookup instead of a learned
knowledge base, rollback-to-initial on error growth, and no feedback. This
isolates exactly the flexibility mechanisms the paper credits RustBrain
with: under the same oracle and detector, only the orchestration differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.agents.rollback import RollbackAgent, RollbackPolicy
from ..core.pipeline import RepairOutcome
from ..core.rewrites import FixKind, REGISTRY, apply_rule
from ..engine.registry import apply_config_overrides, register_engine
from ..lang.parser import parse_program
from ..lang.printer import print_program
from ..llm.client import ContextOverflow, LLMClient, VirtualClock
from ..llm.oracle import CATEGORY_RULE_PRIORS, corrupt_step, extract_features
from ..miri import detect_ub

#: The fixed strategy order: replacement → assertion → modification.
_FIXED_KIND_ORDER = (FixKind.REPLACE, FixKind.ASSERT, FixKind.MODIFY)


@dataclass
class RustAssistantConfig:
    model: str = "gpt-4"
    temperature: float = 0.5
    seed: int = 0
    max_iterations: int = 6
    detector_seconds: float = 0.8


class RustAssistant:
    def __init__(self, config: RustAssistantConfig | None = None):
        self.config = config or RustAssistantConfig()
        self._repair_index = 0

    # ------------------------------------------------------------------

    def _fixed_plan(self, predicted_category) -> list[str]:
        """The rigid step list the fixed pipeline always walks.

        One representative rule per fix class, in the fixed order
        replacement → assertion → modification (the lookup takes the *first*
        pattern of each class for the matched error type and never adapts to
        the code's specific characteristics — the paper's central criticism
        of fixed frameworks), padded with one generic fallback per class.
        """
        prior = CATEGORY_RULE_PRIORS.get(predicted_category, [])
        plan: list[str] = []
        for kind in _FIXED_KIND_ORDER:
            for rule_name in prior:
                rule = REGISTRY.get(rule_name)
                if rule is not None and rule.kind is kind:
                    plan.append(rule_name)
                    break  # only the first pattern of each class
        # Generic fallbacks: the same three rules regardless of error type.
        for generic in ("replace_uninit_with_zero_init",
                        "guard_index_with_len_check",
                        "move_drop_after_last_use"):
            if generic not in plan:
                plan.append(generic)
        return plan

    def repair(self, source: str, difficulty: int = 2) -> RepairOutcome:
        config = self.config
        clock = VirtualClock()
        client = LLMClient(config.model, config.temperature,
                           seed=config.seed * 4241 + self._repair_index,
                           clock=clock)
        self._repair_index += 1
        # RustAssistant's prompts carry only the raw diagnostic (no feature
        # extraction context), which yields noticeably lower patch fidelity.
        client._careless_trait = (config.seed * 2654435761
                                  + self._repair_index * 40503) % 100 < 55

        clock.advance(config.detector_seconds)
        report = detect_ub(source, collect=True)
        if report.passed:
            return self._outcome(client, True, source, 0, 0, 0, [])
        try:
            program = parse_program(source)
        except Exception:
            return self._outcome(client, False, None, 0, 0, 0, [],
                                 reason="unparseable input")

        try:
            features = extract_features(client, program, report)
        except ContextOverflow:
            return self._outcome(client, False, None, 0, 0, 0, [],
                                 reason="exceeds context limit")
        plan = self._fixed_plan(features.predicted_category)

        rollback = RollbackAgent(RollbackPolicy.INITIAL, program,
                                 report.error_count)
        current = program
        current_errors = report.error_count
        steps = 0
        hallucinations = 0
        sequences = [report.error_count]

        for rule_name in plan[: config.max_iterations]:
            execution = corrupt_step(client, rule_name)
            steps += 1
            if execution.hallucinated:
                hallucinations += 1
            candidate = apply_rule(current, execution.rule)
            if candidate is None:
                continue
            if execution.retouched:
                retouched = apply_rule(candidate, "retouch_output_constant")
                if retouched is not None:
                    candidate = retouched
            clock.advance(config.detector_seconds)
            verdict = detect_ub(print_program(candidate), collect=True)
            sequences.append(verdict.error_count)
            rollback.observe(candidate, verdict.error_count)
            if verdict.passed:
                return self._outcome(client, True, print_program(candidate),
                                     steps, hallucinations,
                                     rollback.rollbacks, sequences)
            current, current_errors = rollback.next_base(
                candidate, verdict.error_count)

        return self._outcome(client, False, None, steps, hallucinations,
                             rollback.rollbacks, sequences,
                             reason="iterations exhausted")

    def _outcome(self, client, passed, repaired, steps, hallucinations,
                 rollbacks, sequence, reason=None) -> RepairOutcome:
        return RepairOutcome(
            passed=passed, repaired_source=repaired,
            seconds=client.clock.elapsed,
            tokens=client.stats.total_tokens,
            llm_calls=client.stats.call_count,
            solutions_tried=1, steps_executed=steps,
            hallucinations=hallucinations, rollbacks=rollbacks,
            used_knowledge_base=True, used_feedback=False,
            error_sequences=[sequence] if sequence else [],
            failure_reason=reason,
        )


@register_engine("rustassistant",
                 summary="fixed-pipeline baseline (Deligiannis et al.): "
                         "rigid strategy order, rollback-to-initial, "
                         "no feedback",
                 tags=("baseline",))
def _build_rustassistant(*, model: str = "gpt-4", seed: int = 0,
                         temperature: float = 0.5,
                         **overrides) -> RustAssistant:
    config = RustAssistantConfig(model=model, seed=seed,
                                 temperature=temperature)
    apply_config_overrides(config, overrides)
    return RustAssistant(config)
