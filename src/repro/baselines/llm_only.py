"""Standalone-LLM repair baseline ("GPT-4 alone" in Fig. 8/9).

A single prompt with the code and the Miri error; the model proposes one
fix, which is applied and checked once (plus one retry — the typical
ask-the-chatbot workflow). No decomposition, no rollback, no knowledge base,
no feedback: whatever the model's first instincts produce is the answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.rewrites import apply_rule
from ..core.pipeline import RepairOutcome
from ..engine.registry import apply_config_overrides, register_engine
from ..lang.parser import parse_program
from ..lang.printer import print_program
from ..llm.client import ContextOverflow, LLMClient, VirtualClock
from ..llm.oracle import (corrupt_step, extract_features,
                          generate_plan_batch, rank_candidate_rules)
from ..miri import detect_case, detect_ub


@dataclass
class LLMOnlyConfig:
    model: str = "gpt-4"
    temperature: float = 0.5
    seed: int = 0
    attempts: int = 3
    detector_seconds: float = 0.8
    #: Sample every attempt's candidate plan in ONE batched oracle call
    #: (features extracted once, prompt ingested once) instead of a full
    #: extract+generate round-trip per attempt.  Off by default so the
    #: seeded Fig. 8/9 baseline numbers stay bit-identical; campaigns opt
    #: in with ``llm_only?batched=on``.
    batched: bool = False
    #: Answer the F1 detection from the process-wide
    #: :func:`repro.miri.detect_case` memo (exact-text keys), so ensemble
    #: members and repeated arms consulting the same case source share
    #: one interpreter run.  Byte-identical outcomes either way;
    #: ``fingerprint=off`` restores the memo-free execution profile.
    fingerprint: bool = True


class LLMOnlyRepair:
    def __init__(self, config: LLMOnlyConfig | None = None):
        self.config = config or LLMOnlyConfig()
        self._repair_index = 0

    def repair(self, source: str, difficulty: int = 2) -> RepairOutcome:
        config = self.config
        clock = VirtualClock()
        client = LLMClient(config.model, config.temperature,
                           seed=config.seed * 6037 + self._repair_index,
                           clock=clock)
        self._repair_index += 1

        clock.advance(config.detector_seconds)
        report = detect_case(source, collect=True) if config.fingerprint \
            else detect_ub(source, collect=True)
        if report.passed:
            return self._outcome(client, True, source, 0, 0)
        try:
            program = parse_program(source)
        except Exception:
            return self._outcome(client, False, None, 0, 0,
                                 reason="unparseable input")

        steps = 0
        hallucinations = 0
        plan_batch: list[list[str]] | None = None
        if config.batched:
            # Batched fan-out: one feature extraction, then every attempt's
            # candidate sampled from a single generate_batch invocation.
            try:
                features = extract_features(client, program, report)
                plan_batch = generate_plan_batch(client, features, program,
                                                 config.attempts, difficulty)
            except ContextOverflow:
                return self._outcome(client, False, None, steps,
                                     hallucinations,
                                     reason="exceeds context limit")
        for attempt in range(config.attempts):
            if plan_batch is not None:
                plans = [plan_batch[attempt]]
            else:
                try:
                    features = extract_features(client, program, report)
                except ContextOverflow:
                    return self._outcome(client, False, None, steps,
                                         hallucinations,
                                         reason="exceeds context limit")
                plans = rank_candidate_rules(client, features, program, 1,
                                             difficulty=difficulty)
            if not plans or not plans[0]:
                continue
            execution = corrupt_step(client, plans[0][0])
            steps += 1
            if execution.hallucinated:
                hallucinations += 1
            candidate = apply_rule(program, execution.rule)
            if candidate is None:
                continue
            if execution.retouched:
                retouched = apply_rule(candidate, "retouch_output_constant")
                if retouched is not None:
                    candidate = retouched
            clock.advance(config.detector_seconds)
            repaired_source = print_program(candidate)
            verdict = detect_ub(repaired_source)
            if verdict.passed:
                return self._outcome(client, True, repaired_source, steps,
                                     hallucinations)
        return self._outcome(client, False, None, steps, hallucinations,
                             reason="attempts exhausted")

    def _outcome(self, client, passed, repaired, steps, hallucinations,
                 reason=None) -> RepairOutcome:
        return RepairOutcome(
            passed=passed, repaired_source=repaired,
            seconds=client.clock.elapsed,
            tokens=client.stats.total_tokens,
            llm_calls=client.stats.call_count,
            solutions_tried=steps, steps_executed=steps,
            hallucinations=hallucinations, rollbacks=0,
            used_knowledge_base=False, used_feedback=False,
            failure_reason=reason,
        )


@register_engine("llm_only",
                 summary="single-prompt ask-the-chatbot baseline "
                         "('GPT-4 alone' in Fig. 8/9)",
                 tags=("baseline",))
def _build_llm_only(*, model: str = "gpt-4", seed: int = 0,
                    temperature: float = 0.5, **overrides) -> LLMOnlyRepair:
    config = LLMOnlyConfig(model=model, seed=seed, temperature=temperature)
    apply_config_overrides(config, overrides)
    return LLMOnlyRepair(config)
