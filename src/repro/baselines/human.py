"""Human-expert baseline, parameterised from Table I.

The paper's human column reports per-category average repair times measured
on engineer experts (the Thetis study). We reuse those constants directly:
the human baseline exists purely as the speedup denominator of RQ4.
Categories absent from Table I (uninit, tailcall) are interpolated from the
closest rows and flagged as such in EXPERIMENTS.md.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..miri.errors import UbKind

#: Average seconds per category, from Table I's "Human" column.
HUMAN_TIMES: dict[UbKind, float] = {
    UbKind.STACK_BORROW: 366.0,
    UbKind.UNALIGNED: 222.0,
    UbKind.VALIDITY: 678.0,
    UbKind.ALLOC: 450.0,
    UbKind.FUNC_POINTER: 480.0,
    UbKind.PROVENANCE: 240.0,
    UbKind.PANIC: 336.0,
    UbKind.FUNC_CALL: 1176.0,
    UbKind.DANGLING_POINTER: 114.0,
    UbKind.BOTH_BORROW: 762.0,
    UbKind.CONCURRENCY: 144.0,
    UbKind.DATA_RACE: 336.0,
    # Interpolated (not in Table I): between validity and dangling rows.
    UbKind.UNINIT: 300.0,
    # Interpolated: function-pointer-adjacent expertise requirement.
    UbKind.TAIL_CALL: 600.0,
}


@dataclass
class HumanOutcome:
    passed: bool
    acceptable: bool
    seconds: float


class HumanExpert:
    """Experts almost always succeed with acceptable semantics; they are
    just slow — increasingly so for complex or rare error shapes."""

    def __init__(self, seed: int = 0, success_rate: float = 0.97,
                 time_jitter: float = 0.15):
        self.seed = seed
        self.success_rate = success_rate
        self.time_jitter = time_jitter

    def repair(self, case_name: str, category: UbKind,
               difficulty: int = 2) -> HumanOutcome:
        digest = hashlib.blake2b(f"{self.seed}|{case_name}".encode(),
                                 digest_size=8).digest()
        rng = random.Random(int.from_bytes(digest, "big"))
        base = HUMAN_TIMES.get(category, 400.0)
        # Difficulty scales around the per-category mean (difficulty 2 ≈ 1x).
        scale = 0.7 + 0.15 * difficulty
        seconds = base * scale * (1.0 + rng.uniform(-self.time_jitter,
                                                    self.time_jitter))
        success = rng.random() < self.success_rate
        return HumanOutcome(passed=success, acceptable=success,
                            seconds=seconds)
