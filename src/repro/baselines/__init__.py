"""Comparison systems: standalone LLM, RustAssistant, human expert."""

from .human import HUMAN_TIMES, HumanExpert
from .llm_only import LLMOnlyRepair
from .rustassistant import RustAssistant

__all__ = ["HUMAN_TIMES", "HumanExpert", "LLMOnlyRepair", "RustAssistant"]
