"""Data generators for every table and figure in the paper's evaluation.

Each ``figN_*`` function regenerates the corresponding artifact's rows/series
(the benchmark files under ``benchmarks/`` wrap these with pytest-benchmark
and assert the paper-shape claims; ``EXPERIMENTS.md`` records the outputs).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

from ..baselines.human import HUMAN_TIMES, HumanExpert
from ..corpus.dataset import Dataset, load_dataset
from ..core.pipeline import RustBrain, RustBrainConfig
from ..core.evaluate import semantically_acceptable
from ..core.solution import decompose
from ..engine.cache import ResultCache
from ..engine.campaign import Campaign
from ..engine.spec import EngineSpec
from ..miri.errors import PAPER_CATEGORIES, UbKind
from .experiments import SystemResults, arm_label
from .stats import RateCI, mean, wilson_interval

#: Seeds averaged in the headline numbers (repeat-sampling per §IV RQ3).
DEFAULT_SEEDS = (3, 11, 23)

#: Fig. 10's cost-reduced error-type subset.
FIG10_CATEGORIES = [
    UbKind.ALLOC, UbKind.TAIL_CALL, UbKind.DANGLING_POINTER,
    UbKind.FUNC_POINTER, UbKind.PANIC, UbKind.UNALIGNED, UbKind.FUNC_CALL,
]


@dataclass
class ArmSummary:
    label: str
    pass_rate: float
    exec_rate: float
    mean_seconds: float
    pass_by_category: dict[UbKind, float]
    exec_by_category: dict[UbKind, float]
    seconds_by_category: dict[UbKind, float]
    results: list[SystemResults] = field(default_factory=list)


def _summarize(label: str, runs: list[SystemResults]) -> ArmSummary:
    pass_by: dict[UbKind, list[float]] = {}
    exec_by: dict[UbKind, list[float]] = {}
    secs_by: dict[UbKind, list[float]] = {}
    for run in runs:
        for cat, rate in run.category_pass_rates().items():
            pass_by.setdefault(cat, []).append(rate)
        for cat, rate in run.category_exec_rates().items():
            exec_by.setdefault(cat, []).append(rate)
        for cat, secs in run.category_mean_seconds().items():
            secs_by.setdefault(cat, []).append(secs)
    return ArmSummary(
        label=label,
        pass_rate=mean([run.pass_rate() for run in runs]),
        exec_rate=mean([run.exec_rate() for run in runs]),
        mean_seconds=mean([run.mean_seconds() for run in runs]),
        pass_by_category={c: mean(v) for c, v in pass_by.items()},
        exec_by_category={c: mean(v) for c, v in exec_by.items()},
        seconds_by_category={c: mean(v) for c, v in secs_by.items()},
        results=runs,
    )


#: Executor for figure regeneration.  Stateful per-seed sweeps cannot split
#: within an arm, but one-arm-per-seed campaigns parallelise across arms —
#: "process" saturates the cores; set REPRO_FIGURES_EXECUTOR=serial to
#: fall back to fully in-process runs (e.g. when debugging an engine).
_FIGURES_EXECUTOR = os.environ.get("REPRO_FIGURES_EXECUTOR", "process")

#: In-process memo: the same (spec, model, seeds, temperature, dataset) arm
#: is referenced by several figures (fig8, fig12, Table I, the ablations) —
#: each used to recompute the full repeat-sampled sweep from scratch.
_ARM_MEMO: dict = {}


@lru_cache(maxsize=1)
def _figures_cache() -> ResultCache | None:
    """Optional on-disk result cache for figure regeneration.

    Opt-in via ``REPRO_CACHE_DIR`` — arm-level entries make re-generating
    every figure a pure replay.  Off by default: cached reports are only
    valid while engine behaviour is unchanged, so a persistent cache is a
    tool for sweeping parameters, not for CI.
    """
    root = os.environ.get("REPRO_CACHE_DIR")
    return ResultCache(root) if root else None


def _seed_campaign(arm_specs, dataset: Dataset, model: str,
                   temperature: float) -> Campaign:
    """A shared-isolation campaign fanning one stateful arm per seed."""
    workers = 1
    executor = _FIGURES_EXECUTOR
    if executor == "process" and len(arm_specs) > 1:
        workers = min(len(arm_specs), os.cpu_count() or 1)
    return Campaign(arm_specs, dataset, model=model, temperature=temperature,
                    isolation="shared", executor=executor, workers=workers,
                    cache=_figures_cache())


def run_arm(kind: str, model: str, seeds=DEFAULT_SEEDS,
            dataset: Dataset | None = None, temperature: float = 0.5,
            **overrides) -> ArmSummary:
    """Repeat-sample one arm across seeds, one Campaign arm per seed.

    Each arm keeps the paper's stateful shared-isolation semantics (the
    numbers are bit-identical to the old serial ``evaluate_spec`` loop);
    with the process executor the per-seed sweeps run in parallel, repeated
    references to the same arm are served from the in-process memo, and an
    optional ``REPRO_CACHE_DIR`` result cache survives across processes.
    """
    spec = EngineSpec.coerce(kind)
    if "seed" in spec.factory_kwargs():
        raise ValueError(
            f"spec {spec} pins its own seed; run_arm derives one arm per "
            f"seed in {seeds}")
    dataset = dataset if dataset is not None else load_dataset()
    label = arm_label(spec, model)
    memo_key = (spec.to_string(), tuple(sorted(overrides.items())), model,
                tuple(seeds), temperature, dataset)
    cached = _ARM_MEMO.get(memo_key)
    if cached is not None:
        return cached
    # Overrides become spec params *before* the original params so an
    # explicitly-parameterised spec keeps precedence, matching the old
    # create_engine(spec, **overrides) merge order.
    extra = EngineSpec.make(spec.name, **overrides).params
    arm_specs = [EngineSpec(spec.name,
                            extra + spec.params + (("seed", str(seed)),))
                 for seed in seeds]
    result = _seed_campaign(arm_specs, dataset, model, temperature).run()
    runs = []
    for arm in result.arms:
        results = arm.results
        results.system = label  # per-seed arms all report as the base arm
        runs.append(results)
    summary = _summarize(label, runs)
    _ARM_MEMO[memo_key] = summary
    return summary


# ---------------------------------------------------------------------------
# Model-portfolio experiment — ensembles vs standalone profiles
#
# The Fig. 8/9 model-comparison story, run as one campaign axis: every
# capability profile as a standalone arm next to the three composite
# engines (portfolio/cascade/switch).  The headline shape this asserts
# (see benchmarks/ensemble_smoke.py, which writes BENCH_ensemble.json):
# the cascade beats every standalone model on pass rate while staying
# cheaper on the virtual clock than the best single model.

#: Standalone arms: one auto-registered profile arm per model.
ENSEMBLE_STANDALONE_ARMS = ("gpt-3.5", "claude-3.5", "gpt-4", "gpt-o1")

#: The composite arms, with their default member lists (three profiles).
ENSEMBLE_COMPOSITE_ARMS = ("portfolio", "cascade", "switch")


def ensemble_campaign(dataset: Dataset | None = None, *, seed: int = 3,
                      executor: str | None = None, workers: int | None = None,
                      cache: ResultCache | None = None,
                      arms=ENSEMBLE_STANDALONE_ARMS
                      + ENSEMBLE_COMPOSITE_ARMS) -> Campaign:
    """The model-portfolio campaign: per-case isolation (ensembles derive
    member seeds themselves), sharded across the process pool."""
    executor = executor if executor is not None else _FIGURES_EXECUTOR
    if workers is None:
        workers = (os.cpu_count() or 1) if executor != "serial" else 1
    dataset = dataset if dataset is not None else load_dataset()
    return Campaign(list(arms), dataset, seed=seed, executor=executor,
                    workers=workers, cache=cache)


@lru_cache(maxsize=1)
def ensemble_data(seeds=DEFAULT_SEEDS) -> dict[str, ArmSummary]:
    """Repeat-sampled summary per arm, standalone and composite alike."""
    per_arm: dict[str, list[SystemResults]] = {}
    for seed in seeds:
        result = ensemble_campaign(seed=seed, cache=_figures_cache()).run()
        for arm in result.arms:
            per_arm.setdefault(arm.label, []).append(arm.results)
    return {label: _summarize(label, runs)
            for label, runs in per_arm.items()}


def ensemble_best_standalone(data: dict[str, ArmSummary]) -> ArmSummary:
    """The best single model: highest repeat-sampled pass rate among the
    standalone profile arms (exec rate breaks ties)."""
    return max((data[arm] for arm in ENSEMBLE_STANDALONE_ARMS),
               key=lambda summary: (summary.pass_rate, summary.exec_rate))


# ---------------------------------------------------------------------------
# Fig. 7 — RQ1 flexibility: ten fast-thinking solutions for one case


@dataclass
class Fig7Group:
    group: int
    agents: list[str]
    rules: list[str]
    passed: bool
    acceptable: bool
    seconds: float
    used_knowledge_base: bool


def fig7_flexibility(seed: int = 3, case_name: str = "stackborrow_reborrow_1",
                     n_solutions: int = 10) -> list[Fig7Group]:
    """Generate 10 solutions for one semantic-modification UB and execute
    each independently, reporting agent order / verdicts / overhead."""
    from ..lang.parser import parse_program
    from ..lang.printer import print_program
    from ..llm.client import LLMClient, VirtualClock
    from ..llm.oracle import rank_candidate_rules
    from ..core.features import analyse
    from ..core.slow import SlowThinking
    from ..core.knowledge import KnowledgeBase
    from ..core.agents.reasoning import AbstractReasoningAgent
    from ..miri import detect_ub

    case = load_dataset().get(case_name)
    program = parse_program(case.source)
    report = detect_ub(case.source, collect=True)
    groups: list[Fig7Group] = []
    kb = KnowledgeBase.default()

    for index in range(n_solutions):
        clock = VirtualClock()
        client = LLMClient("gpt-4", 0.5, seed=seed * 1009 + index, clock=clock)
        features = analyse(client, program, report)
        use_kb = index % 2 == 1  # alternate KB usage across groups
        kb_hint = None
        if use_kb:
            reasoning = AbstractReasoningAgent(client, kb)
            kb_hint = reasoning.consult(program, report.errors).rules or None
        plans = rank_candidate_rules(client, features.extracted, program, 1,
                                     kb_hint=kb_hint,
                                     difficulty=case.difficulty,
                                     orchestrated=True)
        solutions = decompose(plans, guided_rules=set(kb_hint or []))
        slow = SlowThinking(client)
        outcome = slow.execute(solutions[0], program, report.error_count)
        acceptable = False
        if outcome.solved:
            acceptable = semantically_acceptable(
                print_program(outcome.final_program), case.fixed_source)
        groups.append(Fig7Group(
            group=index + 1,
            agents=[step.agent for step in solutions[0].steps],
            rules=solutions[0].rules(),
            passed=outcome.solved,
            acceptable=acceptable,
            seconds=clock.elapsed,
            used_knowledge_base=use_kb,
        ))
    return groups


# ---------------------------------------------------------------------------
# Fig. 8 / Fig. 9 — RQ2: pass and exec rates per category, seven arms

FIG8_ARMS = [
    ("gpt-3.5", "llm_only"),
    ("claude-3.5", "llm_only"),
    ("gpt-4", "llm_only"),
    ("gpt-3.5", "rustbrain"),
    ("claude-3.5", "rustbrain"),
    ("gpt-4", "rustbrain_nokb"),
    ("gpt-4", "rustbrain"),
]


@lru_cache(maxsize=1)
def fig8_fig9_data(seeds=DEFAULT_SEEDS) -> dict[str, ArmSummary]:
    return {
        (f"{model}+RustBrain(non knowledge)" if kind == "rustbrain_nokb"
         else f"{model}+RustBrain" if kind == "rustbrain" else model):
        run_arm(kind, model, seeds)
        for model, kind in FIG8_ARMS
    }


# ---------------------------------------------------------------------------
# Fig. 10 — RQ2: GPT-O1 comparison on the reduced category subset


@lru_cache(maxsize=1)
def fig10_data(seeds=DEFAULT_SEEDS) -> dict[str, ArmSummary]:
    subset = load_dataset().subset(FIG10_CATEGORIES)
    return {
        "GPT-4+RustBrain": run_arm("rustbrain", "gpt-4", seeds, subset),
        "GPT-O1+RustBrain": run_arm("rustbrain", "gpt-o1", seeds, subset),
    }


# ---------------------------------------------------------------------------
# Fig. 11 — RQ3: temperature sweep with confidence intervals

FIG11_TEMPERATURES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass
class TemperaturePoint:
    temperature: float
    pass_ci: RateCI
    exec_ci: RateCI


@lru_cache(maxsize=1)
def fig11_data(seeds=(3, 11, 23, 31)) -> list[TemperaturePoint]:
    # One campaign, one stateful arm per (temperature, seed) pair — the
    # whole 9x4 sweep fans out across the process pool at once instead of
    # grinding through 36 serial dataset sweeps.
    dataset = load_dataset()
    arm_specs = [EngineSpec.make("rustbrain", seed=seed,
                                 temperature=temperature)
                 for temperature in FIG11_TEMPERATURES for seed in seeds]
    result = _seed_campaign(arm_specs, dataset, model="gpt-4",
                            temperature=0.5).run()
    arms = iter(result.arms)  # completed in spec order
    points = []
    for temperature in FIG11_TEMPERATURES:
        passes = execs = total = 0
        for _seed in seeds:
            arm = next(arms)
            passes += sum(r.passed for r in arm.reports)
            execs += sum(r.acceptable for r in arm.reports)
            total += len(arm.reports)
        points.append(TemperaturePoint(
            temperature,
            wilson_interval(passes, total),
            wilson_interval(execs, total),
        ))
    return points


# ---------------------------------------------------------------------------
# Fig. 12 — RQ4: RustBrain vs RustAssistant per category


@lru_cache(maxsize=1)
def fig12_data(seeds=DEFAULT_SEEDS) -> dict[str, ArmSummary]:
    return {
        "GPT-4+RustBrain": run_arm("rustbrain", "gpt-4", seeds),
        "GPT-4+RustBrain(non knowledge)": run_arm("rustbrain_nokb", "gpt-4",
                                                  seeds),
        "Rustassistant": run_arm("rustassistant", "gpt-4", seeds),
    }


# ---------------------------------------------------------------------------
# Table I — RQ4: execution time vs human experts


@dataclass
class Table1Row:
    category: UbKind
    no_knowledge_seconds: float
    knowledge_seconds: float
    human_seconds: float

    @property
    def speedup(self) -> float:
        if self.no_knowledge_seconds <= 0:
            return 0.0
        return self.human_seconds / self.no_knowledge_seconds


@lru_cache(maxsize=1)
def table1_data(seeds=DEFAULT_SEEDS) -> list[Table1Row]:
    no_kb = run_arm("rustbrain_nokb", "gpt-4", seeds)
    with_kb = run_arm("rustbrain", "gpt-4", seeds)
    human = HumanExpert(seed=1)
    dataset = load_dataset()
    rows = []
    for category in PAPER_CATEGORIES:
        cases = dataset.by_category(category)
        human_secs = mean([
            human.repair(case.name, category, case.difficulty).seconds
            for case in cases
        ])
        rows.append(Table1Row(
            category=category,
            no_knowledge_seconds=no_kb.seconds_by_category.get(category, 0.0),
            knowledge_seconds=with_kb.seconds_by_category.get(category, 0.0),
            human_seconds=human_secs,
        ))
    return rows


def table1_average(rows: list[Table1Row]) -> Table1Row:
    return Table1Row(
        category=UbKind.ALLOC,  # placeholder; label "Average" when rendering
        no_knowledge_seconds=mean([r.no_knowledge_seconds for r in rows]),
        knowledge_seconds=mean([r.knowledge_seconds for r in rows]),
        human_seconds=mean([r.human_seconds for r in rows]),
    )


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)


@lru_cache(maxsize=1)
def ablation_rollback(seeds=DEFAULT_SEEDS) -> dict[str, ArmSummary]:
    return {
        "adaptive": run_arm("rustbrain", "gpt-4", seeds),
        "rollback_to_initial": run_arm("rustbrain_initial_rollback", "gpt-4",
                                       seeds),
        "no_rollback": run_arm("rustbrain_norollback", "gpt-4", seeds),
    }


@lru_cache(maxsize=1)
def ablation_pruning(seeds=DEFAULT_SEEDS) -> dict[str, ArmSummary]:
    return {
        "pruned_kb": run_arm("rustbrain", "gpt-4", seeds),
        "unpruned_kb": run_arm("rustbrain_nopruning", "gpt-4", seeds),
    }


@lru_cache(maxsize=1)
def ablation_feedback(seeds=DEFAULT_SEEDS) -> dict[str, ArmSummary]:
    return {
        "with_feedback": run_arm("rustbrain", "gpt-4", seeds),
        "no_feedback": run_arm("rustbrain_nofeedback", "gpt-4", seeds),
    }


@lru_cache(maxsize=1)
def ablation_solutions(seeds=DEFAULT_SEEDS) -> dict[str, ArmSummary]:
    return {
        "n=1": run_arm("rustbrain", "gpt-4", seeds, n_solutions=1),
        "n=3": run_arm("rustbrain", "gpt-4", seeds, n_solutions=3),
        "n=6": run_arm("rustbrain", "gpt-4", seeds, n_solutions=6),
        "n=10": run_arm("rustbrain", "gpt-4", seeds, n_solutions=10),
    }
