"""Statistics helpers — canonical implementations live in
:mod:`repro.engine.stats`; this module re-exports them so existing
bench-side imports keep working."""

from __future__ import annotations

from ..engine.stats import (RateCI, geometric_mean, mean, stdev,
                            wilson_interval)

__all__ = ["RateCI", "geometric_mean", "mean", "stdev", "wilson_interval"]
