"""Experiment runners shared by the benchmark suite (RQ1–RQ4).

``evaluate_system`` sweeps a repair system over the dataset and scores every
attempt with the external metrics the paper reports: *pass* (the repaired
program passes Miri) and *exec* (observable behaviour matches the
developer-repaired reference — §II-A's semantic-acceptability benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.llm_only import LLMOnlyConfig, LLMOnlyRepair
from ..baselines.rustassistant import RustAssistant, RustAssistantConfig
from ..core.agents.rollback import RollbackPolicy
from ..core.evaluate import semantically_acceptable
from ..core.pipeline import RustBrain, RustBrainConfig
from ..corpus.case import UbCase
from ..corpus.dataset import Dataset, load_dataset
from ..miri.errors import UbKind
from .stats import RateCI, mean, wilson_interval


@dataclass
class CaseResult:
    case: str
    category: UbKind
    passed: bool
    acceptable: bool
    seconds: float
    tokens: int
    llm_calls: int
    used_knowledge_base: bool
    used_feedback: bool
    hallucinations: int
    rollbacks: int
    solutions_tried: int


@dataclass
class SystemResults:
    system: str
    results: list[CaseResult] = field(default_factory=list)

    # -- aggregate metrics -------------------------------------------------

    def pass_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.passed for r in self.results) / len(self.results)

    def exec_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.acceptable for r in self.results) / len(self.results)

    def pass_ci(self) -> RateCI:
        return wilson_interval(sum(r.passed for r in self.results),
                               len(self.results))

    def exec_ci(self) -> RateCI:
        return wilson_interval(sum(r.acceptable for r in self.results),
                               len(self.results))

    def mean_seconds(self) -> float:
        return mean([r.seconds for r in self.results])

    def by_category(self) -> dict[UbKind, "SystemResults"]:
        grouped: dict[UbKind, SystemResults] = {}
        for result in self.results:
            grouped.setdefault(
                result.category, SystemResults(self.system)
            ).results.append(result)
        return grouped

    def category_pass_rates(self) -> dict[UbKind, float]:
        return {cat: grp.pass_rate() for cat, grp in self.by_category().items()}

    def category_exec_rates(self) -> dict[UbKind, float]:
        return {cat: grp.exec_rate() for cat, grp in self.by_category().items()}

    def category_mean_seconds(self) -> dict[UbKind, float]:
        return {cat: grp.mean_seconds()
                for cat, grp in self.by_category().items()}


# ---------------------------------------------------------------------------
# System factory


def make_system(kind: str, model: str = "gpt-4", seed: int = 0,
                temperature: float = 0.5, **overrides):
    """Build a repair system by arm name.

    ``kind`` ∈ {llm_only, rustbrain, rustbrain_nokb, rustbrain_nofeedback,
    rustassistant} plus rollback-policy variants for the ablations.
    """
    if kind == "llm_only":
        return LLMOnlyRepair(LLMOnlyConfig(model=model, seed=seed,
                                           temperature=temperature))
    if kind == "rustassistant":
        return RustAssistant(RustAssistantConfig(model=model, seed=seed,
                                                 temperature=temperature))
    config = RustBrainConfig(model=model, seed=seed, temperature=temperature)
    if kind == "rustbrain_nokb":
        config.use_knowledge_base = False
    elif kind == "rustbrain_nofeedback":
        config.use_feedback = False
    elif kind == "rustbrain_norollback":
        config.rollback = RollbackPolicy.NONE
    elif kind == "rustbrain_initial_rollback":
        config.rollback = RollbackPolicy.INITIAL
    elif kind == "rustbrain_nopruning":
        config.use_pruning = False
    elif kind != "rustbrain":
        raise ValueError(f"unknown system kind {kind!r}")
    for key, value in overrides.items():
        setattr(config, key, value)
    return RustBrain(config)


def evaluate_system(system, dataset: Dataset | None = None,
                    label: str = "system") -> SystemResults:
    """Run ``system.repair`` over every case; score pass/exec externally."""
    dataset = dataset if dataset is not None else load_dataset()
    results = SystemResults(label)
    for case in dataset:
        outcome = system.repair(case.source, case.difficulty)
        acceptable = bool(
            outcome.passed and outcome.repaired_source is not None
            and semantically_acceptable(outcome.repaired_source,
                                        case.fixed_source))
        results.results.append(CaseResult(
            case=case.name,
            category=case.category,
            passed=outcome.passed,
            acceptable=acceptable,
            seconds=outcome.seconds,
            tokens=outcome.tokens,
            llm_calls=outcome.llm_calls,
            used_knowledge_base=outcome.used_knowledge_base,
            used_feedback=outcome.used_feedback,
            hallucinations=outcome.hallucinations,
            rollbacks=outcome.rollbacks,
            solutions_tried=outcome.solutions_tried,
        ))
    return results


def evaluate_arm(kind: str, model: str = "gpt-4", seed: int = 0,
                 temperature: float = 0.5,
                 dataset: Dataset | None = None, **overrides) -> SystemResults:
    system = make_system(kind, model, seed, temperature, **overrides)
    label = f"{model}+{kind}" if kind != "llm_only" else model
    return evaluate_system(system, dataset, label)
