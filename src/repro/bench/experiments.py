"""Experiment runners shared by the benchmark suite (RQ1–RQ4).

This module is now a thin façade over :mod:`repro.engine` — the registry
resolves arms, :func:`repro.engine.run_cases` sweeps them, and
``CaseResult``/``SystemResults`` are re-exported from
:mod:`repro.engine.results` where they canonically live.

``make_system`` and ``evaluate_system`` are **deprecated shims** kept so the
seed benchmarks and any external callers run unchanged; new code should use
:func:`repro.engine.create_engine` and :class:`repro.engine.Campaign`.
"""

from __future__ import annotations

from ..corpus.dataset import Dataset, load_dataset
from ..engine.campaign import run_cases
from ..engine.registry import create_engine
from ..engine.results import CaseResult, SystemResults
from ..engine.spec import EngineSpec, arm_label

__all__ = [
    "CaseResult",
    "SystemResults",
    "arm_label",
    "evaluate_arm",
    "evaluate_spec",
    "evaluate_system",
    "make_system",
]


def evaluate_spec(spec: EngineSpec | str, *, model: str = "gpt-4",
                  seed: int = 0, temperature: float = 0.5,
                  dataset: Dataset | None = None, label: str | None = None,
                  overrides: dict | None = None) -> SystemResults:
    """Evaluate one engine spec with the paper's stateful semantics.

    One engine instance sweeps the dataset serially, so feedback memory and
    per-repair seeding accumulate across cases exactly as in the paper's
    experiments (parallel, per-case-seeded sweeps are the
    :class:`~repro.engine.Campaign` runner's job).
    """
    spec = EngineSpec.coerce(spec)
    if seed != 0 and "seed" in spec.factory_kwargs():
        # A pinned seed would silently override every per-seed repeat run,
        # collapsing the sample to zero variance — fail loudly instead.
        raise ValueError(
            f"spec {spec} pins its own seed; pass the seed either in the "
            f"spec or as the seed= argument, not both")
    engine = create_engine(spec, model=model, seed=seed,
                           temperature=temperature, **(overrides or {}))
    dataset = dataset if dataset is not None else load_dataset()
    return run_cases(engine, dataset, label or arm_label(spec, model))


def evaluate_arm(kind: str, model: str = "gpt-4", seed: int = 0,
                 temperature: float = 0.5,
                 dataset: Dataset | None = None, **overrides) -> SystemResults:
    return evaluate_spec(EngineSpec.coerce(kind), model=model, seed=seed,
                         temperature=temperature, dataset=dataset,
                         overrides=overrides)


# ---------------------------------------------------------------------------
# Deprecated shims (pre-engine API)


def make_system(kind: str, model: str = "gpt-4", seed: int = 0,
                temperature: float = 0.5, **overrides):
    """Deprecated: use :func:`repro.engine.create_engine`.

    ``kind`` is any registered engine name (``repro engines`` lists them);
    unknown names raise ``ValueError`` as before.
    """
    return create_engine(EngineSpec.coerce(kind), model=model, seed=seed,
                         temperature=temperature, **overrides)


def evaluate_system(system, dataset: Dataset | None = None,
                    label: str = "system") -> SystemResults:
    """Deprecated: use :class:`repro.engine.Campaign` or
    :func:`repro.engine.run_cases`.

    Runs ``system.repair`` serially over every case with the shared-instance
    legacy semantics; scoring is identical to the engine layer's.
    """
    dataset = dataset if dataset is not None else load_dataset()
    return run_cases(system, dataset, label)
