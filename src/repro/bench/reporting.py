"""ASCII rendering of the paper's tables and figures."""

from __future__ import annotations

from ..miri.errors import UbKind


def render_table(headers: list[str], rows: list[list[str]],
                 title: str = "") -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(series: dict[str, float], width: int = 40,
                title: str = "", unit: str = "%") -> str:
    lines = [title] if title else []
    peak = max(series.values()) if series else 1.0
    label_width = max((len(k) for k in series), default=0)
    for label, value in series.items():
        bar = "#" * max(1, round(width * value / peak)) if peak else ""
        shown = f"{100 * value:.1f}{unit}" if unit == "%" else f"{value:.1f}{unit}"
        lines.append(f"{label.ljust(label_width)} |{bar} {shown}")
    return "\n".join(lines)


def category_label(category: UbKind) -> str:
    return {
        UbKind.DANGLING_POINTER: "danglingpointer",
        UbKind.FUNC_CALL: "func.call",
        UbKind.FUNC_POINTER: "func.pointer",
        UbKind.STACK_BORROW: "stackborrow",
        UbKind.BOTH_BORROW: "bothborrow",
        UbKind.DATA_RACE: "datarace",
    }.get(category, category.value)
