"""Campaign runner: shard a dataset across workers, one arm at a time.

A :class:`Campaign` evaluates one or more engine specs over a
:class:`~repro.corpus.dataset.Dataset`.  The dataset is split into
contiguous shards which a ``concurrent.futures`` pool drains; every case
gets a **fresh engine instance with a per-case derived seed**, so the
outcome of a case depends only on ``(spec, model, campaign seed, case
index)`` — never on scheduling — and a pooled run is byte-identical to a
serial one at any worker count.

Three execution backends share that invariant (``executor=``):

* ``"serial"`` — in-process, no pool; the reference semantics.
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.  Case
  execution is pure-Python CPU-bound, so threads mostly help when observers
  or the cache do I/O; kept as the low-overhead default.
* ``"process"`` — a process pool over picklable shard tasks: real
  multi-core parallelism for the parse → interpret → repair pipeline.
  Workers return plain :class:`~repro.engine.types.RepairReport` lists;
  all telemetry is emitted in the parent in deterministic (submission)
  order.

Thread and process pools are *leased* from the shared
:data:`~repro.engine.pool.EXECUTOR_SERVICE` (see DESIGN.md, "Execution
resources"): repeated campaigns reuse one long-lived pool per
``(kind, workers)``, idle pools are reaped after a timeout, and the
service's core budget keeps nested campaign×ensemble parallelism from
oversubscribing the machine — all wall-clock-only, never bytes.

A :class:`~repro.engine.cache.ResultCache` (``cache=``/``cache_dir=``) is
consulted in the parent before any case is dispatched: hits are replayed
from disk (with ``on_cache`` telemetry), only misses reach the pool, and
fresh reports are written back — so a warm re-run of an identical campaign
performs zero engine case executions.

Progress surfaces through the structured observer events in
:mod:`repro.engine.telemetry`, and a finished run serializes to JSON
(``campaign.json``) for the ``BENCH_*`` trajectory.

The legacy stateful path — one shared engine walked serially over the
dataset, accumulating feedback memory across cases — lives on as
:func:`run_cases` and as ``isolation="shared"``.  A shared sweep is
order-dependent by design, so within an arm it always runs serially
(``workers > 1`` falls back with a warning); with ``executor="process"``
and several arms, whole arms run in parallel instead — each arm keeps its
exact stateful semantics while the pool stays saturated, which is how the
benchmark figures fan their per-seed repeat samples out.

Campaigns are resilient (see DESIGN.md, "Failure model & recovery"):

* A fault plan (``faults=`` or ``REPRO_FAULTS``,
  :mod:`repro.engine.faults`) is installed for the duration of ``run()``
  and travels to process workers as a spec string in the task arguments.
  A worker killed mid-shard breaks the pool; the campaign re-leases a
  replacement from the :data:`~repro.engine.pool.EXECUTOR_SERVICE` and
  re-dispatches the uncollected shards with deterministic backoff
  (``on_retry`` telemetry) — results stay byte-identical because every
  case derives its seed from ``(campaign seed, index)``, not from which
  worker ran it.
* A :class:`~repro.engine.journal.CampaignJournal` (``journal=``)
  durably appends every completed result, keyed by the existing cache
  keys; a killed campaign resumed with the same journal replays the
  journaled cases and re-executes only what is missing.
"""

from __future__ import annotations

import json
import threading
import warnings
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..corpus.dataset import Dataset, load_dataset
from . import faults as faults_mod
from .cache import (CACHE_EPOCH, ResultCache, _digest, arm_key, case_key,
                    fingerprint_case, fingerprint_dataset)
from .journal import CampaignJournal
from .pool import EXECUTOR_SERVICE, cancel_and_wait
from .registry import create_engine
from .results import SystemResults
from .retry import CAMPAIGN_RETRY, RETRY_EVENTS, RetryPolicy
from .spec import EngineSpec, arm_label
from .telemetry import (CacheQueried, CampaignObserver, CaseFinished,
                        CaseStarted, EngineFinished, EngineStarted,
                        MemberFinished, RetryAttempted, RoundFinished,
                        TelemetryLog)
from .types import RepairReport, RepairRequest, run_request

#: Multiplier decorrelating per-case seeds from neighbouring campaign seeds.
_CASE_SEED_STRIDE = 100_003

EXECUTORS = ("serial", "thread", "process")


def case_seed(campaign_seed: int, index: int) -> int:
    """The derived seed for case ``index`` — order- and worker-independent."""
    return campaign_seed * _CASE_SEED_STRIDE + index


def hoist_pinned_seed(spec: EngineSpec,
                      campaign_seed: int) -> tuple[int, EngineSpec]:
    """Hoist a spec-pinned ``seed`` into the arm's base seed.

    Per-case derivation must stay in effect — otherwise
    ``rustbrain?seed=7`` would run every case with literally seed 7,
    fully correlating the samples.  The pinned value replaces the
    campaign seed as the derivation base, and the param is stripped
    from the spec used to build engines (the original spec, label
    included, is what gets reported and what keys the cache).

    Shared by :class:`Campaign` and the repair service so the same
    ``(spec, seed, case index)`` always resolves to the same engine
    seeding regardless of which front door ran it.
    """
    kwargs = spec.factory_kwargs()
    if "seed" not in kwargs:
        return campaign_seed, spec
    stripped = EngineSpec(spec.name,
                          tuple((key, value) for key, value in spec.params
                                if key != "seed"))
    return kwargs["seed"], stripped


def run_cases(engine, dataset: Dataset, label: str) -> SystemResults:
    """Serial sweep of one *shared* engine instance over a dataset.

    This is the stateful legacy semantics (feedback memory and repair
    indices accumulate across cases) used by ``evaluate_system`` and the
    benchmark figures.  Campaigns use per-case instances instead.
    """
    results = SystemResults(label)
    for case in dataset:
        report = run_request(engine, RepairRequest.from_case(case),
                             engine_label=label)
        results.results.append(report.to_case_result())
    return results


# ---------------------------------------------------------------------------
# Picklable process-pool tasks.  Workers rebuild engines from spec strings
# (the registry re-imports lazily in spawned children) and return plain
# report lists; no locks, observers, or caches ever cross the boundary.


def _worker_faults(faults: str, key: str, attempt: int):
    """Install the task's fault plan in this worker and roll its fate.

    The plan arrives as a spec string *in the task arguments* (never via
    parent globals — workers are long-lived and fork-once), is installed
    for the duration of the task so LLM/cache hooks inside the worker see
    it, and decides up front whether this worker crashes or hangs.
    ``attempt`` is the parent's re-dispatch count: a shard that crashed
    the pool must not crash its replacement forever.

    Returns the previous override, for the caller's ``finally`` restore.
    """
    plan = faults_mod.FaultPlan.parse(faults)
    previous = faults_mod.install(plan)
    if plan.enabled:
        plan.crash(key, attempt)
        plan.hang(key, attempt)
    return previous


def _execute_case_batch(spec: str, label: str, model: str, temperature: float,
                        base_seed: int, items: list, faults: str = "",
                        attempt: int = 0) -> list[RepairReport]:
    """Run a shard of ``(index, case)`` pairs with per-case engines."""
    first = items[0][0] if items else 0
    previous = _worker_faults(faults, f"{label}|shard{first}", attempt)
    try:
        reports = []
        for index, case in items:
            engine = create_engine(spec, model=model,
                                   seed=case_seed(base_seed, index),
                                   temperature=temperature)
            reports.append(run_request(engine,
                                       RepairRequest.from_case(case, index),
                                       engine_label=label))
        return reports
    finally:
        faults_mod.install(previous)


def _execute_shared_arm(spec: str, label: str, model: str, temperature: float,
                        base_seed: int, cases: list, faults: str = "",
                        attempt: int = 0) -> list[RepairReport]:
    """Run one whole stateful arm serially (shared-isolation semantics)."""
    previous = _worker_faults(faults, f"{label}|arm", attempt)
    try:
        engine = create_engine(spec, model=model, seed=base_seed,
                               temperature=temperature)
        return [run_request(engine, RepairRequest.from_case(case, index),
                            engine_label=label)
                for index, case in enumerate(cases)]
    finally:
        faults_mod.install(previous)


@dataclass
class ArmRun:
    """One engine spec's sweep within a campaign."""

    spec: EngineSpec
    label: str
    reports: list[RepairReport] = field(default_factory=list)

    @property
    def results(self) -> SystemResults:
        """Aggregate view over ``reports`` (the single source of truth)."""
        aggregated = SystemResults(self.label)
        aggregated.results.extend(report.to_case_result()
                                  for report in self.reports)
        return aggregated

    def to_dict(self) -> dict:
        results = self.results
        return {
            "spec": self.spec.to_string(),
            "label": self.label,
            "summary": {
                "cases": len(results.results),
                "pass_rate": results.pass_rate(),
                "exec_rate": results.exec_rate(),
                "mean_seconds": results.mean_seconds(),
            },
            "cases": [report.to_dict() for report in self.reports],
        }


@dataclass
class CampaignResult:
    config: dict
    arms: list[ArmRun]
    telemetry: TelemetryLog

    def by_label(self) -> dict[str, SystemResults]:
        return {arm.label: arm.results for arm in self.arms}

    def to_dict(self) -> dict:
        return {
            "schema": "repro.campaign/4",
            "config": dict(self.config),
            "arms": [arm.to_dict() for arm in self.arms],
            "telemetry": self.telemetry.to_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path) -> None:
        import pathlib
        pathlib.Path(path).write_text(self.to_json() + "\n",
                                      encoding="utf-8")


@dataclass
class _ShardPlan:
    """One shard after the parent-side cache pass: what is already known
    (``hits``) and what still needs an engine (``misses``)."""

    shard: list                      # [(index, case), ...] in dataset order
    hits: dict                       # index -> cached RepairReport
    misses: list                     # [(index, case), ...] needing execution
    keys: dict                       # index -> cache key (when caching)


class Campaign:
    """Sweep engine arms over a dataset with a sharded worker pool.

    ``isolation`` picks the execution semantics per arm:

    * ``"per_case"`` (default) — a fresh engine per case with a derived
      seed; order- and worker-count-invariant, parallelises freely.
    * ``"shared"`` — one engine instance walks the dataset serially, so
      cross-case state (RustBrain's self-learning feedback memory)
      accumulates exactly as in the paper's experiments.  A stateful sweep
      is order-dependent by design: within an arm it always runs serially.
      With ``executor="process"`` and more than one arm, whole arms are
      dispatched to the pool instead; otherwise ``workers > 1`` falls back
      to serial with a :class:`RuntimeWarning` rather than silently
      changing semantics.
    """

    def __init__(self, engines, dataset: Dataset | None = None, *,
                 model: str = "gpt-4", seed: int = 0,
                 temperature: float = 0.5, workers: int = 1,
                 shard_size: int = 8, isolation: str = "per_case",
                 executor: str = "thread",
                 cache: ResultCache | None = None,
                 cache_dir=None, observers=(),
                 faults=None, retry: RetryPolicy | None = None,
                 journal: CampaignJournal | str | None = None):
        # A lone spec (string or EngineSpec) is a one-arm campaign, not an
        # iterable of one-character engine names.
        if isinstance(engines, (str, EngineSpec)):
            engines = [engines]
        self.specs = [EngineSpec.coerce(spec) for spec in engines]
        if not self.specs:
            raise ValueError("a campaign needs at least one engine spec")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if isolation not in ("per_case", "shared"):
            raise ValueError(
                f"isolation must be 'per_case' or 'shared', got {isolation!r}")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, "
                             f"got {executor!r}")
        if executor == "serial" and workers > 1:
            raise ValueError("the serial executor runs in-process; "
                             "use executor='thread' or 'process' with "
                             "workers > 1")
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either cache= or cache_dir=, not both")
        if isolation == "shared" and workers > 1 \
                and not (executor == "process" and len(self.specs) > 1):
            warnings.warn(
                "shared isolation is a stateful serial sweep; forcing "
                "workers=1 (use executor='process' with several arms to "
                "parallelise across arms instead)",
                RuntimeWarning, stacklevel=2)
            workers = 1
        # Fail fast: resolve every arm now (unknown engines, bad config
        # keys) instead of after earlier arms have burned minutes of work.
        for spec in self.specs:
            create_engine(spec, model=model, seed=seed,
                          temperature=temperature)
        self.dataset = dataset if dataset is not None else load_dataset()
        self.model = model
        # Arms are keyed by label everywhere downstream (by_label(), the
        # bench aggregations): two arms sharing one would silently merge
        # or drop results, so reject the collision up front.  (The plain
        # llm_only arm and a profile arm of the campaign model collide by
        # the paper's labelling convention — they are the same engine.)
        labels = [arm_label(spec, model) for spec in self.specs]
        duplicates = sorted({label for label in labels
                             if labels.count(label) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate arm label(s) {', '.join(duplicates)}: every "
                f"arm in a campaign needs a distinct (spec, model) identity")
        self.seed = seed
        self.temperature = temperature
        self.workers = workers
        self.shard_size = shard_size
        self.isolation = isolation
        self.executor = executor
        self.cache = ResultCache(cache_dir) if cache_dir is not None else cache
        #: The resolved fault plan (``faults=`` wins; ``None`` captures the
        #: ambient plan — an installed override or ``REPRO_FAULTS``; ``""``
        #: explicitly disables injection regardless of the environment).
        self.fault_plan = faults_mod.FaultPlan.coerce(faults)
        self.retry = retry if retry is not None else CAMPAIGN_RETRY
        self.journal = CampaignJournal(journal) \
            if isinstance(journal, (str, bytes)) or hasattr(journal, "__fspath__") \
            else journal
        self._user_observers: list[CampaignObserver] = list(observers)
        #: The latest run's event log; replaced at each ``run()`` so repeated
        #: runs don't accumulate each other's events.
        self.telemetry = TelemetryLog()
        self.observers: list[CampaignObserver] = [self.telemetry,
                                                  *self._user_observers]
        self._lock = threading.Lock()

    # -- observer fan-out --------------------------------------------------

    def _emit(self, hook: str, event) -> None:
        with self._lock:
            for observer in self.observers:
                getattr(observer, hook)(event)

    # -- execution ---------------------------------------------------------

    def label_for(self, spec: EngineSpec) -> str:
        return arm_label(spec, self.model)

    @property
    def _pooled(self) -> bool:
        return self.workers > 1 and self.executor != "serial"

    def _arm_seeding(self, spec: EngineSpec) -> tuple[int, EngineSpec]:
        """See :func:`hoist_pinned_seed` (the arm base is the campaign
        seed unless the spec pins its own)."""
        return hoist_pinned_seed(spec, self.seed)

    def _run_case(self, spec: EngineSpec, label: str, base_seed: int,
                  index: int, case, total: int, engine=None) -> RepairReport:
        self._emit("on_case_start",
                   CaseStarted(engine=label, case=case.name, index=index,
                               total=total))
        # In-process executions honour the plan's hang site only: a crash
        # here would take down the campaign itself, not a worker.
        if self.fault_plan.enabled:
            self.fault_plan.hang(f"{label}|case{index}")
        if engine is None:
            engine = create_engine(spec, model=self.model,
                                   seed=case_seed(base_seed, index),
                                   temperature=self.temperature)
        report = run_request(engine, RepairRequest.from_case(case, index),
                             engine_label=label)
        self._emit_case_done(label, case.name, index, total, report)
        return report

    def _run_shard(self, spec: EngineSpec, label: str, base_seed: int,
                   shard, total: int) -> list[RepairReport]:
        # Per-case engines only: shared (stateful) sweeps never go through
        # shards — they run in _run_shared_arm, serially, by construction.
        return [self._run_case(spec, label, base_seed, index, case, total)
                for index, case in shard]

    def _emit_case_done(self, label: str, case_name: str, index: int,
                        total: int, report: RepairReport) -> None:
        # Ensemble arms: one event per consulted member, in consultation
        # order.  The summaries ride inside the report, so live, pooled,
        # and cache-replayed cases all emit the identical stream.
        for member in report.members:
            self._emit("on_member_done", MemberFinished(
                engine=label, case=case_name, index=index,
                member=member["member"], model=member["model"],
                member_index=member["index"], passed=member["passed"],
                seconds=member["seconds"],
                wave=member.get("wave", 0)))
        self._emit("on_case_done",
                   CaseFinished(engine=label, case=case_name, index=index,
                                total=total, passed=report.passed,
                                acceptable=report.acceptable,
                                seconds=report.seconds))

    def _replay_case(self, label: str, case, index: int, total: int,
                     report: RepairReport) -> None:
        """Emit start/done events for a case served from cache or a pool."""
        self._emit("on_case_start",
                   CaseStarted(engine=label, case=case.name, index=index,
                               total=total))
        self._emit_case_done(label, case.name, index, total, report)

    # -- cache pass --------------------------------------------------------

    def _plan_shards(self, spec: EngineSpec, label: str,
                     base_seed: int, shards) -> list[_ShardPlan]:
        """Parent-side cache/journal consult: split shards into hits/misses.

        ``on_cache`` telemetry fires here, in dataset order, identically
        for every executor backend.  The journal is consulted *behind*
        the cache and emits no telemetry of its own: a journal replay
        must leave the event stream exactly as the original (cacheless)
        run produced it, or a resumed ``campaign.json`` would differ.
        """
        spec_str = spec.to_string()
        plans = []
        for shard in shards:
            hits: dict = {}
            misses: list = []
            keys: dict = {}
            for index, case in shard:
                if self.cache is None and self.journal is None:
                    misses.append((index, case))
                    continue
                key = case_key(spec_str, self.model, self.temperature,
                               case_seed(base_seed, index),
                               fingerprint_case(case.name, case.source,
                                                case.fixed_source,
                                                case.difficulty,
                                                case.category))
                keys[index] = key
                cached = None
                if self.cache is not None:
                    cached = self.cache.get(key)
                    self._emit("on_cache",
                               CacheQueried(engine=label, case=case.name,
                                            index=index,
                                            hit=cached is not None, key=key))
                if cached is not None:
                    hits[index] = cached[0]
                    self._journal_record(key, [cached[0]], kind="case",
                                         arm=label, index=index)
                    continue
                journaled = self.journal.get(key) \
                    if self.journal is not None else None
                if journaled is not None:
                    hits[index] = journaled[0]
                else:
                    misses.append((index, case))
            plans.append(_ShardPlan(shard=list(shard), hits=hits,
                                    misses=misses, keys=keys))
        return plans

    def _journal_record(self, key: str | None, reports, *, kind: str,
                        arm: str, index: int | None = None) -> None:
        """Durably journal one completed result (no-op without a journal;
        duplicate keys — replays, cache hits already journaled by the
        interrupted run — are ignored by the journal itself)."""
        if self.journal is not None and key is not None:
            self.journal.append(key, reports, kind=kind, arm=arm,
                                index=index)

    def _merge_shard(self, label: str, total: int, plan: _ShardPlan,
                     miss_reports: list[RepairReport],
                     replay_misses: bool) -> list[RepairReport]:
        """Stitch cached hits and fresh reports back into dataset order,
        emitting events for anything that did not run through
        :meth:`_run_case` and writing misses back to the cache."""
        fresh = {index: report
                 for (index, _case), report in zip(plan.misses, miss_reports)}
        merged = []
        for index, case in plan.shard:
            if index in plan.hits:
                report = plan.hits[index]
                self._replay_case(label, case, index, total, report)
            else:
                report = fresh[index]
                if replay_misses:
                    self._replay_case(label, case, index, total, report)
                if self.cache is not None:
                    self.cache.put(plan.keys[index], [report])
                self._journal_record(plan.keys.get(index), [report],
                                     kind="case", arm=label, index=index)
            merged.append(report)
        return merged

    # -- per-arm execution -------------------------------------------------

    def _run_arm(self, spec: EngineSpec) -> ArmRun:
        label = self.label_for(spec)
        base_seed, run_spec = self._arm_seeding(spec)
        cases = list(self.dataset)
        total = len(cases)
        self._emit("on_engine_start",
                   EngineStarted(engine=label, cases=total))
        if self.isolation == "shared":
            reports = self._run_shared_arm(spec, run_spec, label, base_seed,
                                           cases)
        else:
            reports = self._run_per_case_arm(spec, run_spec, label, base_seed,
                                             cases)
        self._emit_engine_done(label, reports)
        return ArmRun(spec=spec, label=label, reports=reports)

    def _emit_engine_done(self, label: str,
                          reports: list[RepairReport]) -> None:
        self._emit("on_engine_done", EngineFinished(
            engine=label, cases=len(reports),
            passed=sum(r.passed for r in reports),
            acceptable=sum(r.acceptable for r in reports),
            virtual_seconds=sum(r.seconds for r in reports)))

    def _shards(self, cases) -> list[list]:
        indexed = list(enumerate(cases))
        return [indexed[start:start + self.shard_size]
                for start in range(0, len(cases), self.shard_size)]

    def _run_per_case_arm(self, spec: EngineSpec, run_spec: EngineSpec,
                          label: str, base_seed: int,
                          cases: list) -> list[RepairReport]:
        total = len(cases)
        shards = self._shards(cases)
        plans = self._plan_shards(spec, label, base_seed, shards)
        rounds = len(plans)

        reports: list[RepairReport] = []
        completed = passed = 0

        def collect(round_index: int, plan: _ShardPlan,
                    miss_reports: list[RepairReport],
                    replay_misses: bool) -> None:
            nonlocal completed, passed
            merged = self._merge_shard(label, total, plan, miss_reports,
                                       replay_misses)
            reports.extend(merged)
            completed += len(merged)
            passed += sum(r.passed for r in merged)
            self._emit_round(label, round_index, rounds, completed, total,
                            passed)

        if not self._pooled:
            for round_index, plan in enumerate(plans):
                miss_reports = self._run_shard(run_spec, label, base_seed,
                                               plan.misses, total)
                collect(round_index, plan, miss_reports, replay_misses=False)
        elif self.executor == "thread":
            # Pools come from the shared ExecutorService: leased for the
            # arm, reused by the next one, reaped only after idling out.
            with EXECUTOR_SERVICE.lease("thread", self.workers) as pool:
                futures = [pool.submit(self._run_shard, run_spec, label,
                                       base_seed, plan.misses, total)
                           for plan in plans]
                # Collect in submission order: reports stay dataset-ordered
                # and round events fire deterministically even though shards
                # complete in any order.  The pool is shared, so an error
                # must not leave orphan shards running behind the raise.
                try:
                    for round_index, (future, plan) in enumerate(
                            zip(futures, plans)):
                        collect(round_index, plan, future.result(),
                                replay_misses=False)
                except BaseException:
                    cancel_and_wait(futures)
                    raise
        else:
            spec_str = run_spec.to_string()
            faults_str = self.fault_plan.to_string()
            # A worker crash breaks the whole pool; the service hands out
            # a replacement on the next lease, and only the *uncollected*
            # shards are re-dispatched (collection is in submission order,
            # so the collected prefix is exactly what is already merged).
            # Re-execution is safe: shards are pure functions of their
            # arguments, so a shard that completed but was never collected
            # recomputes byte-identically.
            position = 0
            attempt = 0
            while position < rounds:
                remaining = plans[position:]
                try:
                    with EXECUTOR_SERVICE.lease("process",
                                                self.workers) as pool:
                        futures = [pool.submit(
                            _execute_case_batch, spec_str, label,
                            self.model, self.temperature, base_seed,
                            plan.misses, faults_str, attempt)
                            for plan in remaining]
                        try:
                            for future, plan in zip(futures, remaining):
                                collect(position, plan, future.result(),
                                        replay_misses=True)
                                position += 1
                        except BaseException:
                            cancel_and_wait(futures)
                            raise
                except BrokenProcessPool as exc:
                    attempt += 1
                    self._redispatch_backoff(label, position, attempt, exc)
        return reports

    def _redispatch_backoff(self, label: str, position: int, attempt: int,
                            exc: BaseException) -> None:
        """Between shard re-dispatches: exhaust the budget or back off.

        Emits the ``on_retry`` event through the process-wide notifier —
        :meth:`run` keeps a subscription open, so the event lands in this
        campaign's telemetry alongside LLM-level retries.
        """
        if attempt >= self.retry.attempts:
            raise exc
        delay = self.retry.delay_for(attempt - 1, key=label)
        RETRY_EVENTS.emit(RetryAttempted(
            site="worker", key=f"{label}|round{position}", attempt=attempt,
            max_attempts=self.retry.attempts, delay_seconds=delay,
            error=f"{type(exc).__name__}: {exc}"))
        self.retry.sleep(delay)

    def _run_shared_arm(self, spec: EngineSpec, run_spec: EngineSpec,
                        label: str, base_seed: int,
                        cases: list) -> list[RepairReport]:
        total = len(cases)
        key = None
        if self.cache is not None or self.journal is not None:
            key = arm_key(spec.to_string(), self.model, self.temperature,
                          base_seed, fingerprint_dataset(cases))
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None and len(cached) == total:
                self._journal_record(key, cached, kind="arm", arm=label)
                return self._replay_shared_arm(label, cases, cached, key,
                                               hit=True)
        if self.journal is not None:
            journaled = self.journal.get(key)
            if journaled is not None and len(journaled) == total:
                return self._replay_shared_arm(label, cases, journaled, key,
                                               hit=False)
        shared_engine = create_engine(run_spec, model=self.model,
                                      seed=base_seed,
                                      temperature=self.temperature)
        reports: list[RepairReport] = []
        completed = passed = 0
        shards = self._shards(cases)
        for round_index, shard in enumerate(shards):
            shard_reports = []
            for index, case in shard:
                if self.cache is not None:
                    self._emit("on_cache",
                               CacheQueried(engine=label, case=case.name,
                                            index=index, hit=False, key=key))
                shard_reports.append(self._run_case(
                    run_spec, label, base_seed, index, case, total,
                    shared_engine))
            reports.extend(shard_reports)
            completed += len(shard_reports)
            passed += sum(r.passed for r in shard_reports)
            self._emit_round(label, round_index, len(shards), completed,
                            total, passed)
        if self.cache is not None:
            self.cache.put(key, reports)
        self._journal_record(key, reports, kind="arm", arm=label)
        return reports

    def _replay_shared_arm(self, label: str, cases: list,
                           reports: list[RepairReport], key: str | None,
                           hit: bool) -> list[RepairReport]:
        """Emit the full event stream for an arm whose reports came from
        the cache or a pooled worker — identical counts to a live run."""
        total = len(cases)
        shards = self._shards(cases)
        completed = passed = 0
        position = 0
        for round_index, shard in enumerate(shards):
            for index, case in shard:
                # A journal replay passes a key but runs cacheless: no
                # on_cache events, exactly like the original live run.
                if key is not None and self.cache is not None:
                    self._emit("on_cache",
                               CacheQueried(engine=label, case=case.name,
                                            index=index, hit=hit, key=key))
                report = reports[position]
                self._replay_case(label, case, index, total, report)
                position += 1
                completed += 1
                passed += report.passed
            self._emit_round(label, round_index, len(shards), completed,
                            total, passed)
        return reports

    # -- arm-level pooling (shared isolation, process executor) ------------

    def _run_arms_pooled(self) -> list[ArmRun]:
        """Dispatch whole stateful arms to a process pool.

        Each arm keeps exact shared-isolation semantics (one engine, serial
        over the dataset); the pool parallelises *across* arms, which is
        what lets per-seed repeat sampling saturate every core.  Events are
        emitted arm-by-arm in spec order as results are collected.
        """
        cases = list(self.dataset)
        dataset_fp = fingerprint_dataset(cases) \
            if self.cache is not None or self.journal is not None else None
        # (spec, run_spec, label, base_seed, key, ready reports, source)
        # where source is "cache", "journal", or None (needs execution).
        plans = []
        for spec in self.specs:
            label = self.label_for(spec)
            base_seed, run_spec = self._arm_seeding(spec)
            key = ready = source = None
            if dataset_fp is not None:
                key = arm_key(spec.to_string(), self.model, self.temperature,
                              base_seed, dataset_fp)
            if self.cache is not None:
                ready = self.cache.get(key)
                if ready is not None and len(ready) == len(cases):
                    source = "cache"
                else:
                    ready = None
            if ready is None and self.journal is not None:
                ready = self.journal.get(key)
                if ready is not None and len(ready) == len(cases):
                    source = "journal"
                else:
                    ready = None
            plans.append((spec, run_spec, label, base_seed, key, ready,
                          source))

        arms: list[ArmRun] = []

        def collect(plan, futures) -> None:
            spec, _run_spec, label, _base_seed, key, ready, source = plan
            self._emit("on_engine_start",
                       EngineStarted(engine=label, cases=len(cases)))
            if source == "cache":
                self._journal_record(key, ready, kind="arm", arm=label)
                reports = self._replay_shared_arm(label, cases, ready,
                                                  key, hit=True)
            elif source == "journal":
                reports = self._replay_shared_arm(label, cases, ready,
                                                  key, hit=False)
            else:
                reports = futures[id(plan)].result()
                self._replay_shared_arm(label, cases, reports, key,
                                        hit=False)
                if self.cache is not None:
                    self.cache.put(key, reports)
                self._journal_record(key, reports, kind="arm", arm=label)
            self._emit_engine_done(label, reports)
            arms.append(ArmRun(spec=spec, label=label, reports=reports))

        faults_str = self.fault_plan.to_string()
        position = 0
        attempt = 0
        while position < len(plans):
            pending_live = [plan for plan in plans[position:]
                            if plan[6] is None]
            if not pending_live:
                # Fully warm tail (cache or journal): every remaining arm
                # replays from disk, so leasing a pool would do nothing.
                for plan in plans[position:]:
                    collect(plan, {})
                    position += 1
                break
            # Keyed by the campaign's worker count, NOT min(workers, live):
            # a live-count-dependent key would accumulate one long-lived
            # pool per distinct cache-miss count across repeated sweeps.
            # Excess workers simply idle for this run.  A BrokenProcessPool
            # (worker crash) re-leases and re-dispatches the uncollected
            # live arms, exactly like the per-case shard path.
            try:
                with EXECUTOR_SERVICE.lease("process", self.workers) as pool:
                    futures = {id(plan): pool.submit(
                        _execute_shared_arm, plan[1].to_string(), plan[2],
                        self.model, self.temperature, plan[3], cases,
                        faults_str, attempt)
                        for plan in pending_live}
                    try:
                        while position < len(plans):
                            collect(plans[position], futures)
                            position += 1
                    except BaseException:
                        cancel_and_wait(futures.values())
                        raise
            except BrokenProcessPool as exc:
                attempt += 1
                self._redispatch_backoff("arms", position, attempt, exc)
        return arms

    def _emit_round(self, label: str, round_index: int, rounds: int,
                    completed: int, total: int, passed: int) -> None:
        # Running counters from the caller — no O(rounds * cases) rescans.
        self._emit("on_round", RoundFinished(
            engine=label, round_index=round_index, rounds=rounds,
            completed=completed, total=total, passed_so_far=passed))

    def _journal_fingerprint(self) -> str:
        """Digest of everything that determines case outcomes — so a
        journal can refuse to resume a *different* experiment — while
        leaving parallelism (workers, shard size, executor) free to
        change between the interrupted run and the resume."""
        return _digest(
            "journal", str(CACHE_EPOCH), self.model, str(self.seed),
            f"{self.temperature:.6g}", self.isolation,
            fingerprint_dataset(list(self.dataset)),
            *sorted(spec.to_string() for spec in self.specs))

    def run(self) -> CampaignResult:
        self.telemetry = TelemetryLog()
        self.observers = [self.telemetry, *self._user_observers]
        if self.journal is not None:
            self.journal.open(self._journal_fingerprint())
        # Scope the campaign's fault plan process-wide so in-process
        # hooks (LLM client, cache) see it, and bridge every retry —
        # LLM-level, shard re-dispatch, wherever — into this run's
        # telemetry as on_retry events.
        previous_plan = faults_mod.install(self.fault_plan)
        try:
            with RETRY_EVENTS.subscribed(
                    lambda event: self._emit("on_retry", event)):
                if self.isolation == "shared" and self._pooled \
                        and self.executor == "process" \
                        and len(self.specs) > 1:
                    arms = self._run_arms_pooled()
                else:
                    arms = [self._run_arm(spec) for spec in self.specs]
        finally:
            faults_mod.install(previous_plan)
        config = {
            "engines": [spec.to_string() for spec in self.specs],
            "model": self.model,
            "seed": self.seed,
            "temperature": self.temperature,
            "workers": self.workers,
            "shard_size": self.shard_size,
            "isolation": self.isolation,
            "executor": self.executor,
            "cache": self.cache is not None,
            "cases": len(self.dataset),
        }
        return CampaignResult(config=config, arms=arms,
                              telemetry=self.telemetry)
