"""Campaign runner: shard a dataset across workers, one arm at a time.

A :class:`Campaign` evaluates one or more engine specs over a
:class:`~repro.corpus.dataset.Dataset`.  The dataset is split into
contiguous shards which a ``concurrent.futures`` thread pool drains; every
case gets a **fresh engine instance with a per-case derived seed**, so the
outcome of a case depends only on ``(spec, model, campaign seed, case
index)`` — never on scheduling — and a 4-worker run is byte-identical to a
serial one.  Progress surfaces through the structured observer events in
:mod:`repro.engine.telemetry`, and a finished run serializes to JSON
(``campaign.json``) for the ``BENCH_*`` trajectory.

The legacy stateful path — one shared engine walked serially over the
dataset, accumulating feedback memory across cases — lives on as
:func:`run_cases`; ``repro.bench.experiments.evaluate_system`` delegates to
it, which keeps every seed benchmark bit-for-bit unchanged.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..corpus.dataset import Dataset, load_dataset
from .registry import create_engine
from .results import SystemResults
from .spec import EngineSpec, arm_label
from .telemetry import (CampaignObserver, CaseFinished, CaseStarted,
                        EngineFinished, EngineStarted, RoundFinished,
                        TelemetryLog)
from .types import RepairReport, RepairRequest, run_request

#: Multiplier decorrelating per-case seeds from neighbouring campaign seeds.
_CASE_SEED_STRIDE = 100_003


def case_seed(campaign_seed: int, index: int) -> int:
    """The derived seed for case ``index`` — order- and worker-independent."""
    return campaign_seed * _CASE_SEED_STRIDE + index


def run_cases(engine, dataset: Dataset, label: str) -> SystemResults:
    """Serial sweep of one *shared* engine instance over a dataset.

    This is the stateful legacy semantics (feedback memory and repair
    indices accumulate across cases) used by ``evaluate_system`` and the
    benchmark figures.  Campaigns use per-case instances instead.
    """
    results = SystemResults(label)
    for case in dataset:
        report = run_request(engine, RepairRequest.from_case(case),
                             engine_label=label)
        results.results.append(report.to_case_result())
    return results


@dataclass
class ArmRun:
    """One engine spec's sweep within a campaign."""

    spec: EngineSpec
    label: str
    reports: list[RepairReport] = field(default_factory=list)

    @property
    def results(self) -> SystemResults:
        """Aggregate view over ``reports`` (the single source of truth)."""
        aggregated = SystemResults(self.label)
        aggregated.results.extend(report.to_case_result()
                                  for report in self.reports)
        return aggregated

    def to_dict(self) -> dict:
        results = self.results
        return {
            "spec": self.spec.to_string(),
            "label": self.label,
            "summary": {
                "cases": len(results.results),
                "pass_rate": results.pass_rate(),
                "exec_rate": results.exec_rate(),
                "mean_seconds": results.mean_seconds(),
            },
            "cases": [report.to_dict() for report in self.reports],
        }


@dataclass
class CampaignResult:
    config: dict
    arms: list[ArmRun]
    telemetry: TelemetryLog

    def by_label(self) -> dict[str, SystemResults]:
        return {arm.label: arm.results for arm in self.arms}

    def to_dict(self) -> dict:
        return {
            "schema": "repro.campaign/1",
            "config": dict(self.config),
            "arms": [arm.to_dict() for arm in self.arms],
            "telemetry": self.telemetry.to_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path) -> None:
        import pathlib
        pathlib.Path(path).write_text(self.to_json() + "\n",
                                      encoding="utf-8")


class Campaign:
    """Sweep engine arms over a dataset with a sharded worker pool.

    ``isolation`` picks the execution semantics per arm:

    * ``"per_case"`` (default) — a fresh engine per case with a derived
      seed; order- and worker-count-invariant, parallelises freely.
    * ``"shared"`` — one engine instance walks the dataset serially, so
      cross-case state (RustBrain's self-learning feedback memory)
      accumulates exactly as in the paper's experiments.  Requires
      ``workers=1``: a stateful sweep is order-dependent by design.
    """

    def __init__(self, engines, dataset: Dataset | None = None, *,
                 model: str = "gpt-4", seed: int = 0,
                 temperature: float = 0.5, workers: int = 1,
                 shard_size: int = 8, isolation: str = "per_case",
                 observers=()):
        # A lone spec (string or EngineSpec) is a one-arm campaign, not an
        # iterable of one-character engine names.
        if isinstance(engines, (str, EngineSpec)):
            engines = [engines]
        self.specs = [EngineSpec.coerce(spec) for spec in engines]
        if not self.specs:
            raise ValueError("a campaign needs at least one engine spec")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if isolation not in ("per_case", "shared"):
            raise ValueError(
                f"isolation must be 'per_case' or 'shared', got {isolation!r}")
        if isolation == "shared" and workers != 1:
            raise ValueError("shared isolation is a stateful serial sweep; "
                             "it requires workers=1")
        # Fail fast: resolve every arm now (unknown engines, bad config
        # keys) instead of after earlier arms have burned minutes of work.
        for spec in self.specs:
            create_engine(spec, model=model, seed=seed,
                          temperature=temperature)
        self.dataset = dataset if dataset is not None else load_dataset()
        self.model = model
        self.seed = seed
        self.temperature = temperature
        self.workers = workers
        self.shard_size = shard_size
        self.isolation = isolation
        self._user_observers: list[CampaignObserver] = list(observers)
        #: The latest run's event log; replaced at each ``run()`` so repeated
        #: runs don't accumulate each other's events.
        self.telemetry = TelemetryLog()
        self.observers: list[CampaignObserver] = [self.telemetry,
                                                  *self._user_observers]
        self._lock = threading.Lock()

    # -- observer fan-out --------------------------------------------------

    def _emit(self, hook: str, event) -> None:
        with self._lock:
            for observer in self.observers:
                getattr(observer, hook)(event)

    # -- execution ---------------------------------------------------------

    def label_for(self, spec: EngineSpec) -> str:
        return arm_label(spec, self.model)

    def _arm_seeding(self, spec: EngineSpec) -> tuple[int, EngineSpec]:
        """Hoist a spec-pinned ``seed`` into the arm's base seed.

        Per-case derivation must stay in effect — otherwise
        ``rustbrain?seed=7`` would run every case with literally seed 7,
        fully correlating the samples.  The pinned value replaces the
        campaign seed as the derivation base, and the param is stripped
        from the spec used to build engines (the original spec, label
        included, is what gets reported).
        """
        kwargs = spec.factory_kwargs()
        if "seed" not in kwargs:
            return self.seed, spec
        stripped = EngineSpec(spec.name,
                              tuple((key, value) for key, value in spec.params
                                    if key != "seed"))
        return kwargs["seed"], stripped

    def _run_case(self, spec: EngineSpec, label: str, base_seed: int,
                  index: int, case, total: int, engine=None) -> RepairReport:
        self._emit("on_case_start",
                   CaseStarted(engine=label, case=case.name, index=index,
                               total=total))
        if engine is None:
            engine = create_engine(spec, model=self.model,
                                   seed=case_seed(base_seed, index),
                                   temperature=self.temperature)
        report = run_request(engine, RepairRequest.from_case(case, index),
                             engine_label=label)
        self._emit("on_case_done",
                   CaseFinished(engine=label, case=case.name, index=index,
                                total=total, passed=report.passed,
                                acceptable=report.acceptable,
                                seconds=report.seconds))
        return report

    def _run_shard(self, spec: EngineSpec, label: str, base_seed: int,
                   shard, total: int, engine=None) -> list[RepairReport]:
        return [self._run_case(spec, label, base_seed, index, case, total,
                               engine)
                for index, case in shard]

    def _run_arm(self, spec: EngineSpec) -> ArmRun:
        label = self.label_for(spec)
        base_seed, run_spec = self._arm_seeding(spec)
        cases = list(self.dataset)
        total = len(cases)
        self._emit("on_engine_start",
                   EngineStarted(engine=label, cases=total))

        indexed = list(enumerate(cases))
        shards = [indexed[start:start + self.shard_size]
                  for start in range(0, total, self.shard_size)]
        # Shared isolation: one stateful engine walks every shard in order.
        shared_engine = (create_engine(run_spec, model=self.model,
                                       seed=base_seed,
                                       temperature=self.temperature)
                         if self.isolation == "shared" else None)
        reports: list[RepairReport] = []
        if self.workers == 1:
            shard_results = [self._run_shard(run_spec, label, base_seed,
                                             shard, total, shared_engine)
                             for shard in shards]
            for round_index, shard_reports in enumerate(shard_results):
                reports.extend(shard_reports)
                self._emit_round(label, round_index, len(shards), reports,
                                 total)
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                futures = [pool.submit(self._run_shard, run_spec, label,
                                       base_seed, shard, total)
                           for shard in shards]
                # Collect in submission order: reports stay dataset-ordered
                # and round events fire deterministically even though shards
                # complete in any order.
                for round_index, future in enumerate(futures):
                    reports.extend(future.result())
                    self._emit_round(label, round_index, len(shards),
                                     reports, total)

        self._emit("on_engine_done", EngineFinished(
            engine=label, cases=total,
            passed=sum(r.passed for r in reports),
            acceptable=sum(r.acceptable for r in reports),
            virtual_seconds=sum(r.seconds for r in reports)))
        return ArmRun(spec=spec, label=label, reports=reports)

    def _emit_round(self, label: str, round_index: int, rounds: int,
                    reports: list[RepairReport], total: int) -> None:
        self._emit("on_round", RoundFinished(
            engine=label, round_index=round_index, rounds=rounds,
            completed=len(reports), total=total,
            passed_so_far=sum(r.passed for r in reports)))

    def run(self) -> CampaignResult:
        self.telemetry = TelemetryLog()
        self.observers = [self.telemetry, *self._user_observers]
        arms = [self._run_arm(spec) for spec in self.specs]
        config = {
            "engines": [spec.to_string() for spec in self.specs],
            "model": self.model,
            "seed": self.seed,
            "temperature": self.temperature,
            "workers": self.workers,
            "shard_size": self.shard_size,
            "isolation": self.isolation,
            "cases": len(self.dataset),
        }
        return CampaignResult(config=config, arms=arms,
                              telemetry=self.telemetry)
