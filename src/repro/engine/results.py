"""Result containers shared by the engine layer and the benchmark suite.

``CaseResult`` and ``SystemResults`` historically lived in
``repro.bench.experiments``; they moved here so the engine subsystem (the
public repair API) owns the canonical result model and the bench layer is
just one consumer.  ``repro.bench.experiments`` re-exports both names, so
every pre-existing import path keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..miri.errors import UbKind
from .stats import RateCI, mean, wilson_interval


@dataclass
class CaseResult:
    case: str
    #: None for ad-hoc requests that carry no corpus category.
    category: UbKind | None
    passed: bool
    acceptable: bool
    seconds: float
    tokens: int
    llm_calls: int
    used_knowledge_base: bool
    used_feedback: bool
    hallucinations: int
    rollbacks: int
    solutions_tried: int

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "category": self.category.value if self.category else None,
            "passed": self.passed,
            "acceptable": self.acceptable,
            "seconds": self.seconds,
            "tokens": self.tokens,
            "llm_calls": self.llm_calls,
            "used_knowledge_base": self.used_knowledge_base,
            "used_feedback": self.used_feedback,
            "hallucinations": self.hallucinations,
            "rollbacks": self.rollbacks,
            "solutions_tried": self.solutions_tried,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CaseResult":
        payload = dict(data)
        raw_category = payload["category"]
        payload["category"] = (UbKind(raw_category)
                               if raw_category is not None else None)
        return cls(**payload)


@dataclass
class SystemResults:
    system: str
    results: list[CaseResult] = field(default_factory=list)

    # -- aggregate metrics -------------------------------------------------

    def pass_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.passed for r in self.results) / len(self.results)

    def exec_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.acceptable for r in self.results) / len(self.results)

    def pass_ci(self) -> RateCI:
        return wilson_interval(sum(r.passed for r in self.results),
                               len(self.results))

    def exec_ci(self) -> RateCI:
        return wilson_interval(sum(r.acceptable for r in self.results),
                               len(self.results))

    def mean_seconds(self) -> float:
        return mean([r.seconds for r in self.results])

    def by_category(self) -> dict[UbKind, "SystemResults"]:
        grouped: dict[UbKind, SystemResults] = {}
        for result in self.results:
            grouped.setdefault(
                result.category, SystemResults(self.system)
            ).results.append(result)
        return grouped

    def category_pass_rates(self) -> dict[UbKind, float]:
        return {cat: grp.pass_rate() for cat, grp in self.by_category().items()}

    def category_exec_rates(self) -> dict[UbKind, float]:
        return {cat: grp.exec_rate() for cat, grp in self.by_category().items()}

    def category_mean_seconds(self) -> dict[UbKind, float]:
        return {cat: grp.mean_seconds()
                for cat, grp in self.by_category().items()}

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "pass_rate": self.pass_rate(),
            "exec_rate": self.exec_rate(),
            "mean_seconds": self.mean_seconds(),
            "cases": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SystemResults":
        return cls(system=data["system"],
                   results=[CaseResult.from_dict(entry)
                            for entry in data["cases"]])
