"""Request/report dataclasses: the lingua franca of every repair engine.

A :class:`RepairRequest` is one unit of work — a buggy program plus the
optional developer reference that defines "acceptable semantics" (§II-A's
exec metric).  A :class:`RepairReport` is the scored outcome: the engine's
raw :class:`~repro.core.pipeline.RepairOutcome` accounting plus the external
pass/exec verdicts, ready to aggregate into
:class:`~repro.engine.results.SystemResults` or serialize to JSON.

RustBrain and all baselines speak this protocol through
:func:`run_request`; nothing engine-specific leaks above this layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..miri.errors import UbKind
from .results import CaseResult


@dataclass(frozen=True)
class RepairRequest:
    """One repair task, engine-agnostic."""

    name: str
    source: str
    difficulty: int = 2
    category: UbKind | None = None
    #: Developer-repaired reference; when present the report's ``acceptable``
    #: verdict compares observable behaviour against it.
    reference_source: str | None = None
    index: int = 0

    @classmethod
    def from_case(cls, case, index: int = 0) -> "RepairRequest":
        """Build a request from a :class:`~repro.corpus.case.UbCase`."""
        return cls(name=case.name, source=case.source,
                   difficulty=case.difficulty, category=case.category,
                   reference_source=case.fixed_source, index=index)


@dataclass
class RepairReport:
    """Scored outcome of one :class:`RepairRequest`."""

    case: str
    engine: str
    category: UbKind | None
    passed: bool
    acceptable: bool
    repaired_source: str | None
    seconds: float
    tokens: int
    llm_calls: int
    solutions_tried: int
    steps_executed: int
    hallucinations: int
    rollbacks: int
    used_knowledge_base: bool
    used_feedback: bool
    applied_rules: list[str] = field(default_factory=list)
    failure_reason: str | None = None
    #: Ensemble-member summaries (``member``/``model``/``index``/``passed``/
    #: ``seconds``/``tokens``/``llm_calls`` dicts); empty for ordinary arms.
    #: Carried through the cache and the process pool so the campaign can
    #: emit ``on_member_done`` telemetry identically for live and replayed
    #: cases.
    members: list[dict] = field(default_factory=list)

    def to_case_result(self) -> CaseResult:
        return CaseResult(
            case=self.case,
            category=self.category,
            passed=self.passed,
            acceptable=self.acceptable,
            seconds=self.seconds,
            tokens=self.tokens,
            llm_calls=self.llm_calls,
            used_knowledge_base=self.used_knowledge_base,
            used_feedback=self.used_feedback,
            hallucinations=self.hallucinations,
            rollbacks=self.rollbacks,
            solutions_tried=self.solutions_tried,
        )

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "engine": self.engine,
            "category": self.category.value if self.category else None,
            "passed": self.passed,
            "acceptable": self.acceptable,
            "repaired_source": self.repaired_source,
            "seconds": self.seconds,
            "tokens": self.tokens,
            "llm_calls": self.llm_calls,
            "solutions_tried": self.solutions_tried,
            "steps_executed": self.steps_executed,
            "hallucinations": self.hallucinations,
            "rollbacks": self.rollbacks,
            "used_knowledge_base": self.used_knowledge_base,
            "used_feedback": self.used_feedback,
            "applied_rules": list(self.applied_rules),
            "failure_reason": self.failure_reason,
            "members": [dict(member) for member in self.members],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RepairReport":
        """Inverse of :meth:`to_dict` — an exact round-trip, which is what
        lets the result cache hand back reports indistinguishable from a
        live engine run."""
        category = payload.get("category")
        return cls(
            case=payload["case"],
            engine=payload["engine"],
            category=UbKind(category) if category else None,
            passed=payload["passed"],
            acceptable=payload["acceptable"],
            repaired_source=payload.get("repaired_source"),
            seconds=payload["seconds"],
            tokens=payload["tokens"],
            llm_calls=payload["llm_calls"],
            solutions_tried=payload["solutions_tried"],
            steps_executed=payload["steps_executed"],
            hallucinations=payload["hallucinations"],
            rollbacks=payload["rollbacks"],
            used_knowledge_base=payload["used_knowledge_base"],
            used_feedback=payload["used_feedback"],
            applied_rules=list(payload.get("applied_rules", [])),
            failure_reason=payload.get("failure_reason"),
            members=[dict(member)
                     for member in payload.get("members", [])],
        )


def run_request(engine, request: RepairRequest,
                engine_label: str = "") -> RepairReport:
    """Run one request through any engine and score it externally.

    The pass metric is the engine's own Miri verdict; the exec metric
    re-checks the repaired program's observable behaviour against the
    developer reference when the request carries one.
    """
    # Lazy: repro.core imports the engine registry at module load, so the
    # scoring helper must not be a module-level import here.
    from ..core.evaluate import semantically_acceptable

    outcome = engine.repair(request.source, request.difficulty)
    acceptable = bool(
        outcome.passed and outcome.repaired_source is not None
        and request.reference_source is not None
        and semantically_acceptable(outcome.repaired_source,
                                    request.reference_source))
    return RepairReport(
        case=request.name,
        engine=engine_label or type(engine).__name__,
        category=request.category,
        passed=outcome.passed,
        acceptable=acceptable,
        repaired_source=outcome.repaired_source,
        seconds=outcome.seconds,
        tokens=outcome.tokens,
        llm_calls=outcome.llm_calls,
        solutions_tried=outcome.solutions_tried,
        steps_executed=outcome.steps_executed,
        hallucinations=outcome.hallucinations,
        rollbacks=outcome.rollbacks,
        used_knowledge_base=outcome.used_knowledge_base,
        used_feedback=outcome.used_feedback,
        applied_rules=list(outcome.applied_rules),
        failure_reason=outcome.failure_reason,
        members=[dict(member) for member in getattr(outcome, "members", [])],
    )
