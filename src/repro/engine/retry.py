"""Retry with capped exponential backoff and deterministic jitter.

A :class:`RetryPolicy` retries *transient* failures — injected faults
from :mod:`repro.engine.faults`, broken process pools, connection resets
— while preserving the repository's core invariant: **outcomes are
byte-identical to the fault-free run**.  That holds because every
retried operation replays the same derived seed stream (the LLM client
only advances its call index on success; shard workers rebuild engines
from the same ``(spec, seed, index)``), and because the backoff jitter
is itself deterministic: a hash of ``(policy seed, key, attempt)``, not
a shared RNG, so delays never perturb any seeded stream.

Retry telemetry flows through two channels:

* the process-wide :data:`RETRY_EVENTS` notifier, which campaigns
  subscribe to for the duration of a run so every retry — LLM-level or
  shard-level — surfaces as an ``on_retry``
  :class:`~repro.engine.telemetry.RetryAttempted` event;
* an optional per-call ``on_retry`` callback (the service wires its
  :class:`~repro.service.jobs.EventLog` here).

Neither channel feeds any serialized artifact: retry counts are
wall-clock diagnostics, and folding them into ``campaign.json`` would
break the byte-identity gates they exist to protect.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
import time
from dataclasses import dataclass, field

from .telemetry import RetryAttempted


class RetryNotifier:
    """Process-wide fan-out for :class:`RetryAttempted` events.

    Thread-safe: emissions may come from pool worker threads while a
    campaign observer is subscribed.  Counters survive unsubscription so
    benchmarks can assert "retries happened" after the fact.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._subscribers: list = []
        self._counts: dict[str, int] = {}

    def emit(self, event: RetryAttempted) -> None:
        with self._lock:
            self._counts[event.site] = self._counts.get(event.site, 0) + 1
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber(event)

    def subscribe(self, callback) -> None:
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        with self._lock:
            with contextlib.suppress(ValueError):
                self._subscribers.remove(callback)

    @contextlib.contextmanager
    def subscribed(self, callback):
        self.subscribe(callback)
        try:
            yield self
        finally:
            self.unsubscribe(callback)

    def counts(self) -> dict:
        with self._lock:
            return dict(sorted(self._counts.items()))

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()


RETRY_EVENTS = RetryNotifier()


@dataclass
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``attempts`` counts *total* tries, so ``attempts=4`` means one
    initial try plus up to three retries.  Keep ``attempts`` above the
    fault plan's ``depth`` (default 2) and injected faults can never
    exhaust the budget — see :mod:`repro.engine.faults`.

    ``sleep`` is injectable for tests and benchmarks that must not pay
    real backoff wall-clock.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    #: Max jitter as a fraction of the capped delay (0 disables it).
    jitter: float = 0.5
    seed: int = 0
    sleep: "object" = field(default=time.sleep, repr=False)

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt + 1`` (zero-based).

        Deterministic: the jitter fraction is a hash of
        ``(seed, key, attempt)``, so the same failure sequence always
        backs off identically — reproducible wall-clock, and no draw
        from any RNG an experiment depends on.
        """
        capped = min(self.max_delay,
                     self.base_delay * self.multiplier ** attempt)
        if not self.jitter or not capped:
            return capped
        material = f"{self.seed}|{key}|{attempt}"
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return capped * (1.0 + self.jitter * unit)

    def run(self, operation, *, site: str, key: str, retryable,
            on_retry=None):
        """Call ``operation(attempt)`` until it succeeds or the budget ends.

        ``operation`` receives the zero-based attempt number — injection
        sites pass it to :func:`~repro.engine.faults.maybe_inject`, which
        is what bounds consecutive injected failures.  Only ``retryable``
        exceptions are retried; the final failure propagates unchanged.
        """
        for attempt in range(self.attempts):
            try:
                return operation(attempt)
            except retryable as exc:
                if attempt + 1 >= self.attempts:
                    raise
                delay = self.delay_for(attempt, key)
                event = RetryAttempted(
                    site=site, key=key, attempt=attempt + 1,
                    max_attempts=self.attempts, delay_seconds=delay,
                    error=f"{type(exc).__name__}: {exc}")
                RETRY_EVENTS.emit(event)
                if on_retry is not None:
                    on_retry(event)
                self.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


#: Stock policies.  Delays are tiny: transient faults here are simulated,
#: so backoff only needs to be *shaped* correctly, not production-sized.
LLM_RETRY = RetryPolicy(attempts=4, base_delay=0.002, max_delay=0.05)
SERVICE_RETRY = RetryPolicy(attempts=4, base_delay=0.01, max_delay=0.25)
CAMPAIGN_RETRY = RetryPolicy(attempts=4, base_delay=0.05, max_delay=0.5)
