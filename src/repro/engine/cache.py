"""Content-addressed on-disk result cache for campaign runs.

Every case a campaign executes is a pure function of its inputs: the engine
spec, the model, the case itself, the derived seed, and the sampling
temperature fully determine the :class:`~repro.engine.types.RepairReport`
(that invariant is what makes worker-count-invariant campaigns possible in
the first place).  The cache exploits it: a key is the SHA-256 digest of
exactly those inputs (plus the :data:`CACHE_EPOCH` engine-behaviour
version), the value is the serialized report(s), and a warm re-run of an
identical campaign performs zero engine case executions.

Two key granularities cover the two isolation modes:

* :func:`case_key` — one per-case entry for ``isolation="per_case"``, keyed
  on the *derived* per-case seed so hits survive re-sharding and different
  worker counts.
* :func:`arm_key` — one whole-arm entry for ``isolation="shared"``, where a
  case's outcome depends on the stateful engine's history and is only
  reproducible as part of the full dataset sweep (same spec, base seed, and
  dataset fingerprint).

Entries are JSON files under ``root/<key[:2]>/<key>.json``, written
atomically (temp file + ``os.replace``) so concurrent thread- or
process-pool workers can race on the same key without torn reads; both
racers write identical bytes.  A small in-memory layer makes repeated hits
within one process free.  Corrupt or schema-mismatched entries read as
misses and are recomputed, never trusted.

The disk layer is strictly best-effort: read errors (real or injected via
the ``cache:io`` fault site, :mod:`repro.engine.faults`) degrade to a
miss, write errors skip the disk copy but keep the in-memory one, and
both are counted in ``io_errors`` — a cache failure can slow a campaign
down, never crash it or change its results.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import tempfile
import threading

from .faults import maybe_inject
from .types import RepairReport

#: Bump when the key material or entry layout changes; old entries then
#: read as misses instead of being misinterpreted.
CACHE_SCHEMA = "repro.result-cache/1"

#: Engine-behaviour epoch, mixed into every cache key.  A cached report is
#: only valid while the code that produced it behaves identically, and a
#: spec string cannot see code changes — so any PR that changes what an
#: engine *does* (repair logic, oracle sampling, seed derivation, report
#: contents) must bump this number.  Old entries then read as misses and
#: are recomputed instead of silently replaying stale behaviour.  The
#: convention (see DESIGN.md "Cache hygiene") is one bump per
#: behaviour-changing PR; bumping too often only costs a cold run.
#: Epoch 4: concurrent ensemble members (member_workers= waves charge
#: max(member seconds) instead of the sum) and per-member wave summaries.
#: Epoch 5: shared ExecutorService + fingerprint-deduplicated
#: verification (detect_case memo, normalized-AST verifier dedup, new
#: fingerprint= engine flags) — outcomes are gated byte-identical, but
#: the execution profile behind every cached report changed.
CACHE_EPOCH = 5

_SEP = "\x1f"  # unit separator: cannot appear in specs, names, or numbers

#: Construction-time tmp sweep spares files younger than this — an atomic
#: write completes in milliseconds, so an hour-old ``*.tmp`` is a dead
#: worker's orphan, never a live writer.  ``clear()`` sweeps regardless of
#: age (an explicit wipe of the root).
_TMP_ORPHAN_AGE_SECONDS = 3600.0


def _digest(*parts: str) -> str:
    return hashlib.sha256(_SEP.join(parts).encode("utf-8")).hexdigest()


def fingerprint_case(name: str, source: str, reference_source: str | None,
                     difficulty: int, category) -> str:
    """Digest of everything about a case that can influence its report."""
    return _digest(
        "case", name, source, reference_source or "",
        str(difficulty), category.value if category is not None else "")


def fingerprint_dataset(cases) -> str:
    """Order-sensitive digest of a whole dataset (shared-isolation sweeps
    are stateful, so case order is part of the arm's identity)."""
    return _digest("dataset", *(fingerprint_case(
        case.name, case.source, case.fixed_source, case.difficulty,
        case.category) for case in cases))


def case_key(spec: str, model: str, temperature: float, derived_seed: int,
             case_fingerprint: str) -> str:
    """Cache key for one per-case-isolation execution."""
    return _digest(CACHE_SCHEMA, str(CACHE_EPOCH), "case", spec, model,
                   f"{temperature:.6g}", str(derived_seed), case_fingerprint)


def arm_key(spec: str, model: str, temperature: float, base_seed: int,
            dataset_fingerprint: str) -> str:
    """Cache key for one shared-isolation (stateful) arm sweep."""
    return _digest(CACHE_SCHEMA, str(CACHE_EPOCH), "arm", spec, model,
                   f"{temperature:.6g}", str(base_seed), dataset_fingerprint)


class ResultCache:
    """Keyed store of repair reports with hit/miss accounting.

    Values are *lists* of reports: length one for per-case entries, the
    full dataset-ordered sweep for arm entries.

    Safe for concurrent use from multiple threads: the in-memory layer and
    the hit/miss counters are lock-guarded (the disk layer was always safe
    — atomic writes plus identical-bytes racers), and :meth:`counts` gives
    an internally consistent view for telemetry endpoints.  Disk I/O
    happens outside the lock, so a slow read never serializes other keys.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Disk I/O failures absorbed (reads degraded to misses, writes
        #: kept memory-only) — real or injected via the ``cache:io`` site.
        self.io_errors = 0
        self._lock = threading.Lock()
        #: Per-process read-through layer; disk stays the source of truth.
        self._memory: dict[str, list[RepairReport]] = {}
        # A worker killed between mkstemp and os.replace leaves a ``*.tmp``
        # orphan that nothing would ever reclaim; sweep on construction (and
        # in clear()) so they cannot accumulate across runs.  The
        # construction sweep is age-gated: a tmp file younger than the
        # threshold may be a concurrent writer mid-put, not an orphan.
        self._sweep_tmp(max_age_seconds=_TMP_ORPHAN_AGE_SECONDS)

    # -- paths -------------------------------------------------------------

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> list[RepairReport] | None:
        """The cached reports for ``key``, or ``None`` on a miss."""
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self.hits += 1
                return list(cached)
        try:
            maybe_inject("cache", key=f"get|{key}")
            payload = json.loads(self._path(key).read_text(encoding="utf-8"))
            if payload.get("schema") != CACHE_SCHEMA:
                raise ValueError("cache schema mismatch")
            reports = [RepairReport.from_dict(entry)
                       for entry in payload["reports"]]
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # Corrupt, incompatible schema, or a disk read error (real or
            # injected): degrade to a miss and recompute — never crash.
            with self._lock:
                self.misses += 1
                if isinstance(exc, OSError):
                    self.io_errors += 1
            return None
        with self._lock:
            self._memory[key] = list(reports)
            self.hits += 1
        return reports

    def put(self, key: str, reports: list[RepairReport]) -> None:
        """Store ``reports`` under ``key`` atomically.

        A disk write failure (real or injected) is absorbed: the entry
        stays in the in-memory layer for this process, ``io_errors`` is
        bumped, and the next cold run simply recomputes — the cache is an
        accelerator, so losing a write must never fail the work that
        produced the result.
        """
        payload = json.dumps(
            {"schema": CACHE_SCHEMA,
             "reports": [report.to_dict() for report in reports]},
            sort_keys=True)
        try:
            maybe_inject("cache", key=f"put|{key}")
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._write_atomic(path, payload)
        except OSError:
            with self._lock:
                self.io_errors += 1
        with self._lock:
            self._memory[key] = list(reports)

    def counts(self) -> dict:
        """Internally consistent ``{hits, misses, memory_entries,
        io_errors}`` view — what the service's ``/stats`` endpoint
        publishes."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "memory_entries": len(self._memory),
                    "io_errors": self.io_errors}

    def _write_atomic(self, path: pathlib.Path, payload: str) -> None:
        last_error: OSError | None = None
        for _attempt in range(2):
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
                return
            except FileNotFoundError as err:
                # A concurrent sweep (another process constructing or
                # clearing this root) unlinked our tmp between write and
                # replace; one rewrite wins either way.
                last_error = err
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        raise last_error

    # -- maintenance -------------------------------------------------------

    def _sweep_tmp(self, max_age_seconds: float = 0.0) -> None:
        """Reclaim orphaned atomic-write temp files (dead workers).

        ``max_age_seconds > 0`` spares files younger than the threshold —
        they may belong to a concurrent writer still between mkstemp and
        replace (a genuine orphan is reclaimed by any later sweep).
        """
        import time
        cutoff = time.time() - max_age_seconds
        for entry in self.root.glob("*/*.tmp"):
            with contextlib.suppress(OSError):
                if not max_age_seconds or entry.stat().st_mtime <= cutoff:
                    entry.unlink()

    def __len__(self) -> int:
        # Orphaned ``*.tmp`` files are never entries; only committed
        # ``<key>.json`` files count.
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> None:
        for entry in self.root.glob("*/*.json"):
            with contextlib.suppress(OSError):
                entry.unlink()
        self._sweep_tmp()
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0
            self.io_errors = 0
