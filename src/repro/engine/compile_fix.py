"""The ``compile_fix`` engine family: repair sources that fail the
static checker.

The dynamic-repair engines (rustbrain, the baselines) all assume their
input *runs* — the corpus they target is compile-clean by construction.
``compile_fix`` is the front door for the other failure mode: a source
the checker rejects.  It loops check → prompt → apply one
machine-applicable suggestion → re-check, with the model profile gating
whether each suggestion is applied competently (stronger models accept
the checker's structured fix more reliably, mirroring how real models
differ at following compiler guidance).

Once the source checks clean it is handed to the dynamic detector for a
final verdict, so the engine composes in a cascade exactly like any
other member::

    cascade?members=compile_fix:gpt-4+rustbrain:gpt-4

UB-but-compiling inputs fail fast here ("checks clean but UB remains")
and escalate to the next member; non-compiling inputs are repaired to
checks-clean before the dynamic verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..check import apply_suggestion, check_source
from ..core.pipeline import RepairOutcome
from ..llm.client import ContextOverflow, LLMClient, VirtualClock
from ..llm.profiles import get_profile
from ..miri import detect_case
from .registry import apply_config_overrides, register_engine


@dataclass
class CompileFixConfig:
    model: str = "gpt-4"
    temperature: float = 0.5
    seed: int = 0
    #: Correction rounds: each round applies at most one suggestion.
    #: ``attempts=1`` is the paper-style "first attempt" condition.
    attempts: int = 3
    #: Virtual seconds per checker invocation (fast, static).
    checker_seconds: float = 0.2
    #: Virtual seconds for the final dynamic detector run.
    detector_seconds: float = 0.8


class CompileFixRepair:
    """Checker-guided compile repair with a model-gated apply step."""

    def __init__(self, config: CompileFixConfig | None = None):
        self.config = config or CompileFixConfig()
        self._repair_index = 0

    def repair(self, source: str, difficulty: int = 2) -> RepairOutcome:
        config = self.config
        clock = VirtualClock()
        client = LLMClient(config.model, config.temperature,
                           seed=config.seed * 9241 + self._repair_index,
                           clock=clock)
        self._repair_index += 1
        profile = get_profile(config.model)
        # Following a structured compiler suggestion is easier than
        # synthesising a repair from scratch; cap below certainty so
        # weaker models still visibly lag.
        apply_skill = min(0.9, profile.repair_skill + 0.2)

        clock.advance(config.checker_seconds)
        report = check_source(source)
        current = source
        steps = 0
        hallucinations = 0
        if not report.ok:
            for _attempt in range(config.attempts):
                suggestions = [s for diag in report.diagnostics
                               for s in diag.suggestions]
                if not suggestions:
                    return self._outcome(
                        client, False, None, steps, hallucinations,
                        reason="no machine-applicable suggestion")
                try:
                    rng = client.charge("compile_fix", report.render())
                except ContextOverflow:
                    return self._outcome(client, False, None, steps,
                                         hallucinations,
                                         reason="exceeds context limit")
                steps += 1
                if rng.random() < apply_skill:
                    current = apply_suggestion(current, suggestions[0])
                else:
                    hallucinations += 1  # fumbled the suggested splice
                clock.advance(config.checker_seconds)
                report = check_source(current)
                if report.ok:
                    break
            if not report.ok:
                return self._outcome(client, False, None, steps,
                                     hallucinations,
                                     reason="attempts exhausted")
        clock.advance(config.detector_seconds)
        verdict = detect_case(current, collect=True)
        if verdict.passed:
            return self._outcome(client, True, current, steps,
                                 hallucinations)
        return self._outcome(client, False, None, steps, hallucinations,
                             reason="checks clean but UB remains")

    def _outcome(self, client, passed, repaired, steps, hallucinations,
                 reason=None) -> RepairOutcome:
        return RepairOutcome(
            passed=passed, repaired_source=repaired,
            seconds=client.clock.elapsed,
            tokens=client.stats.total_tokens,
            llm_calls=client.stats.call_count,
            solutions_tried=steps, steps_executed=steps,
            hallucinations=hallucinations, rollbacks=0,
            used_knowledge_base=False, used_feedback=False,
            failure_reason=reason,
        )


@register_engine("compile_fix",
                 summary="checker-guided repair of non-compiling sources "
                         "(static diagnostics + suggestion splices)",
                 tags=("static", "compile"))
def _build_compile_fix(*, model: str = "gpt-4", seed: int = 0,
                       temperature: float = 0.5,
                       **overrides) -> CompileFixRepair:
    config = CompileFixConfig(model=model, seed=seed,
                              temperature=temperature)
    apply_config_overrides(config, overrides)
    return CompileFixRepair(config)
