"""Crash-safe campaign journal: append-only, fsync'd, resumable.

A :class:`CampaignJournal` makes a long campaign survivable: every
completed ``(arm, case)`` result is appended to ``campaign.journal`` as
one JSON line — written with a single ``write`` and ``fsync``'d before
the campaign moves on — so a SIGKILL at any instant loses at most the
case that was mid-flight.  ``repro campaign --resume <dir>`` replays the
journal and re-executes only the missing cases; because every case is a
pure function of ``(spec, model, seed, index)``, the resumed
``campaign.json`` is byte-identical to an uninterrupted run's (provided
both run without a result cache, whose hit/miss telemetry counts
necessarily differ once a partial run has warmed it).

File format (schema ``repro.journal/1``) — JSON Lines:

* line 1, the header::

    {"schema": "repro.journal/1", "fingerprint": "<sha256>"}

  The fingerprint digests everything that determines case outcomes —
  engine specs, model, seed, temperature, isolation, the cache epoch,
  and the dataset fingerprint — but *not* worker count, shard size, or
  executor backend: a campaign may legitimately resume at a different
  parallelism.  A mismatch refuses to resume rather than silently
  replaying results from a different experiment.

* every further line, one completed result::

    {"kind": "case" | "arm", "key": "<cache key>", "arm": "<label>",
     "index": <int>, "reports": [<RepairReport.to_dict()>, ...]}

  ``key`` is the existing :func:`~repro.engine.cache.case_key` /
  :func:`~repro.engine.cache.arm_key` digest, so journal identity and
  cache identity can never drift apart.

Durability over the crash window is handled on load: a process killed
mid-append leaves a torn final line, which is tolerated (that case simply
re-executes); torn or corrupt lines anywhere *else* mean the file was
damaged by something other than a crash-in-append and raise
:class:`JournalError`.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading

from .types import RepairReport

JOURNAL_SCHEMA = "repro.journal/1"

JOURNAL_FILENAME = "campaign.journal"


class JournalError(ValueError):
    """The journal file is unusable: wrong schema, wrong fingerprint, or
    corruption that cannot be explained by a crash mid-append."""


class CampaignJournal:
    """Append-only store of completed campaign results, keyed by cache keys.

    Thread-safe for appends (thread-pool campaigns merge shards from the
    collector thread, but observers may append concurrently); loading
    happens once, in :meth:`open`, before any worker starts.
    """

    def __init__(self, root: str | os.PathLike,
                 filename: str = JOURNAL_FILENAME):
        self.root = pathlib.Path(root)
        self.path = self.root / filename
        self._entries: dict[str, list[RepairReport]] = {}
        self._fd: int | None = None
        self._lock = threading.Lock()
        #: Entries served to a run from a pre-existing journal.
        self.replayed = 0
        #: Entries written by the current run.
        self.appended = 0
        #: Torn trailing lines discarded on load (0 or 1).
        self.skipped_torn = 0

    # -- lifecycle ---------------------------------------------------------

    def open(self, fingerprint: str) -> int:
        """Load (or create) the journal for a campaign with ``fingerprint``.

        Returns the number of entries loaded.  Idempotent: a second call
        on an already-open journal revalidates the fingerprint only.
        """
        if self._fd is not None:
            if fingerprint != self._fingerprint:
                raise JournalError(
                    f"journal {self.path} belongs to a different campaign "
                    f"configuration (fingerprint mismatch)")
            return len(self._entries)
        self.root.mkdir(parents=True, exist_ok=True)
        created = not self.path.exists()
        if not created:
            self._load(fingerprint)
        self._fd = os.open(self.path,
                           os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        self._fingerprint = fingerprint
        if created:
            header = json.dumps({"schema": JOURNAL_SCHEMA,
                                 "fingerprint": fingerprint},
                                sort_keys=True)
            self._write_line(header)
            self._fsync_dir()
        return len(self._entries)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def _load(self, fingerprint: str) -> None:
        raw = self.path.read_bytes()
        lines = raw.decode("utf-8", errors="replace").split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise JournalError(f"journal {self.path} is empty")
        try:
            header = json.loads(lines[0])
        except ValueError as err:
            raise JournalError(
                f"journal {self.path} has an unreadable header") from err
        if not isinstance(header, dict) \
                or header.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"journal {self.path} is not a {JOURNAL_SCHEMA} file")
        if header.get("fingerprint") != fingerprint:
            raise JournalError(
                f"journal {self.path} belongs to a different campaign "
                f"configuration (fingerprint mismatch)")
        for position, line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(line)
                key = record["key"]
                reports = [RepairReport.from_dict(entry)
                           for entry in record["reports"]]
            except (ValueError, KeyError, TypeError) as err:
                if position == len(lines):
                    # A crash between write and fsync can tear the final
                    # line; that case simply re-executes.
                    self.skipped_torn += 1
                    break
                raise JournalError(
                    f"journal {self.path} line {position} is corrupt "
                    f"(not a torn tail — refusing to resume)") from err
            self._entries[key] = reports

    # -- access ------------------------------------------------------------

    def get(self, key: str) -> list[RepairReport] | None:
        """The journaled reports for ``key``, or ``None``.  Counts a
        replay on hit (appends by the current run do not re-count)."""
        reports = self._entries.get(key)
        if reports is None:
            return None
        self.replayed += 1
        return list(reports)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, key: str, reports: list[RepairReport], *,
               kind: str = "case", arm: str = "",
               index: int | None = None) -> None:
        """Durably record one completed result.

        The record is serialized to one line, written with a single
        ``os.write``, and ``fsync``'d before returning — after this call
        a SIGKILL cannot lose the entry.  Duplicate keys are ignored, so
        replays never double-write.
        """
        if self._fd is None:
            raise JournalError("journal is not open")
        line = json.dumps(
            {"kind": kind, "key": key, "arm": arm, "index": index,
             "reports": [report.to_dict() for report in reports]},
            sort_keys=True)
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = list(reports)
            self.appended += 1
        self._write_line(line)

    # -- plumbing ----------------------------------------------------------

    def _write_line(self, line: str) -> None:
        data = (line + "\n").encode("utf-8")
        with self._lock:
            if self._fd is None:
                raise JournalError("journal is not open")
            os.write(self._fd, data)
            os.fsync(self._fd)

    def _fsync_dir(self) -> None:
        # Make the journal's *creation* durable too, not just its bytes.
        try:
            dir_fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)
