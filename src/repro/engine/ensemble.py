"""Composite repair engines: model portfolios, cascades, and routers.

The paper's headline claim is that *orchestration* — not any single model —
conquers UBs, and Fig. 8/9 compare four model profiles precisely because no
standalone arm wins everywhere.  This module makes that comparison a
first-class workload: three composite :class:`~repro.engine.registry.
RepairEngine` families that combine ordinary registered engines ("members")
into one arm, each registered through the same
:class:`~repro.engine.registry.EngineRegistry` as every other engine, so
campaigns, the cache, the process pool, and the CLI all run them unchanged.

* ``portfolio`` — run member arms per case and pick a winner by
  ``strategy``: ``first_pass`` (members in declared order, stop at the
  first Miri pass), ``best_score`` (run everyone, keep the best passing
  report), or ``vote`` (run everyone, majority over identical repaired
  sources).
* ``cascade`` — the paper's fast→slow escalation lifted to the *model*
  level: a cheap profile answers first and the expensive profile is only
  consulted on failure, buying near-best pass rates at a fraction of the
  latency (the RustAssistant-style single-model loop is the natural first
  stage).
* ``switch`` — AkiraRust-style feedback-guided routing: the detector runs
  once, the primary :class:`~repro.miri.errors.UbKind` picks a member via
  the ``routes`` table, and (by default) failures escalate through the
  remaining members in order.

Member grammar (documented in full in ``docs/quickstart.md``)::

    portfolio?members=rustbrain:gpt-4+llm_only:claude-3.5&strategy=first_pass
    cascade?members=gpt-3.5+rustbrain:gpt-4
    switch?routes=stack_borrow:1,datarace:1&fallback=0

``members`` is a ``+``-separated list; each member is an ordinary
:class:`~repro.engine.spec.EngineSpec` with an optional ``:model`` suffix
binding a :mod:`~repro.llm.profiles` profile (members without one inherit
the ensemble's model).  Inside a member, ``;`` stands for the spec's
``?``/``&`` and ``~`` stands for a nested ``+`` — one level of inline
nesting (``portfolio?members=cascade;members=gpt-3.5~rustbrain+gpt-4``);
deeper trees should register a named engine or build specs in code.

Every :class:`~repro.llm.profiles.ModelProfile` also auto-registers a
standalone arm under its own name (``gpt-3.5``, ``claude-3.5``, …): the
``llm_only`` baseline pinned to that profile, which is what makes member
lists like ``gpt-3.5+gpt-4`` read the way Fig. 8/9 do.

Determinism: member ``i`` of a repair with ensemble seed ``s`` runs with
the derived seed ``s * 104_729 + repair_index * 977 + i`` — a pure function
of the ensemble's own (campaign-derived) seed, so ensemble arms shard
byte-identically across ``serial|thread|process`` executors and nest
without correlating their members.  Virtual-clock seconds, tokens, and
calls accumulate across every consulted member, and the per-member
summaries travel inside the :class:`~repro.engine.types.RepairReport` to
surface as ``on_member_done`` telemetry.

Concurrent consultation (``member_workers=``): members whose consultations
are independent — the run-everyone portfolio strategies (``best_score``,
``vote``) and ``switch``'s escalation chain — execute in *waves* of up to
``member_workers`` members over a thread or process pool
(``member_executor=thread|process``; ``serial`` runs the same waves
in-process).  Because member seeds are pure functions of
``(ensemble seed, repair_index, member_index)``, pooled consultation is
byte-identical to running the same waves serially at any pool size; the
backend is pure wall-clock.  ``member_workers`` itself, however, is
*semantic*: a wave charges ``max(member seconds)`` to the virtual clock
instead of the sequential sum (see DESIGN.md, "Concurrent members"), which
is why changing it — like any engine-behaviour change — rides a
:data:`~repro.engine.cache.CACHE_EPOCH` bump.  First-pass chains (plain
``first_pass``, ``cascade``, the routed ``switch`` member whose verdict
gates escalation) are order-dependent by definition and always consult
sequentially.

Portfolios additionally support ``weights=`` (per-member vote weights for
``strategy=vote``) and ``budget_tokens=`` / ``budget_seconds=``: after
every consulted wave the accumulated token / virtual-second spend is
checked against the budget, and remaining members are skipped once it is
exhausted (the consultation that crosses the line still counts).

Members can be cached individually (``member_cache_dir=``): each consulted
member stores its report through :class:`~repro.engine.cache.ResultCache`
under an ordinary per-case key, so overlapping ensembles share work and a
warm member cache replays without executing any member engine.  The cached
bytes are identical to a live run's, so caching never changes results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..llm.profiles import PROFILES
from ..miri.errors import UbKind
from .cache import ResultCache, case_key, fingerprint_case
from .pool import EXECUTOR_SERVICE, cancel_and_wait
from .registry import (EngineConfigError, REGISTRY, apply_config_overrides,
                       create_engine, register_engine)
from .spec import EngineSpec, SpecError, arm_label
from .types import RepairRequest, run_request

#: The composite engine names this module registers (also consulted by
#: :func:`~repro.engine.spec.arm_label` — ensembles pin their members'
#: models, so the campaign-level model does not name the arm).
ENSEMBLE_KINDS = ("portfolio", "cascade", "switch")

#: Portfolio winner-selection strategies.
STRATEGIES = ("first_pass", "best_score", "vote")

#: Pool backends for concurrent member consultation.  The backend never
#: changes bytes — ``serial`` exists so the identity tests (and debuggers)
#: can run the exact wave semantics in-process.
MEMBER_EXECUTORS = ("serial", "thread", "process")

#: Member-seed derivation constants (see the module docstring).  The
#: stride decorrelates neighbouring ensemble seeds; the repair stride
#: separates successive repairs of one shared-isolation instance.
_MEMBER_SEED_STRIDE = 104_729
_REPAIR_STRIDE = 977


def member_seed(base_seed: int, repair_index: int, member_index: int) -> int:
    """The derived seed for one member execution — a pure function of the
    ensemble's own seed, so ensembles stay worker-count-invariant."""
    return (base_seed * _MEMBER_SEED_STRIDE + repair_index * _REPAIR_STRIDE
            + member_index)


@dataclass(frozen=True)
class Member:
    """One parsed ``members`` entry: a spec plus its bound model."""

    spec: EngineSpec
    #: ``None`` inherits the ensemble's model at execution time.
    model: str | None = None

    def to_string(self) -> str:
        text = self.spec.to_string().replace("+", "~")
        if "?" in text:
            text = text.replace("?", ";").replace("&", ";")
        return text if self.model is None else f"{text}:{self.model}"


def parse_member(text: str) -> Member:
    """Parse one member entry (``spec[:model]`` with ``;``/``~`` escapes)."""
    text = text.strip()
    if not text:
        raise SpecError("empty ensemble member")
    spec_text, sep, model = text.rpartition(":")
    if not sep or model not in PROFILES:
        # No model suffix (or the tail is route-table material, not a
        # known profile): the whole entry is the spec.
        spec_text, model = text, None
    spec_text = spec_text.replace("~", "+")
    if "?" not in spec_text:
        name, _, tail = spec_text.partition(";")
        spec_text = name + (f"?{tail.replace(';', '&')}" if tail else "")
    else:
        spec_text = spec_text.replace(";", "&")
    return Member(spec=EngineSpec.parse(spec_text), model=model)


def parse_members(text: str) -> tuple[Member, ...]:
    """Parse a full ``members`` value (``+``-separated member entries)."""
    # ``"".split("+")`` yields ``[""]``, so an empty value must be caught
    # here — inside the loop it would surface as a per-member error.
    if not text.strip():
        raise SpecError("no ensemble members given (members= is empty)")
    return tuple(parse_member(chunk) for chunk in text.split("+"))


def parse_routes(text: str, member_count: int) -> dict[UbKind, int]:
    """Parse a ``switch`` route table: ``category:index`` pairs, ``,``-sep."""
    routes: dict[UbKind, int] = {}
    if not text:
        return routes
    for chunk in text.split(","):
        category_text, sep, index_text = chunk.partition(":")
        try:
            category = UbKind(category_text.strip())
        except ValueError:
            known = ", ".join(kind.value for kind in UbKind)
            raise EngineConfigError(
                f"unknown UB category {category_text!r} in routes; "
                f"choose from {known}") from None
        if not sep or not index_text.strip().isdigit():
            raise EngineConfigError(
                f"malformed route {chunk!r} (expected category:member_index)")
        if category in routes:
            # A silent overwrite would run a different routing table than
            # the arm label claims — two entries for one category is a
            # config mistake, never an intent.
            raise EngineConfigError(
                f"duplicate route for category {category.value!r} "
                f"(route {chunk!r} would overwrite member "
                f"{routes[category]})")
        index = int(index_text)
        if index >= member_count:
            raise EngineConfigError(
                f"route {chunk!r} points past the member list "
                f"({member_count} members)")
        routes[category] = index
    return routes


def parse_weights(text, member_count: int) -> tuple[float, ...] | None:
    """Parse a ``weights`` value: ``,``-separated positive numbers, one per
    member, aligned with the ``members`` declaration order.  Accepts the
    already-coerced spec value, so a bare number (single member) works."""
    if text is None or not str(text).strip():
        return None
    chunks = [chunk.strip() for chunk in str(text).split(",")]
    try:
        weights = tuple(float(chunk) for chunk in chunks)
    except ValueError:
        raise EngineConfigError(
            f"malformed weights {text!r} "
            "(expected comma-separated numbers)") from None
    if len(weights) != member_count:
        raise EngineConfigError(
            f"weights count {len(weights)} does not match the member "
            f"count ({member_count})")
    if any(weight <= 0 for weight in weights):
        raise EngineConfigError(f"weights must be positive, got {text!r}")
    return weights


# ---------------------------------------------------------------------------
# Configuration


#: Default member lists per ensemble kind.  The cascade defaults encode the
#: fast→slow story: GPT-3.5 answers the easy majority in a couple of cheap
#: calls, and the full GPT-4 RustBrain pipeline only pays its 2x-4x
#: overhead on the cases that actually need slow thinking.
DEFAULT_MEMBERS = {
    "portfolio": "llm_only:gpt-3.5+llm_only:claude-3.5+llm_only:gpt-4",
    "cascade": "llm_only:gpt-3.5+rustbrain:gpt-4",
    "switch": "llm_only:claude-3.5+rustbrain:gpt-4",
}

#: Default ``switch`` routing: deep-dependency and concurrency categories go
#: straight to the slow-thinking member; everything else tries the fast
#: member first (escalation still catches its failures).
DEFAULT_ROUTES = ("stack_borrow:1,both_borrow:1,provenance:1,datarace:1,"
                  "concurrency:1,tailcall:1")


#: One ResultCache per resolved root, shared by every ensemble instance in
#: the process.  Per-case campaign isolation constructs a fresh engine per
#: case; without sharing, each one's in-memory read-through layer would
#: start cold and every member hit would re-read and re-parse from disk.
_MEMBER_CACHES: dict[str, ResultCache] = {}


def _member_cache(root: str) -> ResultCache:
    import pathlib
    key = str(pathlib.Path(root).resolve())
    cache = _MEMBER_CACHES.get(key)
    if cache is None:
        cache = _MEMBER_CACHES.setdefault(key, ResultCache(root))
    return cache


def _process_pool_allowed() -> bool:
    """Member process pools are a main-process facility.

    A campaign process-pool worker that spawned its own member pool would
    hang at exit: its grandchildren are long-lived (never sent a shutdown
    sentinel) and ``multiprocessing``'s exit function joins non-daemonic
    children.  Inside any multiprocessing child the process backend
    degrades to the thread pool — byte-identical results, wall-clock only
    (the campaign's own pool already owns the machine's cores there).
    """
    import multiprocessing
    return multiprocessing.parent_process() is None


def _execute_member_task(spec: str, model: str, temperature: float,
                         seed: int, source: str, difficulty: int,
                         label: str):
    """Build and run one member engine — picklable for the process pool,
    and the single execution path for inline/thread consultation too."""
    engine = create_engine(spec, model=model, seed=seed,
                           temperature=temperature)
    return run_request(
        engine, RepairRequest(name="member", source=source,
                              difficulty=difficulty),
        engine_label=label)


@dataclass
class EnsembleConfig:
    model: str = "gpt-4"
    temperature: float = 0.5
    seed: int = 0
    #: ``+``-separated member specs; empty selects the kind's default.
    members: str = ""
    #: Portfolio winner selection: first_pass | best_score | vote.
    strategy: str = "first_pass"
    #: Switch routing table (``category:index,...``); empty selects the
    #: default table when the default members are in play, else no routes.
    routes: str = ""
    #: Switch: member index when no route matches the detected category.
    fallback: int = 0
    #: Switch: consult the remaining members in order when the routed
    #: member fails (AkiraRust's feedback-guided escalation).
    escalate: bool = True
    #: Virtual seconds for the routing detector run (switch only).
    detector_seconds: float = 0.8
    #: Optional per-member ResultCache root shared across ensembles.
    member_cache_dir: str = ""
    #: Concurrent-consultation width: independent consultations (run-
    #: everyone portfolio strategies, switch escalation) execute in waves
    #: of up to this many members, each wave charging max(member seconds)
    #: to the virtual clock instead of the sum.  A *semantic* parameter —
    #: part of the arm's identity, unlike the executor below.
    member_workers: int = 1
    #: Pool backend for waves wider than one member: serial | thread |
    #: process.  Pure wall-clock — every backend is byte-identical.
    member_executor: str = "thread"
    #: Portfolio ``strategy=vote`` only: per-member vote weights
    #: (``,``-separated positive numbers in member declaration order).
    #: ``None`` default (not ``""``) so a single-member ``weights=2``,
    #: which spec coercion types as a number, passes the override type
    #: check and reaches :func:`parse_weights`.
    weights: str | int | float | None = None
    #: Portfolio only: stop consulting members once the accumulated token
    #: spend reaches this budget (0 = unlimited).
    budget_tokens: int = 0
    #: Portfolio only: stop consulting members once the accumulated
    #: virtual-clock seconds reach this budget (0 = unlimited).
    budget_seconds: float = 0.0


class EnsembleEngine:
    """A composite engine running member arms per the kind's strategy.

    Instances follow the same contract as every other arm: fresh instances
    for per-case campaign isolation, one shared instance for stateful
    sweeps (``_repair_index`` keeps successive repairs decorrelated).
    """

    def __init__(self, kind: str, config: EnsembleConfig | None = None):
        if kind not in ENSEMBLE_KINDS:
            raise ValueError(f"unknown ensemble kind {kind!r}")
        self.kind = kind
        self.config = config or EnsembleConfig()
        if self.config.strategy not in STRATEGIES:
            raise EngineConfigError(
                f"unknown strategy {self.config.strategy!r}; choose from "
                f"{', '.join(STRATEGIES)}")
        if kind != "portfolio" and self.config.strategy != "first_pass":
            # cascade/switch are first-pass by construction; accepting the
            # param would run different semantics than the arm label claims.
            raise EngineConfigError(
                f"strategy= only applies to portfolio, not {kind}")
        members_text = self.config.members or DEFAULT_MEMBERS[kind]
        self.members = parse_members(members_text)
        for member in self.members:
            REGISTRY.get(member.spec.name)  # fail fast on unknown members
        routes_text = self.config.routes
        if kind == "switch" and not routes_text and not self.config.members:
            routes_text = DEFAULT_ROUTES
        self.routes = parse_routes(routes_text, len(self.members))
        if not 0 <= self.config.fallback < len(self.members):
            raise EngineConfigError(
                f"fallback index {self.config.fallback} out of range for "
                f"{len(self.members)} members")
        if self.config.member_workers < 1:
            raise EngineConfigError(
                f"member_workers must be >= 1, got "
                f"{self.config.member_workers}")
        if self.config.member_executor not in MEMBER_EXECUTORS:
            raise EngineConfigError(
                f"member_executor must be one of "
                f"{', '.join(MEMBER_EXECUTORS)}, got "
                f"{self.config.member_executor!r}")
        self.weights = parse_weights(self.config.weights, len(self.members))
        if self.weights is not None and (
                kind != "portfolio" or self.config.strategy != "vote"):
            raise EngineConfigError(
                "weights= only applies to portfolio?strategy=vote")
        if self.config.budget_tokens < 0 or self.config.budget_seconds < 0:
            raise EngineConfigError("budgets must be >= 0 (0 = unlimited)")
        if (self.config.budget_tokens or self.config.budget_seconds) \
                and kind != "portfolio":
            # cascade/switch stop on their own pass/escalation logic;
            # accepting a budget would silently truncate that chain.
            raise EngineConfigError(
                f"budget_tokens=/budget_seconds= only apply to portfolio, "
                f"not {kind}")
        self._cache = (_member_cache(self.config.member_cache_dir)
                       if self.config.member_cache_dir else None)
        self._repair_index = 0

    # -- member execution --------------------------------------------------

    def _member_model(self, member: Member) -> str:
        return member.model or self.config.model

    def _member_task(self, index: int, source: str, difficulty: int,
                     repair_index: int) -> tuple[str | None, tuple]:
        """The cache key (``None`` when uncached) and picklable
        :func:`_execute_member_task` args for one member — the single
        derivation both the inline and the pooled path consult, so they
        cannot drift cache-incompatible."""
        member = self.members[index]
        model = self._member_model(member)
        seed = member_seed(self.config.seed, repair_index, index)
        key = None
        if self._cache is not None:
            key = case_key(member.spec.to_string(), model,
                           self.config.temperature, seed,
                           fingerprint_case("member", source, None,
                                            difficulty, None))
        return key, (member.spec.to_string(), model,
                     self.config.temperature, seed, source, difficulty,
                     arm_label(member.spec, model))

    def _run_member(self, member: Member, index: int, source: str,
                    difficulty: int, repair_index: int):
        """Run (or replay) one member inline, returning its RepairReport."""
        key, task = self._member_task(index, source, difficulty,
                                      repair_index)
        if key is not None:
            cached = self._cache.get(key)
            if cached is not None:
                return cached[0]
        report = _execute_member_task(*task)
        if key is not None:
            self._cache.put(key, [report])
        return report

    def _consult(self, wave: list[int], source: str, difficulty: int,
                 repair_index: int) -> list:
        """Run (or replay) one wave's members, reports in wave order.

        Pooling never changes bytes: seeds are pure functions of the
        ensemble inputs, member executions share no state, and the member
        cache is read and written parent-side in declaration order.
        """
        if (len(wave) == 1 or self.config.member_workers == 1
                or self.config.member_executor == "serial"):
            return [self._run_member(self.members[index], index, source,
                                     difficulty, repair_index)
                    for index in wave]
        results: dict[int, object] = {}
        pending = []  # (wave position, cache key, picklable task args)
        for position, index in enumerate(wave):
            key, task = self._member_task(index, source, difficulty,
                                          repair_index)
            if key is not None:
                cached = self._cache.get(key)
                if cached is not None:
                    results[position] = cached[0]
                    continue
            pending.append((position, key, task))
        if pending:
            if self.config.member_executor == "process" \
                    and _process_pool_allowed():
                # Leased from the shared ExecutorService: one long-lived
                # process pool per width, reused across cases and arms,
                # reaped when idle, budget-accounted against campaigns.
                with EXECUTOR_SERVICE.lease(
                        "process", self.config.member_workers) as pool:
                    futures = [pool.submit(_execute_member_task, *task)
                               for _position, _key, task in pending]
                    try:
                        fresh = [future.result() for future in futures]
                    except BaseException:
                        # Shared pool: never leave wave tasks running
                        # behind a propagating error.
                        cancel_and_wait(futures)
                        raise
            else:
                # Deliberately ephemeral, not shared like the process
                # pools: a nested ensemble's wave submits from inside an
                # outer wave's worker thread, and blocking on an inner
                # future in a *shared* bounded pool would starve it into
                # deadlock.  The service still accounts the wave against
                # the core budget (the width may be clamped — pure
                # wall-clock) and thread spawn cost is noise next to a
                # member execution.
                workers = min(self.config.member_workers, len(pending))
                with EXECUTOR_SERVICE.ephemeral("thread", workers) as pool:
                    futures = [pool.submit(_execute_member_task, *task)
                               for _position, _key, task in pending]
                    fresh = [future.result() for future in futures]
            for (position, key, _task), report in zip(pending, fresh):
                if key is not None:
                    self._cache.put(key, [report])
                results[position] = report
        return [results[position] for position in range(len(wave))]

    def _plan_waves(self, order: list[int],
                    run_all: bool) -> list[list[int]]:
        """Partition the consultation order into concurrently-run waves.

        Only independent consultations widen: run-everyone portfolio
        strategies chunk the whole order; switch escalation chunks the
        members behind the routed one (whose verdict gates escalation, so
        it always runs alone first).  First-pass chains and cascades are
        order-dependent by definition and stay sequential at any
        ``member_workers``.
        """
        width = self.config.member_workers
        if width > 1 and run_all:
            return [order[start:start + width]
                    for start in range(0, len(order), width)]
        if width > 1 and self.kind == "switch" and self.config.escalate \
                and len(order) > 1:
            rest = order[1:]
            return [order[:1]] + [rest[start:start + width]
                                  for start in range(0, len(rest), width)]
        return [[index] for index in order]

    def _budget_exhausted(self, seconds: float, reports: list) -> bool:
        config = self.config
        if config.budget_tokens and \
                sum(r.tokens for r in reports) >= config.budget_tokens:
            return True
        return bool(config.budget_seconds
                    and seconds >= config.budget_seconds)

    # -- winner selection --------------------------------------------------

    def _member_order(self, source: str) -> tuple[list[int], float]:
        """The member consultation order and any routing overhead."""
        if self.kind != "switch":
            return list(range(len(self.members))), 0.0
        # Feedback-guided routing: one detector question picks the entry
        # point.  Routed through the process-wide case memo under the
        # same (source, collect=True) key the members' F1 detections
        # use — collection mode records the identical first error, and
        # only ``errors[0].kind`` matters here — so the interpreter
        # typically runs once per distinct case source per process.
        from ..miri import detect_case
        report = detect_case(source, collect=True)
        category = report.errors[0].kind if report.errors else None
        start = self.routes.get(category, self.config.fallback) \
            if category is not None else self.config.fallback
        order = [start]
        if self.config.escalate:
            order += [i for i in range(len(self.members)) if i != start]
        return order, self.config.detector_seconds

    def _select(self, reports: list, consulted: list[int]) -> int | None:
        """Index (into ``reports``) of the winning member, or ``None``."""
        passing = [i for i, report in enumerate(reports) if report.passed]
        if not passing:
            return None
        if self.config.strategy == "best_score" and self.kind == "portfolio":
            # Cleanest passing repair: fewest hallucinations, then fastest,
            # then declaration order — all deterministic.
            return min(passing, key=lambda i: (reports[i].hallucinations,
                                               reports[i].seconds, i))
        if self.config.strategy == "vote" and self.kind == "portfolio":
            votes: dict[str, list[int]] = {}
            for i in passing:
                votes.setdefault(reports[i].repaired_source, []).append(i)

            def tally(positions: list[int]) -> tuple[float, int]:
                # Unweighted votes count 1.0 each, so weights=1,1,... is
                # byte-identical to no weights at all.
                weight = sum(self.weights[consulted[pos]]
                             for pos in positions) \
                    if self.weights is not None else float(len(positions))
                return (weight, -positions[0])

            return max(votes.values(), key=tally)[0]
        return passing[0]  # first_pass (and every cascade/switch)

    # -- the engine protocol -----------------------------------------------

    def repair(self, source: str, difficulty: int = 2):
        from ..core.pipeline import RepairOutcome

        repair_index = self._repair_index
        self._repair_index += 1
        order, overhead_seconds = self._member_order(source)
        run_all = self.kind == "portfolio" \
            and self.config.strategy in ("best_score", "vote")
        waves = self._plan_waves(order, run_all)

        reports = []
        consulted: list[int] = []
        wave_of: list[int] = []
        seconds = overhead_seconds
        budget_hit = False
        for wave_number, wave in enumerate(waves):
            wave_reports = self._consult(wave, source, difficulty,
                                         repair_index)
            # A wave runs concurrently, so it charges its slowest member —
            # singleton waves (member_workers=1) degrade to the plain sum.
            seconds += max(r.seconds for r in wave_reports)
            for member_index, report in zip(wave, wave_reports):
                reports.append(report)
                consulted.append(member_index)
                wave_of.append(wave_number)
            if not run_all and any(r.passed for r in wave_reports):
                break
            if wave_number + 1 < len(waves) \
                    and self._budget_exhausted(seconds, reports):
                budget_hit = True
                break

        winner = self._select(reports, consulted)
        summaries = []
        for position, (member_index, report) in enumerate(zip(consulted,
                                                              reports)):
            member = self.members[member_index]
            summaries.append({
                "member": member.to_string(),
                "model": self._member_model(member),
                "index": member_index,
                "wave": wave_of[position],
                "passed": report.passed,
                "seconds": report.seconds,
                "tokens": report.tokens,
                "llm_calls": report.llm_calls,
            })

        best = reports[winner] if winner is not None else None
        failure = None
        if best is None:
            detail = "; budget exhausted" if budget_hit else ""
            failure = (f"no member passed "
                       f"({len(reports)}/{len(self.members)} consulted"
                       f"{detail})")
        return RepairOutcome(
            passed=best is not None,
            repaired_source=best.repaired_source if best else None,
            seconds=seconds,
            tokens=sum(r.tokens for r in reports),
            llm_calls=sum(r.llm_calls for r in reports),
            solutions_tried=sum(r.solutions_tried for r in reports),
            steps_executed=sum(r.steps_executed for r in reports),
            hallucinations=sum(r.hallucinations for r in reports),
            rollbacks=sum(r.rollbacks for r in reports),
            used_knowledge_base=any(r.used_knowledge_base for r in reports),
            used_feedback=any(r.used_feedback for r in reports),
            applied_rules=list(best.applied_rules) if best else [],
            failure_reason=failure,
            members=summaries,
        )


# ---------------------------------------------------------------------------
# Registration


def _ensemble_factory(kind: str):
    def build(*, model: str = "gpt-4", seed: int = 0,
              temperature: float = 0.5, **overrides) -> EnsembleEngine:
        config = EnsembleConfig(model=model, seed=seed,
                                temperature=temperature)
        apply_config_overrides(config, overrides)
        return EnsembleEngine(kind, config)
    return build


register_engine(
    "portfolio",
    summary="run member arms per case and keep a winner "
            "(strategy=first_pass|best_score|vote)",
    tags=("ensemble",),
)(_ensemble_factory("portfolio"))

register_engine(
    "cascade",
    summary="cheap model first, escalate to the expensive profile on "
            "failure (fast/slow thinking at the model level)",
    tags=("ensemble",),
)(_ensemble_factory("cascade"))

register_engine(
    "switch",
    summary="route each case to a member by detected UB category "
            "(AkiraRust-style feedback-guided switching)",
    tags=("ensemble",),
)(_ensemble_factory("switch"))


def _profile_arm_factory(profile_name: str):
    def build(*, model: str = "gpt-4", seed: int = 0,
              temperature: float = 0.5, **overrides):
        # Lazy: baselines import the registry at module load.
        from ..baselines.llm_only import LLMOnlyConfig, LLMOnlyRepair
        config = LLMOnlyConfig(model=profile_name, seed=seed,
                               temperature=temperature)
        apply_config_overrides(config, overrides)
        return LLMOnlyRepair(config)
    return build


# Every capability profile is a standalone arm under its own name, so
# member lists (and `repro campaign --engine gpt-4 --engine cascade`)
# compare models the way Fig. 8/9 label them.
for _name in sorted(PROFILES):
    register_engine(
        _name,
        summary=f"standalone {_name} arm (llm_only pinned to the "
                f"{_name} capability profile)",
        tags=("baseline", "model"),
    )(_profile_arm_factory(_name))
