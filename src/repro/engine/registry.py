"""Engine registry: arms declare themselves where they are implemented.

Every repair system — RustBrain, each ablation variant, and all baselines —
registers a factory under a stable name with :func:`register_engine`::

    @register_engine("llm_only", summary="single-prompt baseline")
    def _build(*, model="gpt-4", seed=0, temperature=0.5, **overrides):
        ...

Consumers resolve arms through :func:`create_engine`, which accepts either a
name, a ``name?key=value`` spec string, or an :class:`EngineSpec` — the one
configuration path shared by the CLI, the Campaign runner, and the benchmark
suite (replacing the old ``make_system`` if-chain).
"""

from __future__ import annotations

import importlib
import threading
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

from .spec import EngineSpec


@runtime_checkable
class RepairEngine(Protocol):
    """Structural protocol every arm satisfies: repair one program."""

    def repair(self, source: str, difficulty: int = 2):
        """Return a :class:`~repro.core.pipeline.RepairOutcome`."""
        ...


#: Factory signature: ``factory(*, model, seed, temperature, **overrides)``.
EngineFactory = Callable[..., RepairEngine]


class UnknownEngineError(ValueError):
    """Raised when a spec names an engine nobody registered."""


class EngineConfigError(ValueError):
    """Raised when a spec carries options the engine's config rejects."""


@dataclass(frozen=True)
class EngineInfo:
    name: str
    factory: EngineFactory
    summary: str = ""
    tags: tuple[str, ...] = ()


#: Modules that declare the built-in arms; imported lazily on first lookup
#: so ``import repro.engine`` stays cheap and cycle-free.
_BUILTIN_MODULES = (
    "repro.core.pipeline",
    "repro.baselines.llm_only",
    "repro.baselines.rustassistant",
    "repro.engine.compile_fix",
    # Composite engines + one auto-registered arm per model profile; must
    # import after the arms above so member lookups resolve everywhere
    # (including freshly-spawned process-pool workers).
    "repro.engine.ensemble",
)


@dataclass
class EngineRegistry:
    """Name → factory mapping with decorator-style registration."""

    _engines: dict[str, EngineInfo] = field(default_factory=dict)
    _builtins_loaded: bool = False
    _load_lock: threading.Lock = field(default_factory=threading.Lock,
                                       repr=False, compare=False)

    # -- registration ------------------------------------------------------

    def register(self, name: str, *, summary: str = "",
                 tags: tuple[str, ...] = (), replace: bool = False):
        """Decorator registering ``factory`` under ``name``."""
        def decorator(factory: EngineFactory) -> EngineFactory:
            if not replace and name in self._engines:
                raise ValueError(f"engine {name!r} is already registered")
            self._engines[name] = EngineInfo(name=name, factory=factory,
                                             summary=summary,
                                             tags=tuple(tags))
            return factory
        return decorator

    # -- lookup ------------------------------------------------------------

    def _ensure_builtins(self) -> None:
        # Double-checked: campaign workers may race the first lookup, and the
        # loaded flag must only flip after the arm modules finish importing.
        if self._builtins_loaded:
            return
        with self._load_lock:
            if self._builtins_loaded:
                return
            for module in _BUILTIN_MODULES:
                importlib.import_module(module)
            self._builtins_loaded = True

    def get(self, name: str) -> EngineInfo:
        self._ensure_builtins()
        try:
            return self._engines[name]
        except KeyError:
            known = ", ".join(sorted(self._engines)) or "<none>"
            raise UnknownEngineError(
                f"unknown engine {name!r}; registered engines: {known}"
            ) from None

    def names(self) -> list[str]:
        self._ensure_builtins()
        return sorted(self._engines)

    def infos(self) -> list[EngineInfo]:
        self._ensure_builtins()
        return [self._engines[name] for name in sorted(self._engines)]

    def __contains__(self, name: str) -> bool:
        self._ensure_builtins()
        return name in self._engines

    # -- construction ------------------------------------------------------

    def create(self, spec: EngineSpec | str, *, model: str = "gpt-4",
               seed: int = 0, temperature: float = 0.5,
               **overrides) -> RepairEngine:
        """Instantiate the engine a spec describes.

        Reserved spec params (``model``/``seed``/``temperature``) override
        the keyword defaults; the remaining params become typed config
        overrides merged over any ``overrides`` kwargs.
        """
        spec = EngineSpec.coerce(spec)
        info = self.get(spec.name)
        factory_kwargs = {"model": model, "seed": seed,
                          "temperature": temperature}
        factory_kwargs.update(spec.factory_kwargs())
        merged = dict(overrides)
        merged.update(spec.overrides())
        return info.factory(**factory_kwargs, **merged)


def _check_override_type(key: str, current, value) -> None:
    """Reject type-mismatched overrides instead of storing them silently.

    Without this, a typo'd boolean like ``kb=none`` coerces to the truthy
    string ``"none"`` and the arm quietly runs WITH the knowledge base —
    corrupting ablation results with no error.
    """
    if current is None or value is None:
        return
    if isinstance(current, bool):
        ok = isinstance(value, bool)
    elif isinstance(current, float):
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif isinstance(current, int):
        ok = isinstance(value, int) and not isinstance(value, bool)
    else:
        ok = isinstance(value, type(current))
    if not ok:
        raise EngineConfigError(
            f"option {key!r} expects {type(current).__name__} "
            f"(e.g. {current!r}), got {value!r}")


def apply_config_overrides(config, overrides: dict):
    """Setattr each override onto a config dataclass, validating keys and
    value types against the config's defaults."""
    for key, value in overrides.items():
        if not hasattr(config, key):
            valid = ", ".join(sorted(vars(config)))
            raise EngineConfigError(
                f"unknown option {key!r} for {type(config).__name__}; "
                f"valid options: {valid}")
        _check_override_type(key, getattr(config, key), value)
        setattr(config, key, value)
    return config


#: The process-wide default registry.
REGISTRY = EngineRegistry()

register_engine = REGISTRY.register
create_engine = REGISTRY.create


def available_engines() -> list[EngineInfo]:
    """All registered arms, built-ins included, sorted by name."""
    return REGISTRY.infos()
