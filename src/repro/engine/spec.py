"""Engine specifications: one string grammar for CLI, benchmarks, and code.

A spec names a registered engine and optionally carries configuration in a
URL-query-ish tail::

    rustbrain
    rustbrain?kb=off&rollback=none&temperature=0.2
    llm_only?attempts=5

Keys are config-field names or their short aliases (``kb``, ``feedback``,
``pruning``); values are coerced by shape (ints, floats, on/off booleans,
rollback-policy names).  ``model``/``seed``/``temperature`` are reserved
keys routed to the engine factory itself, so a single spec string fully
pins an experimental arm.  Parsing and formatting round-trip exactly.

Structured values stay plain strings here and are interpreted by the
owning config — the ensemble keys (``members``, ``routes``, ``weights``)
are the worked example: comma/plus-separated lists that
:mod:`~repro.engine.ensemble` parses and validates after coercion.  The
full grammar, escapes included, lives in ``docs/quickstart.md``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: Short query keys → config field names.
PARAM_ALIASES = {
    "kb": "use_knowledge_base",
    "feedback": "use_feedback",
    "pruning": "use_pruning",
}

#: Keys consumed by the engine factory rather than the engine config.
RESERVED_KEYS = frozenset({"model", "seed", "temperature"})

_TRUE_WORDS = frozenset({"on", "true", "yes"})
_FALSE_WORDS = frozenset({"off", "false", "no"})
_NAME_RE = re.compile(r"^[a-z][a-z0-9_.-]*$")
_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")


class SpecError(ValueError):
    """Raised for malformed spec strings."""


@dataclass(frozen=True)
class EngineSpec:
    """Parsed ``name?key=value&...`` engine specification."""

    name: str
    #: Ordered raw key/value pairs, exactly as written (round-trip safe).
    params: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "EngineSpec":
        text = text.strip()
        if not text:
            raise SpecError("empty engine spec")
        name, _, query = text.partition("?")
        if not _NAME_RE.match(name):
            raise SpecError(f"invalid engine name {name!r} in spec {text!r}")
        params: list[tuple[str, str]] = []
        if query:
            for chunk in query.split("&"):
                key, sep, value = chunk.partition("=")
                if not sep or not key or not value:
                    raise SpecError(
                        f"malformed parameter {chunk!r} in spec {text!r} "
                        "(expected key=value)")
                params.append((key, value))
        return cls(name, tuple(params))

    @classmethod
    def coerce(cls, spec: "EngineSpec | str") -> "EngineSpec":
        return spec if isinstance(spec, EngineSpec) else cls.parse(spec)

    @classmethod
    def make(cls, name: str, **params) -> "EngineSpec":
        """Build a spec from typed python values (bools become on/off)."""
        return cls(name, tuple((key, _format_value(value))
                               for key, value in params.items()))

    # -- formatting --------------------------------------------------------

    def to_string(self) -> str:
        if not self.params:
            return self.name
        query = "&".join(f"{key}={value}" for key, value in self.params)
        return f"{self.name}?{query}"

    def __str__(self) -> str:
        return self.to_string()

    # -- interpretation ----------------------------------------------------

    def factory_kwargs(self) -> dict:
        """The reserved params (model/seed/temperature), typed."""
        return {key: _coerce_value(key, value)
                for key, value in self.params if key in RESERVED_KEYS}

    def overrides(self) -> dict:
        """Config overrides: aliases expanded, values typed."""
        out: dict = {}
        for key, value in self.params:
            if key in RESERVED_KEYS:
                continue
            out[PARAM_ALIASES.get(key, key)] = _coerce_value(key, value)
        return out


def _coerce_value(key: str, raw: str):
    if key == "rollback":
        from ..core.agents.rollback import RollbackPolicy
        try:
            return RollbackPolicy(raw)
        except ValueError:
            choices = ", ".join(p.value for p in RollbackPolicy)
            raise SpecError(
                f"unknown rollback policy {raw!r}; choose from {choices}"
            ) from None
    if key == "model":
        return raw
    if key == "seed":
        if not _INT_RE.match(raw):
            raise SpecError(f"seed must be an integer, got {raw!r}")
        return int(raw)
    if key == "temperature":
        if not (_INT_RE.match(raw) or _FLOAT_RE.match(raw)):
            raise SpecError(f"temperature must be a number, got {raw!r}")
        return float(raw)
    lowered = raw.lower()
    if lowered in _TRUE_WORDS:
        return True
    if lowered in _FALSE_WORDS:
        return False
    if _INT_RE.match(raw):
        return int(raw)
    if _FLOAT_RE.match(raw):
        return float(raw)
    return raw


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "on" if value else "off"
    if hasattr(value, "value"):  # enums (e.g. RollbackPolicy)
        return str(value.value)
    return str(value)


def arm_label(spec: EngineSpec | str, model: str) -> str:
    """The paper's arm-labelling convention, shared by campaigns and bench.

    The plain standalone-LLM arm is labelled with the bare model name
    (Fig. 8/9 call it just "GPT-4"); arms that pin their own models —
    the auto-registered per-profile arms and the ensemble engines, whose
    members each bind a profile — are labelled by the spec alone; every
    other arm, including a parameterised ``llm_only``, is ``model+spec``.
    """
    spec = EngineSpec.coerce(spec)
    if spec.name == "llm_only" and not spec.params:
        return model
    if _model_free(spec.name):
        return spec.to_string()
    return f"{model}+{spec.to_string()}"


def _model_free(name: str) -> bool:
    """True for engines whose arm identity does not include the campaign
    model (lazy imports: profiles and ensemble both import this module)."""
    from ..llm.profiles import PROFILES
    if name in PROFILES:
        return True
    from .ensemble import ENSEMBLE_KINDS
    return name in ENSEMBLE_KINDS
