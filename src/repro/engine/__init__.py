"""The public repair-engine API.

One import surface for everything above the individual arms::

    from repro.engine import create_engine, Campaign, EngineSpec

    engine = create_engine("rustbrain?kb=off&temperature=0.2", seed=7)
    outcome = engine.repair(buggy_source)

    campaign = Campaign(["rustbrain", "llm_only"], workers=4, seed=3)
    result = campaign.run()
    result.save("campaign.json")

Arms register themselves where they are implemented
(:mod:`repro.core.pipeline`, :mod:`repro.baselines.llm_only`,
:mod:`repro.baselines.rustassistant`) via :func:`register_engine`; the
registry imports those modules lazily on first lookup.
"""

from .cache import (CACHE_EPOCH, CACHE_SCHEMA, ResultCache, arm_key,
                    case_key, fingerprint_case, fingerprint_dataset)
from .campaign import (EXECUTORS, ArmRun, Campaign, CampaignResult,
                       case_seed, hoist_pinned_seed, run_cases)
from .faults import (FAULT_STATS, CacheIOFault, FaultPlan, FaultSpecError,
                     InjectedFault, TransientLLMError, TransientLLMTimeout,
                     TransientServiceError, active_plan, install,
                     maybe_inject)
from .journal import (JOURNAL_SCHEMA, CampaignJournal, JournalError)
from .pool import (EXECUTOR_SERVICE, POOL_KINDS, CoreBudget,
                   ExecutorService)
from .retry import (CAMPAIGN_RETRY, LLM_RETRY, RETRY_EVENTS, SERVICE_RETRY,
                    RetryNotifier, RetryPolicy)
from .ensemble import (DEFAULT_MEMBERS, ENSEMBLE_KINDS, MEMBER_EXECUTORS,
                       STRATEGIES, EnsembleConfig, EnsembleEngine, Member,
                       member_seed, parse_member, parse_members,
                       parse_routes, parse_weights)
from .registry import (REGISTRY, EngineConfigError, EngineInfo,
                       EngineRegistry, RepairEngine, UnknownEngineError,
                       apply_config_overrides, available_engines,
                       create_engine, register_engine)
from .results import CaseResult, SystemResults
from .spec import EngineSpec, SpecError
from .telemetry import (CacheQueried, CampaignObserver, CaseFinished,
                        CaseStarted, EngineFinished, EngineStarted,
                        MemberFinished, ProgressPrinter, RetryAttempted,
                        RoundFinished, TelemetryLog)
from .types import RepairReport, RepairRequest, run_request

__all__ = [
    "ArmRun",
    "CACHE_SCHEMA",
    "CAMPAIGN_RETRY",
    "CacheIOFault",
    "CacheQueried",
    "Campaign",
    "CampaignJournal",
    "CampaignObserver",
    "CampaignResult",
    "CaseFinished",
    "CaseResult",
    "CaseStarted",
    "CoreBudget",
    "EXECUTORS",
    "EXECUTOR_SERVICE",
    "EngineConfigError",
    "EngineFinished",
    "EngineInfo",
    "EngineRegistry",
    "EngineSpec",
    "EngineStarted",
    "ExecutorService",
    "FAULT_STATS",
    "FaultPlan",
    "FaultSpecError",
    "InjectedFault",
    "JOURNAL_SCHEMA",
    "JournalError",
    "LLM_RETRY",
    "POOL_KINDS",
    "ProgressPrinter",
    "REGISTRY",
    "RETRY_EVENTS",
    "RepairEngine",
    "RepairReport",
    "RepairRequest",
    "ResultCache",
    "RetryAttempted",
    "RetryNotifier",
    "RetryPolicy",
    "RoundFinished",
    "SERVICE_RETRY",
    "SpecError",
    "SystemResults",
    "TelemetryLog",
    "TransientLLMError",
    "TransientLLMTimeout",
    "TransientServiceError",
    "UnknownEngineError",
    "active_plan",
    "apply_config_overrides",
    "arm_key",
    "available_engines",
    "case_key",
    "case_seed",
    "create_engine",
    "fingerprint_case",
    "fingerprint_dataset",
    "install",
    "maybe_inject",
    "register_engine",
    "run_cases",
    "run_request",
]
