"""Statistics helpers: rates, Wilson confidence intervals, summaries.

These live in the engine layer because :mod:`repro.engine.results` (the
canonical result model) aggregates with them; :mod:`repro.bench.stats`
re-exports everything so bench-side imports keep working and the
engine→bench dependency stays one-way (bench consumes engine, never the
reverse).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RateCI:
    rate: float
    low: float
    high: float
    n: int

    def __str__(self) -> str:
        return (f"{100 * self.rate:.1f}% "
                f"[{100 * self.low:.1f}, {100 * self.high:.1f}] (n={self.n})")


def wilson_interval(successes: int, n: int,
                    confidence: float = 0.95) -> RateCI:
    """Wilson score interval for a binomial proportion."""
    if n == 0:
        return RateCI(0.0, 0.0, 0.0, 0)
    z = {0.90: 1.6449, 0.95: 1.96, 0.99: 2.5758}.get(confidence, 1.96)
    p = successes / n
    denom = 1 + z * z / n
    centre = (p + z * z / (2 * n)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
    low = max(0.0, min(centre - margin, p))
    high = min(1.0, max(centre + margin, p))
    return RateCI(p, low, high, n)


def mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def stdev(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def geometric_mean(values: list[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))
