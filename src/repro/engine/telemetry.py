"""Structured campaign telemetry: typed events, observers, collectors.

The :class:`~repro.engine.campaign.Campaign` runner emits one event object
per lifecycle edge — arm start/finish, case start/finish, shard-round
finish — to every attached :class:`CampaignObserver`.  Observers are called
under the campaign's lock (worker threads serialize through it), so simple
observers need no synchronisation of their own; ``on_case_*`` arrival order
between shards is scheduling-dependent, which is why :class:`TelemetryLog`
only ever aggregates order-insensitive counts into its JSON summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TextIO


# ---------------------------------------------------------------------------
# Events


@dataclass(frozen=True)
class EngineStarted:
    engine: str
    cases: int


@dataclass(frozen=True)
class EngineFinished:
    engine: str
    cases: int
    passed: int
    acceptable: int
    virtual_seconds: float


@dataclass(frozen=True)
class CaseStarted:
    engine: str
    case: str
    index: int
    total: int


@dataclass(frozen=True)
class CaseFinished:
    engine: str
    case: str
    index: int
    total: int
    passed: bool
    acceptable: bool
    seconds: float


@dataclass(frozen=True)
class RoundFinished:
    """One shard of the dataset finished for one arm (progress heartbeat)."""

    engine: str
    round_index: int
    rounds: int
    completed: int
    total: int
    passed_so_far: int


@dataclass(frozen=True)
class MemberFinished:
    """One ensemble member finished (or was skipped) within one case.

    Emitted once per entry in a report's ``members`` list (the members the
    ensemble actually consulted, in consultation order), immediately before
    that case's :class:`CaseFinished` — for live runs, cache replays, and
    pooled workers alike, since the summaries travel inside the
    :class:`~repro.engine.types.RepairReport` itself.
    """

    engine: str
    case: str
    index: int
    member: str
    model: str
    member_index: int
    passed: bool
    seconds: float
    #: Consultation wave: members sharing a wave number ran concurrently
    #: (``member_workers > 1``); sequential consultation numbers waves
    #: 0, 1, 2, … one member each.
    wave: int = 0


@dataclass(frozen=True)
class CacheQueried:
    """The result cache was consulted for one case (hit or miss).

    Only emitted when the campaign runs with a cache attached; a warm
    re-run of an identical campaign shows ``cases`` hits and zero misses —
    the telemetry-level proof that no engine executed.
    """

    engine: str
    case: str
    index: int
    hit: bool
    key: str


@dataclass(frozen=True)
class RetryAttempted:
    """A transient failure was retried (LLM call, worker shard
    re-dispatch, service job, or HTTP client reconnect).

    Emitted *before* the backoff sleep for retry number ``attempt`` (one-
    based; ``max_attempts`` is the policy's total-try budget).  Retry
    events are wall-clock diagnostics: :class:`TelemetryLog` records them
    but deliberately keeps them out of :meth:`TelemetryLog.to_dict`, so a
    faulted-but-recovered campaign still serializes byte-identical to a
    fault-free one.
    """

    site: str
    key: str
    attempt: int
    max_attempts: int
    delay_seconds: float
    error: str


CampaignEvent = (EngineStarted | EngineFinished | CaseStarted
                 | CaseFinished | RoundFinished | MemberFinished
                 | CacheQueried | RetryAttempted)


# ---------------------------------------------------------------------------
# Observers


class CampaignObserver:
    """No-op base; override the hooks you care about."""

    def on_engine_start(self, event: EngineStarted) -> None:
        pass

    def on_engine_done(self, event: EngineFinished) -> None:
        pass

    def on_case_start(self, event: CaseStarted) -> None:
        pass

    def on_case_done(self, event: CaseFinished) -> None:
        pass

    def on_round(self, event: RoundFinished) -> None:
        pass

    def on_member_done(self, event: MemberFinished) -> None:
        pass

    def on_cache(self, event: CacheQueried) -> None:
        pass

    def on_retry(self, event: RetryAttempted) -> None:
        pass


@dataclass
class TelemetryLog(CampaignObserver):
    """Records every event and aggregates order-insensitive counters."""

    events: list = field(default_factory=list)

    def on_engine_start(self, event: EngineStarted) -> None:
        self.events.append(event)

    def on_engine_done(self, event: EngineFinished) -> None:
        self.events.append(event)

    def on_case_start(self, event: CaseStarted) -> None:
        self.events.append(event)

    def on_case_done(self, event: CaseFinished) -> None:
        self.events.append(event)

    def on_round(self, event: RoundFinished) -> None:
        self.events.append(event)

    def on_member_done(self, event: MemberFinished) -> None:
        self.events.append(event)

    def on_cache(self, event: CacheQueried) -> None:
        self.events.append(event)

    def on_retry(self, event: RetryAttempted) -> None:
        self.events.append(event)

    # -- summaries ---------------------------------------------------------

    def count(self, event_type: type) -> int:
        return sum(isinstance(event, event_type) for event in self.events)

    def cache_counts(self) -> tuple[int, int]:
        """``(hits, misses)`` across every arm of the run."""
        hits = sum(1 for event in self.events
                   if isinstance(event, CacheQueried) and event.hit)
        misses = self.count(CacheQueried) - hits
        return hits, misses

    def to_dict(self) -> dict:
        """Deterministic summary: counts only, never arrival order.

        :class:`RetryAttempted` events are deliberately absent — retry
        counts depend on the active fault plan and on pool scheduling,
        and this summary is embedded in ``campaign.json``, which must
        stay byte-identical between faulted and fault-free runs.
        """
        hits, misses = self.cache_counts()
        return {
            "engines": self.count(EngineFinished),
            "cases_started": self.count(CaseStarted),
            "cases_finished": self.count(CaseFinished),
            "rounds": self.count(RoundFinished),
            "members_finished": self.count(MemberFinished),
            "cache_hits": hits,
            "cache_misses": misses,
        }


class ProgressPrinter(CampaignObserver):
    """Human-oriented progress lines for long campaign runs."""

    def __init__(self, stream: TextIO | None = None, per_case: bool = False):
        import sys
        self.stream = stream if stream is not None else sys.stderr
        self.per_case = per_case
        self._cache_hits = 0
        self._cache_misses = 0

    def _emit(self, line: str) -> None:
        print(line, file=self.stream, flush=True)

    def on_engine_start(self, event: EngineStarted) -> None:
        self._cache_hits = 0
        self._cache_misses = 0
        self._emit(f"[{event.engine}] starting: {event.cases} cases")

    def on_cache(self, event: CacheQueried) -> None:
        if event.hit:
            self._cache_hits += 1
        else:
            self._cache_misses += 1

    def on_round(self, event: RoundFinished) -> None:
        self._emit(f"[{event.engine}] round {event.round_index + 1}"
                   f"/{event.rounds}: {event.completed}/{event.total} cases,"
                   f" {event.passed_so_far} passed")

    def on_retry(self, event: RetryAttempted) -> None:
        self._emit(f"[{event.site}] transient failure, retry "
                   f"{event.attempt}/{event.max_attempts - 1} in "
                   f"{event.delay_seconds:.2f}s: {event.error}")

    def on_case_done(self, event: CaseFinished) -> None:
        if self.per_case:
            verdict = "pass" if event.passed else "FAIL"
            self._emit(f"[{event.engine}]   {event.case}: {verdict} "
                       f"({event.seconds:.1f}s virtual)")

    def on_engine_done(self, event: EngineFinished) -> None:
        cache = ""
        if self._cache_hits or self._cache_misses:
            cache = (f", cache {self._cache_hits} hit"
                     f"/{self._cache_misses} miss")
        self._emit(f"[{event.engine}] done: {event.passed}/{event.cases} "
                   f"passed, {event.acceptable}/{event.cases} acceptable"
                   f"{cache}")
