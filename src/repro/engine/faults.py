"""Deterministic, seeded fault injection across the whole stack.

Chaos testing only pays off when a failing run can be replayed: a fault
plan here is a *pure function* — whether call N of site S fails is fully
determined by ``(plan seed, site, kind, key, attempt)``, never by wall
clock, scheduling, or a shared RNG stream.  Two consequences:

* A faulted campaign is reproducible bit-for-bit: rerunning with the same
  plan injects the same faults at the same points.
* Recovery is *provably* bounded.  A fault decision at ``attempt >=
  depth`` always comes back ``False``, so any retry loop with more than
  ``depth`` attempts is guaranteed to eventually reach the real
  operation.  The stock policies in :mod:`repro.engine.retry` use four
  attempts against the default depth of two — a plan cannot starve them
  unless ``depth`` is raised explicitly to model a hard outage.

Plans are written as spec strings so they cross the fork boundary the
same way engine specs do (see DESIGN.md, "worker globals"): either via
the ``REPRO_FAULTS`` environment variable or as explicit task arguments::

    REPRO_FAULTS="llm:rate=0.1;worker:crash=0.05;cache:io=0.02,seed=7"

Each ``;``-separated clause names a site; its ``,``-separated
assignments set per-kind rates in ``[0, 1]``.  The global options
``seed``, ``depth``, and ``hang_seconds`` may ride in any clause.
Supported sites and kinds:

=========  ===================  =============================================
site       kinds                effect at the hook
=========  ===================  =============================================
``llm``    ``rate``,            transient error / transient timeout raised
           ``timeout``          before any accounting; retried by the client
``worker`` ``crash``, ``hang``  process-pool worker ``os._exit``\\ s (shard is
                                re-dispatched) / sleeps ``hang_seconds``
``cache``  ``io``               :class:`CacheIOFault` at the disk layer;
                                degrades to a miss, never crashes
``service`` ``fail``            transient job failure before execution;
                                retried by the service job runner
=========  ===================  =============================================

Injection sites call :func:`maybe_inject` (raising sites) or the plan's
:meth:`FaultPlan.hang`/:meth:`FaultPlan.crash` helpers; every injected
fault is counted in the process-wide :data:`FAULT_STATS`.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time

ENV_VAR = "REPRO_FAULTS"

#: ``site -> valid kinds`` for plan validation.
SITES: dict[str, tuple[str, ...]] = {
    "llm": ("rate", "timeout"),
    "worker": ("crash", "hang"),
    "cache": ("io",),
    "service": ("fail",),
}

#: Options that configure the whole plan rather than one site.
GLOBAL_OPTIONS = ("seed", "depth", "hang_seconds")

#: Consecutive-failure bound: decisions at ``attempt >= depth`` are
#: always ``False``, so retry loops with ``attempts > depth`` terminate.
DEFAULT_DEPTH = 2

DEFAULT_HANG_SECONDS = 0.05


class FaultSpecError(ValueError):
    """A fault plan string does not parse or names an unknown site/kind."""


class InjectedFault(Exception):
    """Base class for every deliberately injected failure."""


class TransientLLMError(InjectedFault):
    """Injected transient model failure (retried by the LLM client)."""


class TransientLLMTimeout(TransientLLMError):
    """Injected model timeout — a flavour of transient LLM failure."""


class TransientServiceError(InjectedFault):
    """Injected transient job failure (retried by the service runner)."""


class CacheIOFault(InjectedFault, OSError):
    """Injected cache I/O error.  Subclasses :class:`OSError` so the
    cache's existing corrupt-entry handling degrades it to a miss."""


class FaultStats:
    """Process-wide injected-fault counters (``site:kind -> count``).

    Mirrors :class:`repro.miri.DetectorStats`: lock-guarded, with a
    consistent :meth:`snapshot` for telemetry endpoints and benchmarks.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def record(self, site: str, kind: str) -> None:
        with self._lock:
            label = f"{site}:{kind}"
            self._counts[label] = self._counts.get(label, 0) + 1

    def snapshot(self) -> dict:
        with self._lock:
            return {"injected": dict(sorted(self._counts.items())),
                    "total": sum(self._counts.values())}

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()


FAULT_STATS = FaultStats()


class FaultPlan:
    """An immutable set of per-``(site, kind)`` fault rates plus the seed
    that makes every injection decision deterministic."""

    __slots__ = ("_rates", "seed", "depth", "hang_seconds")

    def __init__(self, rates: dict | None = None, *, seed: int = 0,
                 depth: int = DEFAULT_DEPTH,
                 hang_seconds: float = DEFAULT_HANG_SECONDS):
        rates = dict(rates or {})
        for (site, kind), rate in rates.items():
            _validate(site, kind, rate)
        if depth < 0:
            raise FaultSpecError("depth must be >= 0")
        if hang_seconds < 0:
            raise FaultSpecError("hang_seconds must be >= 0")
        self._rates = {key: float(rate)
                       for key, rate in rates.items() if rate > 0}
        self.seed = int(seed)
        self.depth = int(depth)
        self.hang_seconds = float(hang_seconds)

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, text: str | None) -> "FaultPlan":
        """Parse a plan spec string (see the module docstring grammar)."""
        text = (text or "").strip()
        if not text:
            return EMPTY_PLAN
        rates: dict = {}
        options = {"seed": 0, "depth": DEFAULT_DEPTH,
                   "hang_seconds": DEFAULT_HANG_SECONDS}
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            site, colon, body = clause.partition(":")
            site = site.strip()
            if not colon:
                body, site = site, ""
            for assignment in body.split(","):
                assignment = assignment.strip()
                if not assignment:
                    continue
                name, equals, raw = assignment.partition("=")
                name = name.strip()
                if not equals:
                    raise FaultSpecError(
                        f"expected name=value, got {assignment!r}")
                try:
                    value = float(raw.strip())
                except ValueError:
                    raise FaultSpecError(
                        f"non-numeric value in {assignment!r}") from None
                if name in GLOBAL_OPTIONS:
                    options[name] = value
                elif site:
                    rates[(site, name)] = value
                else:
                    raise FaultSpecError(
                        f"{name!r} is not a global option and the clause "
                        f"{clause!r} names no site")
        return cls(rates, seed=int(options["seed"]),
                   depth=int(options["depth"]),
                   hang_seconds=options["hang_seconds"])

    @classmethod
    def coerce(cls, value) -> "FaultPlan":
        """``None`` -> the ambient plan; a string -> parsed; a plan -> itself."""
        if value is None:
            return active_plan()
        if isinstance(value, FaultPlan):
            return value
        return cls.parse(str(value))

    def to_string(self) -> str:
        """Canonical spec string; ``parse(to_string())`` round-trips."""
        clauses = [f"{site}:{kind}={rate:g}"
                   for (site, kind), rate in sorted(self._rates.items())]
        options = []
        if self.seed:
            options.append(f"seed={self.seed}")
        if self.depth != DEFAULT_DEPTH:
            options.append(f"depth={self.depth}")
        if self.hang_seconds != DEFAULT_HANG_SECONDS:
            options.append(f"hang_seconds={self.hang_seconds:g}")
        if options and not clauses:
            return ";".join([",".join(options)])
        if options:
            clauses[-1] += "," + ",".join(options)
        return ";".join(clauses)

    # -- decisions ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return bool(self._rates)

    def rate(self, site: str, kind: str) -> float:
        return self._rates.get((site, kind), 0.0)

    def decide(self, site: str, kind: str, key: str,
               attempt: int = 0) -> bool:
        """Deterministically decide whether this injection point fires.

        The decision hashes ``(seed, site, kind, key, attempt)`` into
        ``[0, 1)`` and compares against the configured rate — no shared
        RNG stream, so decisions are independent of call order and of
        which worker evaluates them.  ``attempt >= depth`` is always
        ``False``: consecutive failures of one logical operation are
        bounded, which is what makes recovery provable.
        """
        rate = self._rates.get((site, kind))
        if not rate:
            return False
        if attempt >= self.depth:
            return False
        material = f"{self.seed}|{site}|{kind}|{key}|{attempt}"
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return unit < rate

    # -- worker-site helpers ----------------------------------------------

    def hang(self, key: str, attempt: int = 0) -> None:
        """Sleep ``hang_seconds`` if the ``worker:hang`` decision fires."""
        if self.decide("worker", "hang", key, attempt):
            FAULT_STATS.record("worker", "hang")
            time.sleep(self.hang_seconds)

    def crash(self, key: str, attempt: int = 0) -> None:
        """``os._exit`` the process if the ``worker:crash`` decision fires.

        Only ever called from process-pool workers: the parent observes a
        ``BrokenProcessPool`` and re-dispatches the uncollected shards.
        """
        if self.decide("worker", "crash", key, attempt):
            FAULT_STATS.record("worker", "crash")
            os._exit(3)

    def __repr__(self) -> str:
        return f"FaultPlan({self.to_string()!r})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return (self._rates == other._rates and self.seed == other.seed
                and self.depth == other.depth
                and self.hang_seconds == other.hang_seconds)


def _validate(site: str, kind: str, rate) -> None:
    kinds = SITES.get(site)
    if kinds is None:
        raise FaultSpecError(
            f"unknown fault site {site!r} (sites: {', '.join(SITES)})")
    if kind not in kinds:
        raise FaultSpecError(
            f"site {site!r} has no fault kind {kind!r} "
            f"(kinds: {', '.join(kinds)})")
    try:
        rate = float(rate)
    except (TypeError, ValueError):
        raise FaultSpecError(f"rate for {site}:{kind} is not a number") from None
    if not 0.0 <= rate <= 1.0:
        raise FaultSpecError(
            f"rate for {site}:{kind} must be in [0, 1], got {rate:g}")


EMPTY_PLAN = FaultPlan()


# ---------------------------------------------------------------------------
# The ambient plan: an explicit in-process override wins, else REPRO_FAULTS.

_override: FaultPlan | None = None
_env_cache: tuple[str, FaultPlan] | None = None
_env_lock = threading.Lock()


def active_plan() -> FaultPlan:
    """The plan injection sites consult: the installed override if any,
    else the parsed ``REPRO_FAULTS`` environment variable, else empty."""
    if _override is not None:
        return _override
    raw = os.environ.get(ENV_VAR, "")
    if not raw:
        return EMPTY_PLAN
    global _env_cache
    with _env_lock:
        if _env_cache is None or _env_cache[0] != raw:
            _env_cache = (raw, FaultPlan.parse(raw))
        return _env_cache[1]


def install(plan) -> FaultPlan | None:
    """Set (or with ``None``, clear) the process-wide plan override.

    Returns the previous override so callers can scope an installation::

        previous = install(my_plan)
        try:
            ...
        finally:
            install(previous)
    """
    global _override
    previous = _override
    _override = FaultPlan.coerce(plan) if plan is not None else None
    return previous


# ---------------------------------------------------------------------------
# Raising injection hooks (one call per site in the production code).

_RAISERS = {
    ("llm", "timeout"): lambda key: TransientLLMTimeout(
        f"injected model timeout ({key})"),
    ("llm", "rate"): lambda key: TransientLLMError(
        f"injected transient model error ({key})"),
    ("cache", "io"): lambda key: CacheIOFault(
        f"injected cache I/O error ({key})"),
    ("service", "fail"): lambda key: TransientServiceError(
        f"injected transient job failure ({key})"),
}

#: Per-site probe order (``llm`` checks timeouts before plain errors).
_SITE_KINDS = {"llm": ("timeout", "rate"), "cache": ("io",),
               "service": ("fail",)}


def maybe_inject(site: str, *, key: str, attempt: int = 0,
                 plan: FaultPlan | None = None) -> None:
    """Raise the site's injected fault if the active plan says so.

    No-op (and near-free) when no plan is active.  ``attempt`` is the
    caller's zero-based retry attempt; passing it through is what bounds
    consecutive failures to the plan's ``depth``.
    """
    plan = plan if plan is not None else active_plan()
    if not plan.enabled:
        return
    for kind in _SITE_KINDS.get(site, ()):
        if plan.decide(site, kind, key, attempt):
            FAULT_STATS.record(site, kind)
            raise _RAISERS[(site, kind)](key)
