"""Shared execution resources: one service owns every worker pool.

Campaigns shard cases across thread/process pools, ensembles consult
members in concurrent waves, and the benchmark figures fan whole stateful
arms out per seed — before this module each of those built (or hoarded)
its own ``concurrent.futures`` executor.  :class:`ExecutorService` is the
single owner:

* **Shared keyed pools** (:meth:`ExecutorService.lease`): one executor
  per ``(kind, workers)``, created on first lease and *reused* across
  campaigns and ensemble waves — a repeated process campaign no longer
  pays a fork-and-import storm per run.
* **Idle-timeout reaping**: a pool whose last lease ended more than
  ``idle_timeout`` seconds ago (``$REPRO_POOL_IDLE_SECONDS``, default
  300) is shut down on the next service interaction (or an explicit
  :meth:`~ExecutorService.reap_idle`) and transparently recreated when
  next leased.  Leased pools are never reaped.
* **A core-budget accountant** (:class:`CoreBudget`): a shared pool
  charges its worker slots against one process-wide budget
  (``$REPRO_CORE_BUDGET``, default the CPU count) while it is leased —
  concurrent leases of one pool share the charge, since they share the
  workers — and every :meth:`~ExecutorService.ephemeral` pool grants
  its width dynamically against what remains, so nested
  campaign×member parallelism degrades to fewer workers instead of
  oversubscribing the machine.  Worker counts are pure wall-clock
  everywhere in this codebase — clamping a pool never changes a byte of
  any result (``benchmarks/ensemble_smoke.py`` gates exactly that).
* **Fork safety**: a forked child (e.g. a campaign process-pool worker)
  inherits the pool table but not the executors' manager threads —
  submitting to an inherited pool would hang forever, and an inherited
  lock could be held by a thread that does not exist in the child.  An
  ``os.register_at_fork`` hook resets the child's service to empty with
  fresh locks and a fresh budget.

:meth:`ExecutorService.ephemeral` exists for the one place a shared
bounded pool is *wrong*: nested ensemble waves, where an inner wave
submits from an outer wave's worker thread and blocking on an inner
future in the same bounded pool would starve it into deadlock.  An
ephemeral pool is budget-accounted and torn down on exit, never shared.

The process-wide instance is :data:`EXECUTOR_SERVICE`; tests build their
own service with an injected clock to drive reaping deterministically.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import (ProcessPoolExecutor, ThreadPoolExecutor,
                                wait)
from contextlib import contextmanager
from dataclasses import dataclass

#: Pool backends the service manages.
POOL_KINDS = ("thread", "process")

#: Default idle lifetime of an unleased pool, seconds.
DEFAULT_IDLE_TIMEOUT = 300.0


def _env_positive(name: str, default, convert):
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = convert(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def _env_idle_timeout(default: float) -> float:
    """The idle timeout accepts any float: negative values are the
    documented way to disable reaping entirely, so — unlike the core
    budget — they must pass through rather than fall back."""
    raw = os.environ.get("REPRO_POOL_IDLE_SECONDS", "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def cancel_and_wait(futures) -> None:
    """Abandon outstanding futures on an error path.

    A shared leased pool is NOT shut down when a lease exits, so a
    caller whose collection loop raises must cancel what has not started
    and wait out what has — otherwise its tasks would keep executing
    after the exception propagates, mutating process-wide state
    (detector stats, memos) under whatever runs next.  Owned ``with
    Executor()`` blocks used to provide this via ``__exit__``'s join;
    every lease-based submit/collect loop calls this instead.
    """
    for future in futures:
        future.cancel()
    wait(list(futures))


class CoreBudget:
    """Process-wide worker-slot accountant.

    ``grant(requested)`` returns how many workers a pool may actually
    use: the request clamped to the unspent budget, but never less than
    ``minimum`` — a starved caller still gets one slot rather than
    deadlocking, at the cost of bounded oversubscription.  Worker counts
    are wall-clock-only throughout the engine layer, so a clamp is
    always safe.
    """

    def __init__(self, total: int | None = None):
        if total is None:
            total = _env_positive("REPRO_CORE_BUDGET",
                                  os.cpu_count() or 1, int)
        self.total = max(1, int(total))
        self._used = 0
        self._lock = threading.Lock()

    @property
    def available(self) -> int:
        with self._lock:
            return max(0, self.total - self._used)

    @property
    def in_use(self) -> int:
        with self._lock:
            return self._used

    def grant(self, requested: int, minimum: int = 1) -> int:
        if requested < 1:
            raise ValueError("requested workers must be >= 1")
        with self._lock:
            free = max(0, self.total - self._used)
            granted = max(minimum, min(requested, free))
            self._used += granted
            return granted

    def charge(self, workers: int) -> int:
        """Record ``workers`` slots unconditionally (no clamp).

        For pools whose width is already fixed: the accounting must
        reflect the workers that actually exist, even when that briefly
        overshoots the total — otherwise later :meth:`grant` calls would
        hand out cores the machine does not have free.
        """
        if workers < 1:
            raise ValueError("charged workers must be >= 1")
        with self._lock:
            self._used += workers
            return workers

    def release(self, granted: int) -> None:
        with self._lock:
            self._used = max(0, self._used - granted)


@dataclass
class _PoolEntry:
    executor: object
    kind: str
    workers: int
    leases: int = 0
    idle_since: float | None = None
    #: Budget slots charged while the pool is leased (first lease charges,
    #: concurrent leases of the same pool share the charge — they share
    #: the same workers).
    charged: int = 0
    #: Removed from the table (broken pool replaced) while leases were
    #: still open: the last lease to release tears it down.
    detached: bool = False


@dataclass
class ServiceStats:
    """Lifetime counters, mostly for tests and the DESIGN worked example."""

    created: int = 0
    reaped: int = 0
    leases: int = 0
    ephemerals: int = 0


class ExecutorService:
    """Owner of every shared worker pool (see the module docstring)."""

    def __init__(self, *, idle_timeout: float | None = None,
                 clock=time.monotonic, budget: CoreBudget | None = None):
        if idle_timeout is None:
            idle_timeout = _env_idle_timeout(DEFAULT_IDLE_TIMEOUT)
        self.idle_timeout = idle_timeout
        self._clock = clock
        self.budget = budget if budget is not None else CoreBudget()
        self.stats = ServiceStats()
        self._pools: dict[tuple[str, int], _PoolEntry] = {}
        self._lock = threading.Lock()

    # -- pool construction -------------------------------------------------

    def _make(self, kind: str, workers: int):
        self.stats.created += 1
        if kind == "thread":
            return ThreadPoolExecutor(max_workers=workers)
        return ProcessPoolExecutor(max_workers=workers)

    @staticmethod
    def _usable(entry: _PoolEntry) -> bool:
        # A process pool whose worker died is broken forever; replace it
        # on the next lease instead of failing every future submit.
        return not getattr(entry.executor, "_broken", False)

    # -- leasing -----------------------------------------------------------

    @contextmanager
    def lease(self, kind: str, workers: int):
        """Borrow the shared ``(kind, granted-workers)`` pool.

        The yielded executor is shared — callers submit and collect their
        own futures but must not shut it down.  While at least one lease
        is open the pool cannot be reaped; when the last lease closes the
        idle clock starts.
        """
        if kind not in POOL_KINDS:
            raise ValueError(f"kind must be one of {POOL_KINDS}, "
                             f"got {kind!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        # Static clamp to the budget's total so the pool key (and width)
        # never depends on what happens to be leased right now.
        width = min(workers, self.budget.total)
        key = (kind, width)
        reap: list[_PoolEntry] = []
        entry: _PoolEntry | None = None
        try:
            with self._lock:
                self._collect_idle(reap)
                entry = self._pools.get(key)
                if entry is not None and not self._usable(entry):
                    # Replace the broken pool for new lessees.  Shutting
                    # it down while another thread still holds a lease
                    # would turn that lessee's BrokenProcessPoolError
                    # into 'cannot schedule new futures' mid-flight, so
                    # a still-leased pool is only *detached* — its last
                    # lease tears it down on release.
                    self._pools.pop(key)
                    if entry.leases == 0:
                        reap.append(entry)
                    else:
                        entry.detached = True
                    entry = None
                if entry is None:
                    entry = _PoolEntry(self._make(kind, width), kind, width)
                    self._pools[key] = entry
                if entry.leases == 0:
                    # Concurrent leases of one pool share its workers, so
                    # they share one budget charge: the first lease pays,
                    # the last release refunds.  The charge is the pool's
                    # full width, unclamped — these workers exist whether
                    # or not the budget had room, and under-recording them
                    # would let later grants oversubscribe further.
                    entry.charged = self.budget.charge(width)
                entry.leases += 1
                entry.idle_since = None
                self.stats.leases += 1
            self._shutdown_entries(reap)
            reap = []
            yield entry.executor
        finally:
            if entry is not None:
                with self._lock:
                    entry.leases -= 1
                    if entry.leases == 0:
                        self.budget.release(entry.charged)
                        entry.charged = 0
                        entry.idle_since = self._clock()
                        if entry.detached:
                            reap.append(entry)
                    self._collect_idle(reap)
            self._shutdown_entries(reap)

    @contextmanager
    def ephemeral(self, kind: str, workers: int):
        """A fresh, private, budget-accounted pool, torn down on exit.

        For nested fan-out (ensemble waves inside waves) where blocking
        on an inner future inside a *shared* bounded pool would deadlock.
        """
        if kind not in POOL_KINDS:
            raise ValueError(f"kind must be one of {POOL_KINDS}, "
                             f"got {kind!r}")
        granted = self.budget.grant(workers)
        pool = None
        try:
            self.stats.ephemerals += 1
            pool = self._make(kind, granted)
            yield pool
        finally:
            # The refund must survive a constructor failure, not only a
            # failed body — a leaked grant would clamp every later wave.
            if pool is not None:
                pool.shutdown(wait=True)
            self.budget.release(granted)

    # -- reaping -----------------------------------------------------------

    def _collect_idle(self, out: list[_PoolEntry]) -> None:
        """Move expired idle pools out of the table (caller holds the
        lock and shuts them down after releasing it)."""
        if self.idle_timeout < 0:
            return
        now = self._clock()
        for key, entry in list(self._pools.items()):
            if entry.leases == 0 and entry.idle_since is not None \
                    and now - entry.idle_since >= self.idle_timeout:
                out.append(self._pools.pop(key))

    def _shutdown_entries(self, entries: list[_PoolEntry]) -> None:
        for entry in entries:
            self.stats.reaped += 1
            # A reaped pool has no leases and no outstanding futures by
            # construction, so the join can happen in the executor's own
            # management thread — blocking the leasing hot path on
            # another pool's worker teardown would serve nobody.
            entry.executor.shutdown(wait=False)

    def reap_idle(self) -> int:
        """Shut down every pool idle past the timeout; returns how many."""
        reap: list[_PoolEntry] = []
        with self._lock:
            self._collect_idle(reap)
        self._shutdown_entries(reap)
        return len(reap)

    # -- introspection and lifecycle ---------------------------------------

    def active_pools(self) -> list[tuple[str, int]]:
        """Keys of the pools currently alive (leased or idle)."""
        with self._lock:
            return sorted(self._pools)

    def shutdown(self) -> None:
        """Tear down every pool (end of process, or test isolation)."""
        with self._lock:
            entries = list(self._pools.values())
            self._pools.clear()
        for entry in entries:
            entry.executor.shutdown(wait=True)

    def _reset_after_fork(self) -> None:
        # Inherited executors have no manager threads in the child and the
        # inherited locks may be held by threads that no longer exist:
        # start empty with fresh locks; pools rebuild on first use.
        self._lock = threading.Lock()
        self._pools = {}
        self.budget = CoreBudget(self.budget.total)
        self.stats = ServiceStats()


#: The process-wide service every campaign and ensemble wave leases from.
EXECUTOR_SERVICE = ExecutorService()

if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=EXECUTOR_SERVICE._reset_after_fork)

atexit.register(EXECUTOR_SERVICE.shutdown)
