"""AST vectorization and the similarity-search knowledge base (§III-B3).

The knowledge base is *not* built from the evaluation corpus: it holds one
hand-written exemplar snippet per repair rule — the "repair solutions for
error-prone AST structures" a tool vendor would curate. At query time the
target program is pruned (Algorithm 1), vectorized, and matched against the
exemplars by cosine similarity; the best-matching rules become prompt hints.

Vectorization is feature hashing over AST node-type unigrams/bigrams plus
salient lexical features (method names, called paths, type names, unsafe
markers) into a fixed-dimension real vector, L2-normalised.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..lang import ast_nodes as ast
from ..lang.ast_nodes import walk
from ..lang.parser import parse_program
from ..miri.errors import UbKind
from .pruning import prune_program

VECTOR_DIM = 64


def _bucket(token: str, dim: int) -> tuple[int, float]:
    digest = hashlib.blake2b(token.encode(), digest_size=8).digest()
    index = int.from_bytes(digest[:4], "big") % dim
    sign = 1.0 if digest[4] & 1 else -1.0
    return index, sign


def ast_tokens(program: ast.Program) -> list[str]:
    """The token stream that feeds the hashing vectorizer."""
    tokens: list[str] = []
    previous_type = ""
    for node in walk(program):
        node_type = type(node).__name__
        tokens.append(f"ty:{node_type}")
        if previous_type:
            tokens.append(f"bi:{previous_type}>{node_type}")
        previous_type = node_type
        if isinstance(node, ast.Block) and node.is_unsafe:
            tokens.append("kw:unsafe")
        elif isinstance(node, ast.MethodCall):
            tokens.append(f"m:{node.method}")
        elif isinstance(node, ast.PathExpr) and len(node.segments) > 1:
            tokens.append(f"p:{node.segments[-1]}")
        elif isinstance(node, ast.Cast) and node.ty is not None:
            tokens.append(f"cast:{node.ty}")
        elif isinstance(node, ast.Unary):
            tokens.append(f"u:{node.op}")
        elif isinstance(node, ast.StaticItem) and node.mutable:
            tokens.append("kw:static_mut")
        elif isinstance(node, ast.UnionItem):
            tokens.append("kw:union")
        elif isinstance(node, ast.MacroCall):
            tokens.append(f"mac:{node.name}")
    return tokens


def vectorize(program: ast.Program, dim: int = VECTOR_DIM) -> np.ndarray:
    """Embed a (pruned) program into R^dim by signed feature hashing."""
    vector = np.zeros(dim, dtype=np.float64)
    for token in ast_tokens(program):
        index, sign = _bucket(token, dim)
        vector[index] += sign
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector /= norm
    return vector


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(np.dot(a, b) / denom)


# ---------------------------------------------------------------------------
# Exemplars: one generic snippet per rule (curated knowledge, not eval data)

_EXEMPLARS: list[tuple[str, UbKind, str]] = [
    ("remove_second_free", UbKind.ALLOC, """
fn main() {
    let bx = Box::new(1);
    let raw = Box::into_raw(bx);
    unsafe { drop(Box::from_raw(raw)); }
    unsafe { drop(Box::from_raw(raw)); }
}
"""),
    ("fix_dealloc_layout", UbKind.ALLOC, """
use std::alloc;
fn main() {
    let l = Layout::from_size_align(16, 8).unwrap();
    let q = unsafe { alloc::alloc(l) };
    let other = Layout::from_size_align(32, 8).unwrap();
    unsafe { alloc::dealloc(q, other); }
}
"""),
    ("guard_layout_nonzero", UbKind.ALLOC, """
use std::alloc;
fn main() {
    let amount = 0;
    let l = Layout::from_size_align(amount, 1).unwrap();
    let q = unsafe { alloc::alloc(l) };
    unsafe { alloc::dealloc(q, l); }
}
"""),
    ("move_drop_after_last_use", UbKind.DANGLING_POINTER, """
fn main() {
    let owner = Box::new(3);
    let raw = Box::into_raw(owner);
    unsafe { drop(Box::from_raw(raw)); }
    let value = unsafe { *raw };
    println!("{}", value);
}
"""),
    ("take_pointer_after_mutation", UbKind.DANGLING_POINTER, """
fn main() {
    let mut items: Vec<i32> = Vec::with_capacity(1);
    items.push(1);
    let head = items.as_ptr();
    items.push(2);
    let x = unsafe { *head };
    println!("{}", x);
}
"""),
    ("guard_nonnull_before_deref", UbKind.DANGLING_POINTER, """
use std::ptr;
fn main() {
    let maybe: *const i32 = ptr::null();
    let x = unsafe { *maybe };
    println!("{}", x);
}
"""),
    ("guard_ptr_add_with_len_check", UbKind.DANGLING_POINTER, """
fn main() {
    let items = vec![1, 2];
    let slot = 9;
    let head = items.as_ptr();
    let x = unsafe { *head.add(slot) };
    println!("{}", x);
}
"""),
    ("saturating_arith_on_extreme", UbKind.PANIC, """
fn main() {
    let limit = i32::MAX;
    let next = limit + 2;
    println!("{}", next);
}
"""),
    ("guard_index_with_len_check", UbKind.PANIC, """
fn main() {
    let xs = vec![1, 2];
    let at = 4;
    let x = xs[at];
    println!("{}", x);
}
"""),
    ("guard_division_nonzero", UbKind.PANIC, """
fn main() {
    let n = 9;
    let d = 0;
    let q = n / d;
    println!("{}", q);
}
"""),
    ("replace_unwrap_with_unwrap_or", UbKind.PANIC, """
fn main() {
    let mut xs: Vec<i32> = Vec::new();
    let x = xs.pop().unwrap();
    println!("{}", x);
}
"""),
    ("mask_shift_amount", UbKind.PANIC, """
fn main() {
    let lhs = 1i32;
    let by = 40;
    let out = lhs << by;
    println!("{}", out);
}
"""),
    ("replace_deref_with_original_value", UbKind.PROVENANCE, """
use std::mem;
fn main() {
    let keep = 8;
    let rf = &keep;
    let as_int = unsafe { mem::transmute::<&i32, usize>(rf) };
    let back = as_int as *const i32;
    let x = unsafe { *back };
    println!("{}", x);
}
"""),
    ("read_owner_instead_of_raw", UbKind.STACK_BORROW, """
fn main() {
    let mut slot = 1i32;
    let rp = &mut slot as *mut i32;
    slot = 2;
    let x = unsafe { *rp };
    println!("{}", x);
}
"""),
    ("replace_uninit_with_zero_init", UbKind.UNINIT, """
fn main() {
    let cell: MaybeUninit<i32> = MaybeUninit::uninit();
    let x = unsafe { cell.assume_init() };
    println!("{}", x);
}
"""),
    ("write_before_assume_init", UbKind.UNINIT, """
fn main() {
    let cell: MaybeUninit<u64> = MaybeUninit::uninit();
    let x = unsafe { cell.assume_init() };
    println!("{}", x);
}
"""),
    ("replace_set_len_with_resize", UbKind.UNINIT, """
fn main() {
    let mut buf: Vec<u8> = Vec::with_capacity(16);
    unsafe { buf.set_len(8); }
    let b = buf[0];
    println!("{}", b);
}
"""),
    ("read_written_union_field", UbKind.UNINIT, """
union Mixed { lo: u8, wide: u32 }
fn main() {
    let m = Mixed { lo: 9 };
    let w = unsafe { m.wide };
    println!("{}", w);
}
"""),
    ("write_zero_after_alloc", UbKind.UNINIT, """
use std::alloc;
fn main() {
    let l = Layout::from_size_align(8, 8).unwrap();
    let q = unsafe { alloc::alloc(l) } as *mut u64;
    let x = unsafe { *q };
    println!("{}", x);
    unsafe { alloc::dealloc(q as *mut u8, l); }
}
"""),
    ("shorten_shared_borrow", UbKind.BOTH_BORROW, """
fn main() {
    let mut amount = 1;
    let excl = &mut amount;
    let shared = &amount;
    *excl += 1;
    let seen = *shared;
    println!("{}", seen);
}
"""),
    ("hoist_write_before_shared", UbKind.BOTH_BORROW, """
fn main() {
    let mut amount = 2;
    let excl = &mut amount;
    let shared = &amount;
    let seen = *shared;
    *excl += 3;
    println!("{} {}", seen, amount);
}
"""),
    ("replace_static_mut_with_atomic", UbKind.DATA_RACE, """
static mut SHARED: usize = 0;
fn main() {
    let t = std::thread::spawn(move || {
        unsafe { SHARED += 1; }
    });
    unsafe { SHARED += 1; }
    t.join();
    println!("{}", unsafe { SHARED });
}
"""),
    ("join_thread_before_access", UbKind.DATA_RACE, """
fn main() {
    let mut cell = 0i64;
    let rp = &mut cell as *mut i64;
    let t = std::thread::spawn(move || {
        unsafe { *rp = 5; }
    });
    cell = 6;
    t.join();
    println!("{}", cell);
}
"""),
    ("protect_with_mutex", UbKind.DATA_RACE, """
static mut TALLY: usize = 0;
fn main() {
    let t = std::thread::spawn(move || {
        unsafe { TALLY += 2; }
    });
    unsafe { TALLY += 2; }
    t.join();
    println!("{}", unsafe { TALLY });
}
"""),
    ("fix_call_arity", UbKind.FUNC_CALL, """
fn weigh(a: i32, b: i32) -> i32 { a + b }
fn main() {
    let f = weigh;
    let x = f(3);
    println!("{}", x);
}
"""),
    ("call_with_actual_signature", UbKind.FUNC_POINTER, """
use std::mem;
fn pair_sum(a: i32, b: i32) -> i32 { a + b }
fn main() {
    let f = unsafe { mem::transmute::<fn(i32, i32) -> i32, fn(i32) -> i32>(pair_sum) };
    let x = f(1);
    println!("{}", x);
}
"""),
    ("replace_int_fn_transmute_with_fn", UbKind.FUNC_POINTER, """
use std::mem;
fn stub() -> i32 { 0 }
fn main() {
    let f = unsafe { mem::transmute::<usize, fn() -> i32>(128) };
    let x = f();
    println!("{}", x);
}
"""),
    ("hoist_raw_use_before_reborrow", UbKind.STACK_BORROW, """
fn main() {
    let mut v = 4;
    let rp = &mut v as *mut i32;
    let rr = &mut v;
    *rr += 1;
    let x = unsafe { *rp };
    println!("{}", x);
}
"""),
    ("replace_transmute_int_with_comparison", UbKind.VALIDITY, """
use std::mem;
fn main() {
    let byte: u8 = 7;
    let ok = unsafe { mem::transmute::<u8, bool>(byte) };
    println!("{}", ok);
}
"""),
    ("replace_zeroed_ref_with_local", UbKind.VALIDITY, """
use std::mem;
fn main() {
    let rf = unsafe { mem::zeroed::<&i64>() };
    println!("{}", *rf);
}
"""),
    ("replace_transmute_char_with_from_u32", UbKind.VALIDITY, """
use std::mem;
fn main() {
    let cp: u32 = 55296;
    let ch = unsafe { mem::transmute::<u32, char>(cp) };
    println!("{}", ch);
}
"""),
    ("store_valid_bool", UbKind.VALIDITY, """
fn main() {
    let mut ok = false;
    let rp = &mut ok as *mut bool as *mut u8;
    unsafe { *rp = 9; }
    println!("{}", ok);
}
"""),
    ("read_unaligned_instead", UbKind.UNALIGNED, """
fn main() {
    let store = [1u64, 2];
    let raw = store.as_ptr() as *const u8;
    let off = unsafe { raw.add(1) } as *const u32;
    let x = unsafe { *off };
    println!("{}", x);
}
"""),
    ("guard_alignment_before_cast_read", UbKind.UNALIGNED, """
fn main() {
    let store = [3u64; 2];
    let raw = store.as_ptr() as *const u8;
    let off = unsafe { raw.add(3) } as *const u16;
    let x = unsafe { *off };
    println!("{}", x);
}
"""),
    ("add_missing_join", UbKind.CONCURRENCY, """
static DONE: AtomicUsize = AtomicUsize::new(0);
fn main() {
    std::thread::spawn(move || {
        DONE.store(1, Ordering::SeqCst);
    });
    println!("bye");
}
"""),
    ("release_lock_before_relock", UbKind.CONCURRENCY, """
static LOCKED: Mutex<i32> = Mutex::new(1);
fn main() {
    let a = LOCKED.lock();
    let v = *a;
    let b = LOCKED.lock();
    println!("{} {}", v, *b);
}
"""),
    ("correct_tail_dispatch", UbKind.TAIL_CALL, """
use std::mem;
fn bump(n: i32) -> i32 { n + 1 }
fn go(n: i32) -> i32 {
    let t = unsafe { mem::transmute::<fn(i32) -> i32, fn(i64) -> i64>(bump) };
    t(n as i64) as i32
}
fn main() { println!("{}", go(1)); }
"""),
    ("replace_transmute_ref_with_cast", UbKind.PROVENANCE, """
use std::mem;
fn main() {
    let v = 0;
    let rf = &v;
    let n = unsafe { mem::transmute::<&i32, usize>(rf) };
    println!("{}", n > 0);
}
"""),
    ("replace_transmute_bytes_with_from_le", UbKind.VALIDITY, """
use std::mem;
fn main() {
    let raw = [1u8, 0, 0, 0];
    let n = unsafe { mem::transmute::<[u8; 4], u32>(raw) };
    println!("{}", n);
}
"""),
]


@dataclass(frozen=True)
class KbEntry:
    rule: str
    category: UbKind
    vector: np.ndarray
    snippet: str


@lru_cache(maxsize=8)
def _default_entries(coverage: float, seed: int,
                     use_pruning: bool) -> tuple[KbEntry, ...]:
    """Parse/prune/vectorize the curated exemplars once per configuration.

    Entries are frozen and only ever read, so the tuple is safely shared by
    every KnowledgeBase instance — campaigns build one engine per case, and
    without this cache each of those rebuilt the whole KB.
    """
    import random as _random
    exemplars = list(_EXEMPLARS)
    if coverage < 1.0:
        keep = max(1, int(len(exemplars) * coverage))
        _random.Random(seed).shuffle(exemplars)
        exemplars = exemplars[:keep]
    entries = []
    for rule, category, snippet in exemplars:
        program = parse_program(snippet)
        target = prune_program(program) if use_pruning else program
        entries.append(KbEntry(rule, category, vectorize(target), snippet))
    return tuple(entries)


class KnowledgeBase:
    """Similarity-searchable store of repair exemplars."""

    def __init__(self, entries: list[KbEntry]):
        self.entries = entries
        self.queries = 0

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def default(cls, coverage: float = 1.0, seed: int = 0,
                use_pruning: bool = True) -> "KnowledgeBase":
        """Build the KB from the curated exemplars.

        ``coverage`` < 1 keeps a deterministic subset — the knob behind the
        paper's "depends on its size" observation; ``use_pruning=False``
        skips Algorithm 1 when embedding (the pruning ablation).
        """
        return cls(list(_default_entries(coverage, seed, use_pruning)))

    def query(self, vector: np.ndarray, k: int = 3,
              min_similarity: float = 0.25) -> list[tuple[KbEntry, float]]:
        self.queries += 1
        scored = [(entry, cosine(vector, entry.vector))
                  for entry in self.entries]
        scored.sort(key=lambda pair: pair[1], reverse=True)
        return [(entry, score) for entry, score in scored[:k]
                if score >= min_similarity]

    def hint_rules(self, vector: np.ndarray, k: int = 3) -> list[str]:
        hints: list[str] = []
        for entry, _score in self.query(vector, k):
            if entry.rule not in hints:
                hints.append(entry.rule)
        return hints
