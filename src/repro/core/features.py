"""Fast-thinking feature extraction (stage F2).

Combines the simulated LLM's (noisy) classification with the deterministic
AST embedding used by the knowledge base and the feedback memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lang import ast_nodes as ast
from ..llm.client import LLMClient
from ..llm.oracle import ExtractedFeatures, extract_features
from ..miri.errors import MiriReport
from .knowledge import vectorize
from .pruning import prune_program


@dataclass(frozen=True)
class CaseFeatures:
    """Everything fast thinking knows about the failing program."""

    extracted: ExtractedFeatures
    vector: np.ndarray          # embedding of the pruned AST
    raw_vector: np.ndarray      # embedding of the full AST (pruning ablation)


def analyse(client: LLMClient, program: ast.Program,
            report: MiriReport, use_pruning: bool = True) -> CaseFeatures:
    """Run feature extraction: one LLM call plus deterministic embeddings."""
    extracted = extract_features(client, program, report)
    pruned = prune_program(program, report.errors) if use_pruning else program
    return CaseFeatures(
        extracted=extracted,
        vector=vectorize(pruned),
        raw_vector=vectorize(program),
    )
