"""Feedback mechanism between slow and fast thinking (§III-C).

After slow thinking verifies a repair, the (error-feature-vector → plan)
pair is stored. When fast thinking later meets a similar error (cosine
similarity of pruned-AST embeddings above threshold, same predicted
category), the remembered plan is replayed first — which is the paper's
self-learning loop: precise solutions for similar errors with *reduced
dependency on the knowledge base* (the red cells of Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..miri.errors import UbKind
from .knowledge import cosine

SIMILARITY_THRESHOLD = 0.88


@dataclass
class FeedbackEntry:
    vector: np.ndarray
    category: UbKind
    rules: list[str]
    wins: int = 1


@dataclass
class FeedbackStats:
    lookups: int = 0
    hits: int = 0
    learned: int = 0


class FeedbackMemory:
    """Cross-repair memory shared by one RustBrain instance."""

    def __init__(self, threshold: float = SIMILARITY_THRESHOLD):
        self.threshold = threshold
        self.entries: list[FeedbackEntry] = []
        self.stats = FeedbackStats()

    def __len__(self) -> int:
        return len(self.entries)

    def recall(self, vector: np.ndarray,
               category: UbKind) -> list[str] | None:
        """Rules that previously repaired a similar error, or None."""
        self.stats.lookups += 1
        best: FeedbackEntry | None = None
        best_score = self.threshold
        for entry in self.entries:
            if entry.category is not category:
                continue
            score = cosine(vector, entry.vector)
            if score >= best_score:
                best = entry
                best_score = score
        if best is None:
            return None
        self.stats.hits += 1
        return list(best.rules)

    def learn(self, vector: np.ndarray, category: UbKind,
              rules: list[str]) -> None:
        """Store (or reinforce) a verified repair plan."""
        for entry in self.entries:
            if entry.category is category and entry.rules == rules \
                    and cosine(vector, entry.vector) >= self.threshold:
                entry.wins += 1
                return
        self.entries.append(FeedbackEntry(vector, category, list(rules)))
        self.stats.learned += 1
