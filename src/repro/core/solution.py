"""Solutions and their decomposition into agent-executable steps (stage S1).

Fast thinking emits *plans* (ordered rule-name lists); stage S1 decomposes
each plan into :class:`Step` objects tagged with the agent class that will
execute them (safe-replacement / assertion / modification), which is how the
paper distributes steps across its three error-fixing agents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .rewrites import FixKind, REGISTRY

_AGENT_BY_KIND = {
    FixKind.REPLACE: "safe_replacement",
    FixKind.ASSERT: "assertion",
    FixKind.MODIFY: "modification",
    FixKind.HALLUCINATION: "modification",  # hallucinations masquerade
}


@dataclass(frozen=True)
class Step:
    rule: str
    agent: str
    #: True when the step is backed by a KB exemplar or a recalled feedback
    #: plan — guided steps copy concrete constants, suppressing drift.
    guided: bool = False

    @classmethod
    def for_rule(cls, rule_name: str, guided: bool = False) -> "Step":
        rule = REGISTRY.get(rule_name)
        agent = _AGENT_BY_KIND[rule.kind] if rule is not None else "modification"
        return cls(rule_name, agent, guided)


@dataclass
class Solution:
    index: int
    steps: list[Step]
    origin: str = "fast_thinking"   # fast_thinking | feedback | knowledge_base

    def rules(self) -> list[str]:
        return [step.rule for step in self.steps]


def decompose(plans: list[list[str]], origin: str = "fast_thinking",
              guided_rules: set[str] | None = None) -> list[Solution]:
    """S1: turn ranked rule-name plans into agent-tagged solutions."""
    guided_rules = guided_rules or set()
    solutions = []
    for index, plan in enumerate(plans):
        steps = [Step.for_rule(rule, guided=rule in guided_rules)
                 for rule in plan]
        solutions.append(Solution(index, steps, origin))
    return solutions
