"""RustBrain's slow-thinking agents.

Three error-fixing agents (safe-replacement, assertion, code-modification),
the adaptive rollback / optimal-code-selection agent (§III-B2), and the
abstract reasoning agent over the pruned-AST knowledge base (§III-B3).
"""

from .base import AgentResult, FixAgent
from .reasoning import AbstractReasoningAgent
from .rollback import RollbackAgent, RollbackPolicy

__all__ = [
    "AbstractReasoningAgent",
    "AgentResult",
    "FixAgent",
    "RollbackAgent",
    "RollbackPolicy",
]
