"""Adaptive rollback and optimal-code-selection agent (§III-B2).

Tracks the (program, error-count) trajectory T = {T0, T1, ...} with the
detector's per-iteration error counts N = {n0, n1, ...}. Three policies:

* ``ADAPTIVE`` (RustBrain): before the next step, roll back to the best
  intermediate state seen so far (fewest errors) — keeping partial progress
  while stopping hallucination-driven error growth.
* ``INITIAL`` (prior debugging frameworks): on error growth, discard all
  progress and return to T0.
* ``NONE``: never roll back — the hallucination-propagation baseline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ...lang import ast_nodes as ast


class RollbackPolicy(enum.Enum):
    ADAPTIVE = "adaptive"
    INITIAL = "initial"
    NONE = "none"


@dataclass
class _State:
    program: ast.Program
    error_count: int


class RollbackAgent:
    def __init__(self, policy: RollbackPolicy, initial_program: ast.Program,
                 initial_errors: int):
        self.policy = policy
        self.initial = _State(initial_program, initial_errors)
        self.best = _State(initial_program, initial_errors)
        self.trajectory: list[int] = [initial_errors]
        self.rollbacks = 0

    def observe(self, program: ast.Program, error_count: int) -> None:
        """Record a new thought Ti with its detected error count ni."""
        self.trajectory.append(error_count)
        if error_count < self.best.error_count:
            self.best = _State(program, error_count)

    def next_base(self, current: ast.Program,
                  current_errors: int) -> tuple[ast.Program, int]:
        """The state the next step should build on, per the policy."""
        if self.policy is RollbackPolicy.NONE:
            return current, current_errors
        if self.policy is RollbackPolicy.INITIAL:
            if current_errors > self.initial.error_count:
                self.rollbacks += 1
                return self.initial.program, self.initial.error_count
            return current, current_errors
        # ADAPTIVE: continue from the optimal state seen so far.
        if current_errors > self.best.error_count:
            self.rollbacks += 1
            return self.best.program, self.best.error_count
        return current, current_errors

    @property
    def error_sequence(self) -> list[int]:
        return list(self.trajectory)
