"""Error-fixing agents: execute one repair step and verify with the detector.

A :class:`FixAgent` wraps one of the paper's three repair classes. Executing
a step is a genuine transaction: ask the oracle how faithfully the model
applies the planned rewrite (possibly substituting a hallucination), apply
the rewrite to the AST, re-run the detector in collect mode, and report the
resulting program + error count. Nothing here consults ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...lang import ast_nodes as ast
from ...lang.printer import print_program
from ...llm.client import LLMClient
from ...llm.oracle import corrupt_step
from ...miri import BatchVerifier, detect_ub
from ...miri.errors import MiriReport
from ..rewrites import apply_rule
from ..solution import Step


@dataclass
class AgentResult:
    step: Step
    applied_rule: str | None      # None when the pattern wasn't present
    hallucinated: bool
    program: ast.Program | None   # transformed program, or None if no-op
    report: MiriReport | None     # detector verdict on the transformed program
    error_count: int

    @property
    def solved(self) -> bool:
        return self.report is not None and self.report.passed


class FixAgent:
    """One of: safe_replacement / assertion / modification."""

    def __init__(self, name: str, client: LLMClient,
                 detector_seconds: float = 0.8,
                 verifier: BatchVerifier | None = None):
        self.name = name
        self.client = client
        self.detector_seconds = detector_seconds
        #: Shared per-repair verification memo (batched detector); ``None``
        #: falls back to one :func:`detect_ub` call per verification.
        self.verifier = verifier
        self.steps_executed = 0
        self.hallucinations = 0

    def execute(self, step: Step, program: ast.Program,
                baseline_errors: int) -> AgentResult:
        """Apply one step and verify. The LLM call is charged here."""
        execution = corrupt_step(self.client, step.rule, guided=step.guided,
                                 orchestrated=True)
        self.steps_executed += 1
        if execution.hallucinated:
            self.hallucinations += 1
        transformed = apply_rule(program, execution.rule)
        if transformed is None:
            # Pattern absent: the model produced a no-op edit.
            return AgentResult(step, None, execution.hallucinated, None, None,
                               baseline_errors)
        if execution.retouched:
            retouched = apply_rule(transformed, "retouch_output_constant")
            if retouched is not None:
                transformed = retouched
        # The clock charges every verification in full (a real sequential
        # run would pay it); the verifier only saves wall-clock work when
        # candidates coincide.
        self.client.clock.advance(self.detector_seconds)
        source = print_program(transformed)
        if self.verifier is not None:
            report = self.verifier.verify(source)
        else:
            report = detect_ub(source, collect=True)
        return AgentResult(step, execution.rule, execution.hallucinated,
                           transformed, report, report.error_count)
