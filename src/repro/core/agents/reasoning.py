"""Abstract reasoning agent (§III-B3).

When the fix agents stall, this agent performs the paper's pipeline:
LLM-extracts the AST (charged as a model call — the paper deliberately uses
the LLM instead of ``syn``), prunes it with Algorithm 1, vectorizes it, and
queries the knowledge base for repair exemplars of similar error-prone AST
structures. The matching rules are handed back as prompt hints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...lang import ast_nodes as ast
from ...lang.printer import print_program
from ...llm.client import LLMClient
from ...miri.errors import MiriError
from ..knowledge import KnowledgeBase, vectorize
from ..pruning import prune_program

_AST_PROMPT = """Extract the abstract syntax tree of this Rust code, \
preserving semantic context. Locate the unsafe regions and the error cause.

### Code
{code}

### Errors
{errors}
"""


@dataclass
class ReasoningHint:
    rules: list[str]
    similarity: float


class AbstractReasoningAgent:
    def __init__(self, client: LLMClient, kb: KnowledgeBase,
                 use_pruning: bool = True):
        self.client = client
        self.kb = kb
        self.use_pruning = use_pruning
        self.invocations = 0

    def consult(self, program: ast.Program,
                errors: list[MiriError]) -> ReasoningHint:
        self.invocations += 1
        code = print_program(program)
        error_text = "\n".join(e.message for e in errors) or "(none)"
        # The AST-extraction model call: this is where the KB's 2x-4x
        # overhead (Fig. 7) comes from.
        self.client.charge("ast_extraction",
                           _AST_PROMPT.format(code=code, errors=error_text),
                           completion_tokens=1400)
        target = prune_program(program, errors) if self.use_pruning else program
        vector = vectorize(target)
        matches = self.kb.query(vector, k=3)
        if matches:
            # Integrating retrieved exemplars into the working prompt is a
            # second model call — the rest of the KB's 2x-4x overhead.
            snippets = "\n".join(entry.snippet for entry, _ in matches[:2])
            self.client.charge("exemplar_integration", snippets,
                               completion_tokens=1100)
        rules = []
        for entry, _score in matches:
            if entry.rule not in rules:
                rules.append(entry.rule)
        top = matches[0][1] if matches else 0.0
        return ReasoningHint(rules=rules, similarity=top)
