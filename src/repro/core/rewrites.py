"""AST rewrite rules — the repair transformations agents can execute.

Rules fall into the paper's three fix classes (Principle 2):

* ``REPLACE`` — substitute an unsafe operation with a safe API of equivalent
  functionality (safe-replacement agent);
* ``ASSERT``  — insert a precondition guard so the unsafe operation is only
  reached when it is defined (assertion agent);
* ``MODIFY``  — change erroneous semantics while preserving intent
  (code-modification agent);

plus ``HALLUCINATION`` rules: plausible-looking but wrong edits the simulated
LLM applies when it errs — these exist so the adaptive-rollback machinery has
genuine error-count growth to react to (§III-B2).

Every rule takes a :class:`~repro.lang.ast_nodes.Program` and returns a
*transformed clone* or ``None`` when its pattern does not occur. Rules build
replacement code by printing sub-expressions into source templates and
re-parsing — robust and easy to audit.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass

from ..lang import ast_nodes as ast
from ..lang import types as ty
from ..lang.ast_nodes import clone, walk
from ..lang.parser import parse_expr, parse_program
from ..lang.printer import print_expr, print_program
from ..lang.visitor import (
    collect,
    containing_block,
    find_first,
    insert_before,
    remove_stmt,
    replace_node,
)


class FixKind(enum.Enum):
    REPLACE = "safe replacement"
    ASSERT = "assertion guard"
    MODIFY = "semantic modification"
    HALLUCINATION = "hallucination"


@dataclass(frozen=True)
class RewriteRule:
    name: str
    kind: FixKind
    description: str
    fn: Callable[[ast.Program], ast.Program | None]

    def apply(self, program: ast.Program) -> ast.Program | None:
        """Apply to a clone; never mutates the input program."""
        duplicate = clone(program)
        try:
            return self.fn(duplicate)
        except Exception:
            # A rewrite that blows up on foreign code is simply inapplicable.
            return None


REGISTRY: dict[str, RewriteRule] = {}


def rewrite(name: str, kind: FixKind, description: str):
    def decorate(fn):
        REGISTRY[name] = RewriteRule(name, kind, description, fn)
        return fn
    return decorate


def get_rule(name: str) -> RewriteRule:
    return REGISTRY[name]


def rules_of_kind(kind: FixKind) -> list[RewriteRule]:
    return [rule for rule in REGISTRY.values() if rule.kind is kind]


# ---------------------------------------------------------------------------
# Pattern helpers


def _is_path_call(node: ast.Node, *suffixes: str) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.PathExpr)
            and node.func.segments[-1] in suffixes)


def _transmute_calls(program: ast.Program) -> list[ast.Call]:
    return [n for n in walk(program) if _is_path_call(n, "transmute")]


def _let_defining(program: ast.Program, name: str) -> ast.LetStmt | None:
    for node in walk(program):
        if isinstance(node, ast.LetStmt) and node.name == name:
            return node
    return None


def _reparse(expr_src: str) -> ast.Expr:
    return parse_expr(expr_src)


def _parse_stmt(stmt_src: str) -> ast.Stmt:
    """Parse a single statement robustly (a sentinel keeps block-like
    statements from being swallowed as the function's tail expression)."""
    program = parse_program(f"fn __t() {{ {stmt_src} let __sentinel = 0; }}")
    return program.fn("__t").body.stmts[0]


def _unwrap_unsafe(expr: ast.Expr) -> ast.Expr:
    """Peel `unsafe { e }` down to `e` when the block is a pure wrapper."""
    if isinstance(expr, ast.Block) and expr.is_unsafe and not expr.stmts \
            and expr.tail is not None:
        return expr.tail
    return expr


def _stmt_uses_name(stmt: ast.Stmt, name: str) -> bool:
    return any(
        isinstance(node, ast.PathExpr) and node.is_local and node.name == name
        for node in walk(stmt)
    )


# ===========================================================================
# REPLACE rules (safe-replacement agent)


@rewrite("replace_transmute_ref_with_cast", FixKind.REPLACE,
         "mem::transmute::<&T, usize>(p) → p as *const T as usize")
def replace_transmute_ref_with_cast(program):
    for call in _transmute_calls(program):
        generics = call.func.generic_args
        if len(generics) != 2 or not call.args:
            continue
        src_ty, dst_ty = generics
        if isinstance(src_ty, ty.TyRef) and isinstance(dst_ty, ty.TyInt):
            arg_src = print_expr(call.args[0])
            new = _reparse(f"{arg_src} as *const {src_ty.target} as {dst_ty}")
            replace_node(program, call.node_id, new)
            return program
    return None


@rewrite("replace_transmute_bytes_with_from_le", FixKind.REPLACE,
         "mem::transmute::<[u8; N], uN>(x) → uN::from_le_bytes(x)")
def replace_transmute_bytes_with_from_le(program):
    for call in _transmute_calls(program):
        generics = call.func.generic_args
        if len(generics) != 2 or not call.args:
            continue
        src_ty, dst_ty = generics
        if (isinstance(src_ty, ty.TyArray) and src_ty.elem == ty.U8
                and isinstance(dst_ty, ty.TyInt)):
            arg_src = print_expr(call.args[0])
            new = _reparse(f"{dst_ty}::from_le_bytes({arg_src})")
            replace_node(program, call.node_id, new)
            return program
    return None


@rewrite("replace_transmute_int_with_comparison", FixKind.REPLACE,
         "mem::transmute::<u8, bool>(n) → n != 0")
def replace_transmute_int_with_comparison(program):
    for call in _transmute_calls(program):
        generics = call.func.generic_args
        if len(generics) != 2 or not call.args:
            continue
        src_ty, dst_ty = generics
        if isinstance(src_ty, ty.TyInt) and isinstance(dst_ty, ty.TyBool):
            arg_src = print_expr(call.args[0])
            new = _reparse(f"{arg_src} != 0")
            replace_node(program, call.node_id, new)
            return program
    return None


@rewrite("replace_transmute_char_with_from_u32", FixKind.REPLACE,
         "mem::transmute::<u32, char>(n) → char::from_u32(n).unwrap_or(...)")
def replace_transmute_char_with_from_u32(program):
    for call in _transmute_calls(program):
        generics = call.func.generic_args
        if len(generics) != 2 or not call.args:
            continue
        src_ty, dst_ty = generics
        if isinstance(src_ty, ty.TyInt) and isinstance(dst_ty, ty.TyChar):
            arg_src = print_expr(call.args[0])
            new = _reparse(f"char::from_u32({arg_src}).unwrap_or('?')")
            replace_node(program, call.node_id, new)
            return program
    return None


@rewrite("replace_transmute_fn_with_direct", FixKind.REPLACE,
         "mem::transmute between fn-pointer types → the function itself")
def replace_transmute_fn_with_direct(program):
    for call in _transmute_calls(program):
        generics = call.func.generic_args
        if len(generics) != 2 or not call.args:
            continue
        src_ty, dst_ty = generics
        if isinstance(src_ty, ty.TyFn) and isinstance(dst_ty, ty.TyFn):
            replace_node(program, call.node_id, clone(call.args[0]))
            return program
    return None


@rewrite("replace_set_len_with_resize", FixKind.REPLACE,
         "v.set_len(n) → v.resize(n, 0)")
def replace_set_len_with_resize(program):
    for node in walk(program):
        if isinstance(node, ast.MethodCall) and node.method == "set_len" \
                and node.args:
            recv = print_expr(node.receiver)
            count = print_expr(node.args[0])
            new = _reparse(f"{recv}.resize({count}, 0)")
            replace_node(program, node.node_id, new)
            _strip_redundant_unsafe(program, new.node_id)
            return program
    return None


@rewrite("replace_get_unchecked_with_index", FixKind.REPLACE,
         "v.get_unchecked(i) → v[i] (bounds-checked)")
def replace_get_unchecked_with_index(program):
    for node in walk(program):
        if isinstance(node, ast.MethodCall) and \
                node.method in ("get_unchecked", "get_unchecked_mut") and node.args:
            recv = print_expr(node.receiver)
            index = print_expr(node.args[0])
            new = _reparse(f"{recv}[{index}]")
            replace_node(program, node.node_id, new)
            return program
    return None


@rewrite("replace_uninit_with_zero_init", FixKind.REPLACE,
         "MaybeUninit::uninit() → MaybeUninit::new(0)")
def replace_uninit_with_zero_init(program):
    for node in walk(program):
        if _is_path_call(node, "uninit") and \
                node.func.segments[0] == "MaybeUninit":
            new = _reparse("MaybeUninit::new(0)")
            replace_node(program, node.node_id, new)
            return program
    return None


@rewrite("replace_static_mut_with_atomic", FixKind.REPLACE,
         "static mut counter → AtomicUsize with fetch_add/load")
def replace_static_mut_with_atomic(program):
    target = None
    for item in program.items:
        if isinstance(item, ast.StaticItem) and item.mutable \
                and isinstance(item.ty, ty.TyInt):
            target = item
            break
    if target is None:
        return None
    init_src = print_expr(target.init)
    target.mutable = False
    target.ty = ty.TyPath("AtomicUsize", ())
    target.init = _reparse(f"AtomicUsize::new({init_src})")
    name = target.name
    # Rewrite `NAME += k` / `NAME -= k` / reads of NAME.
    changed = True
    while changed:
        changed = False
        for node in walk(program):
            if isinstance(node, ast.CompoundAssign) and \
                    isinstance(node.target, ast.PathExpr) and \
                    node.target.is_local and node.target.name == name:
                op = "fetch_add" if node.op == "+" else "fetch_sub"
                value_src = print_expr(node.value)
                new = _reparse(f"{name}.{op}({value_src}, Ordering::SeqCst)")
                replace_node(program, node.node_id, new)
                changed = True
                break
            if isinstance(node, ast.Assign) and \
                    isinstance(node.target, ast.PathExpr) and \
                    node.target.is_local and node.target.name == name:
                value_src = print_expr(node.value)
                new = _reparse(f"{name}.store({value_src}, Ordering::SeqCst)")
                replace_node(program, node.node_id, new)
                changed = True
                break
    # Bare reads of the static become .load(...) — find paths not already
    # receivers of an atomic method call.
    parents = ast.parent_map(program)
    for node in list(walk(program)):
        if isinstance(node, ast.PathExpr) and node.is_local \
                and node.name == name:
            parent = parents.get(node.node_id)
            if isinstance(parent, ast.MethodCall) and parent.receiver is node:
                continue
            if isinstance(parent, ast.StaticItem):
                continue
            new = _reparse(f"{name}.load(Ordering::SeqCst)")
            replace_node(program, node.node_id, new)
            parents = ast.parent_map(program)
    return program


@rewrite("replace_zeroed_ref_with_local", FixKind.REPLACE,
         "mem::zeroed::<&T>() → reference to a fresh zero local")
def replace_zeroed_ref_with_local(program):
    for node in walk(program):
        if _is_path_call(node, "zeroed") and node.func.generic_args:
            target = node.func.generic_args[0]
            if isinstance(target, ty.TyRef):
                location = containing_block(program, node.node_id)
                if location is None:
                    continue
                block, index = location
                zero_let = parse_program(
                    f"fn __t() {{ let __zeroed_default: {target.target} = 0; }}"
                ).fn("__t").body.stmts[0]
                block.stmts.insert(index, zero_let)
                replace_node(program, node.node_id,
                             _reparse("&__zeroed_default"))
                return program
    return None


@rewrite("replace_deref_with_original_value", FixKind.REPLACE,
         "deref of int-forged pointer → the original variable")
def replace_deref_with_original_value(program):
    """For `let addr = &x ... as usize; ... *(addr as *const T)` chains,
    use `x` directly instead of laundering the pointer through an integer."""
    for node in walk(program):
        if not (isinstance(node, ast.Unary) and node.op == "*"):
            continue
        operand = node.operand
        # *q where q: let q = addr as *const T
        chain_var = None
        if isinstance(operand, ast.PathExpr) and operand.is_local:
            let = _let_defining(program, operand.name)
            if let is not None and isinstance(let.init, ast.Cast):
                chain_var = let.init.expr
        elif isinstance(operand, ast.Cast):
            chain_var = operand.expr
        if chain_var is None or not isinstance(chain_var, ast.PathExpr):
            continue
        addr_let = _let_defining(program, chain_var.name)
        if addr_let is None or addr_let.init is None:
            continue
        origin = _original_place_of_addr(program, addr_let.init)
        if origin is None:
            continue
        replace_node(program, node.node_id, _reparse(origin))
        return program
    return None


def _original_place_of_addr(program, init: ast.Expr) -> str | None:
    """Trace `&x as *const T as usize` / transmute(&x) back to `x`."""
    init = _unwrap_unsafe(init)
    node = init
    while isinstance(node, ast.Cast):
        node = node.expr
    if isinstance(node, ast.Unary) and node.op in ("&", "&mut"):
        return print_expr(node.operand)
    if _is_path_call(node, "transmute") and node.args:
        inner = node.args[0]
        if isinstance(inner, ast.PathExpr) and inner.is_local:
            ref_let = _let_defining(program, inner.name)
            if ref_let is not None and isinstance(ref_let.init, ast.Unary) \
                    and ref_let.init.op in ("&", "&mut"):
                return print_expr(ref_let.init.operand)
        if isinstance(inner, ast.Unary) and inner.op in ("&", "&mut"):
            return print_expr(inner.operand)
    return None


# ===========================================================================
# ASSERT rules (assertion agent): guard the unsafe op with its precondition


@rewrite("guard_ptr_add_with_len_check", FixKind.ASSERT,
         "unsafe { *p.add(i) } → bounds-guarded access with safe fallback")
def guard_ptr_add_with_len_check(program):
    for node in walk(program):
        if not (isinstance(node, ast.Block) and node.is_unsafe
                and node.tail is not None):
            continue
        tail = node.tail
        if not (isinstance(tail, ast.Unary) and tail.op == "*"):
            continue
        inner = tail.operand
        if not (isinstance(inner, ast.MethodCall)
                and inner.method in ("add", "offset") and inner.args):
            continue
        recv = inner.receiver
        if not (isinstance(recv, ast.PathExpr) and recv.is_local):
            continue
        ptr_let = _let_defining(program, recv.name)
        if ptr_let is None or ptr_let.init is None:
            continue
        source = _unwrap_unsafe(ptr_let.init)
        if not (isinstance(source, ast.MethodCall)
                and source.method in ("as_ptr", "as_mut_ptr")):
            continue
        container = print_expr(source.receiver)
        index = print_expr(inner.args[0])
        ptr = print_expr(recv)
        guarded = _reparse(
            f"if {index} < {container}.len() "
            f"{{ unsafe {{ *{ptr}.add({index}) }} }} else {{ 0 }}"
        )
        replace_node(program, node.node_id, guarded)
        return program
    return None


@rewrite("guard_index_with_len_check", FixKind.ASSERT,
         "v[i] with possibly-bad i → guarded access with safe fallback")
def guard_index_with_len_check(program):
    for node in walk(program):
        if not isinstance(node, ast.Index):
            continue
        if not (isinstance(node.obj, ast.PathExpr) and node.obj.is_local):
            continue
        if isinstance(node.index, ast.IntLit):
            continue  # constant in-range indexing is not the bug pattern
        container = print_expr(node.obj)
        index = print_expr(node.index)
        guarded = _reparse(
            f"if {index} < {container}.len() {{ {container}[{index}] }} "
            f"else {{ 0 }}"
        )
        replace_node(program, node.node_id, guarded)
        return program
    return None


@rewrite("guard_nonnull_before_deref", FixKind.ASSERT,
         "unsafe { *p } → null-guarded access with safe fallback")
def guard_nonnull_before_deref(program):
    for node in walk(program):
        if not (isinstance(node, ast.Block) and node.is_unsafe
                and node.tail is not None and not node.stmts):
            continue
        tail = node.tail
        if not (isinstance(tail, ast.Unary) and tail.op == "*"
                and isinstance(tail.operand, ast.PathExpr)):
            continue
        ptr = print_expr(tail.operand)
        guarded = _reparse(
            f"if !{ptr}.is_null() {{ unsafe {{ *{ptr} }} }} else {{ 0 }}")
        replace_node(program, node.node_id, guarded)
        return program
    return None


@rewrite("guard_alignment_before_cast_read", FixKind.ASSERT,
         "misaligned typed read → alignment-guarded with safe fallback")
def guard_alignment_before_cast_read(program):
    for node in walk(program):
        if not (isinstance(node, ast.Block) and node.is_unsafe
                and node.tail is not None and not node.stmts):
            continue
        tail = node.tail
        if not (isinstance(tail, ast.Unary) and tail.op == "*"
                and isinstance(tail.operand, ast.PathExpr)):
            continue
        name = tail.operand.name
        let = _let_defining(program, name)
        if let is None:
            continue
        init = _unwrap_unsafe(let.init) if let.init else None
        if not (isinstance(init, ast.Cast)
                and isinstance(init.ty, ty.TyRawPtr)
                and isinstance(init.ty.target, ty.TyInt)):
            continue
        align = init.ty.target.bits // 8
        ptr = print_expr(tail.operand)
        guarded = _reparse(
            f"if {ptr} as usize % {align} == 0 "
            f"{{ unsafe {{ *{ptr} }} }} else {{ 0 }}"
        )
        replace_node(program, node.node_id, guarded)
        return program
    return None


@rewrite("guard_layout_nonzero", FixKind.ASSERT,
         "alloc with possibly-zero layout → size max(1) guard")
def guard_layout_nonzero(program):
    for node in walk(program):
        if _is_path_call(node, "from_size_align") and node.args:
            size_arg = node.args[0]
            if isinstance(size_arg, ast.IntLit) and size_arg.value == 0:
                replace_node(program, size_arg.node_id,
                             _reparse("1"))
                return program
            if not isinstance(size_arg, ast.IntLit):
                src = print_expr(size_arg)
                replace_node(program, size_arg.node_id,
                             _reparse(f"{src}.max(1)"))
                return program
    return None


# ===========================================================================
# MODIFY rules (code-modification agent)


@rewrite("move_drop_after_last_use", FixKind.MODIFY,
         "move the drop/free so it happens after the last use")
def move_drop_after_last_use(program):
    main = program.fn("main")
    if main is None:
        return None
    block = main.body
    drop_index = None
    freed_name = None
    for index, stmt in enumerate(block.stmts):
        expr = stmt.expr if isinstance(stmt, ast.ExprStmt) else None
        expr = _unwrap_unsafe(expr) if expr is not None else None
        if isinstance(expr, ast.Block) and len(expr.stmts) == 1:
            inner = expr.stmts[0]
            expr = inner.expr if isinstance(inner, ast.ExprStmt) else expr
        if expr is not None and _is_path_call(expr, "drop"):
            drop_index = index
            freed = expr.args[0] if expr.args else None
            freed = _unwrap_unsafe(freed) if freed is not None else None
            if _is_path_call(freed, "from_raw") and freed.args:
                freed = freed.args[0]
            if isinstance(freed, ast.PathExpr):
                freed_name = freed.name
            break
    if drop_index is None:
        return None
    # Find the last statement that uses either the freed variable or any
    # pointer derived from it.
    derived = {freed_name} if freed_name else set()
    for stmt in block.stmts:
        if isinstance(stmt, ast.LetStmt) and stmt.init is not None:
            if any(isinstance(n, ast.PathExpr) and n.is_local
                   and n.name in derived for n in walk(stmt.init)):
                derived.add(stmt.name)
    last_use = drop_index
    for index in range(drop_index + 1, len(block.stmts)):
        if any(_stmt_uses_name(block.stmts[index], name) for name in derived):
            last_use = index
    if last_use == drop_index:
        return None
    stmt = block.stmts.pop(drop_index)
    block.stmts.insert(last_use, stmt)
    return program


@rewrite("remove_second_free", FixKind.MODIFY,
         "delete the duplicated drop/dealloc statement")
def remove_second_free(program):
    frees: list[ast.Stmt] = []
    for node in walk(program):
        if isinstance(node, ast.Block):
            for stmt in node.stmts:
                expr = stmt.expr if isinstance(stmt, ast.ExprStmt) else None
                if expr is None:
                    continue
                expr = _unwrap_unsafe(expr)
                if isinstance(expr, ast.Block) and len(expr.stmts) == 1 and \
                        isinstance(expr.stmts[0], ast.ExprStmt):
                    expr = expr.stmts[0].expr
                if _is_path_call(expr, "drop", "dealloc"):
                    frees.append(stmt)
    if len(frees) < 2:
        return None
    remove_stmt(program, frees[-1].node_id)
    return program


@rewrite("take_pointer_after_mutation", FixKind.MODIFY,
         "move as_ptr/as_mut_ptr below the last container mutation")
def take_pointer_after_mutation(program):
    main = program.fn("main")
    if main is None:
        return None
    block = main.body
    ptr_index = None
    container = None
    for index, stmt in enumerate(block.stmts):
        if isinstance(stmt, ast.LetStmt) and stmt.init is not None:
            init = _unwrap_unsafe(stmt.init)
            if isinstance(init, ast.MethodCall) and \
                    init.method in ("as_ptr", "as_mut_ptr") and \
                    isinstance(init.receiver, ast.PathExpr):
                ptr_index = index
                container = init.receiver.name
                break
    if ptr_index is None or container is None:
        return None
    mutators = ("push", "resize", "insert", "reserve", "extend", "remove")
    last_mutation = ptr_index
    for index in range(ptr_index + 1, len(block.stmts)):
        stmt = block.stmts[index]
        for node in walk(stmt):
            if isinstance(node, ast.MethodCall) and node.method in mutators \
                    and isinstance(node.receiver, ast.PathExpr) \
                    and node.receiver.name == container:
                last_mutation = index
    if last_mutation == ptr_index:
        return None
    stmt = block.stmts.pop(ptr_index)
    block.stmts.insert(last_mutation, stmt)
    return program


@rewrite("join_thread_before_access", FixKind.MODIFY,
         "move the join() so the parent's access is ordered after the child")
def join_thread_before_access(program):
    main = program.fn("main")
    if main is None:
        return None
    block = main.body
    spawn_index = None
    join_index = None
    for index, stmt in enumerate(block.stmts):
        for node in walk(stmt):
            if _is_path_call(node, "spawn") and spawn_index is None:
                spawn_index = index
            if isinstance(node, ast.MethodCall) and node.method == "join":
                join_index = index
    if spawn_index is None or join_index is None:
        return None
    if join_index <= spawn_index + 1:
        return None
    stmt = block.stmts.pop(join_index)
    block.stmts.insert(spawn_index + 1, stmt)
    return program


@rewrite("add_missing_join", FixKind.MODIFY,
         "bind the spawn result and join it before main exits")
def add_missing_join(program):
    main = program.fn("main")
    if main is None:
        return None
    block = main.body
    for index, stmt in enumerate(block.stmts):
        if not isinstance(stmt, ast.ExprStmt):
            continue
        expr = stmt.expr
        if _is_path_call(expr, "spawn"):
            spawn_src = print_expr(expr)
            replacement = parse_program(
                f"fn __t() {{ let __handle = {spawn_src}; }}"
            ).fn("__t").body.stmts[0]
            block.stmts[index] = replacement
            join_stmt = parse_program(
                "fn __t() { __handle.join(); }"
            ).fn("__t").body.stmts[0]
            block.stmts.append(join_stmt)
            return program
    return None


@rewrite("protect_with_mutex", FixKind.MODIFY,
         "static mut shared state → Mutex-protected static")
def protect_with_mutex(program):
    target = None
    for item in program.items:
        if isinstance(item, ast.StaticItem) and item.mutable \
                and isinstance(item.ty, ty.TyInt):
            target = item
            break
    if target is None:
        return None
    inner_ty = target.ty
    init_src = print_expr(target.init)
    target.mutable = False
    target.ty = ty.TyPath("Mutex", (inner_ty,))
    target.init = _reparse(f"Mutex::new({init_src})")
    name = target.name
    changed = True
    while changed:
        changed = False
        for node in walk(program):
            if isinstance(node, ast.CompoundAssign) and \
                    isinstance(node.target, ast.PathExpr) and \
                    node.target.is_local and node.target.name == name:
                value_src = print_expr(node.value)
                new = _reparse(
                    f"{{ let mut __g = {name}.lock(); "
                    f"*__g {node.op}= {value_src}; drop(__g); }}"
                )
                replace_node(program, node.node_id, new)
                changed = True
                break
    parents = ast.parent_map(program)
    for node in list(walk(program)):
        if isinstance(node, ast.PathExpr) and node.is_local and node.name == name:
            parent = parents.get(node.node_id)
            if isinstance(parent, ast.MethodCall) and parent.receiver is node:
                continue
            if isinstance(parent, ast.StaticItem):
                continue
            new = _reparse(
                f"{{ let __g = {name}.lock(); let __v = *__g; "
                f"drop(__g); __v }}"
            )
            replace_node(program, node.node_id, new)
            parents = ast.parent_map(program)
    return program


@rewrite("write_before_assume_init", FixKind.MODIFY,
         "insert mu.write(0) before assume_init")
def write_before_assume_init(program):
    for node in walk(program):
        if isinstance(node, ast.MethodCall) and node.method == "assume_init":
            if not isinstance(node.receiver, ast.PathExpr):
                continue
            name = node.receiver.name
            let = _let_defining(program, name)
            if let is None:
                return None
            let.mutable = True
            write_stmt = parse_program(
                f"fn __t() {{ {name}.write(0); }}"
            ).fn("__t").body.stmts[0]
            if insert_before(program, node.node_id, write_stmt):
                return program
    return None


@rewrite("fix_dealloc_layout", FixKind.MODIFY,
         "dealloc with the same layout the allocation used")
def fix_dealloc_layout(program):
    alloc_layout_var = None
    for node in walk(program):
        if _is_path_call(node, "alloc", "alloc_zeroed") and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.PathExpr) and arg.is_local:
                alloc_layout_var = arg.name
    if alloc_layout_var is None:
        return None
    for node in walk(program):
        if _is_path_call(node, "dealloc") and len(node.args) == 2:
            layout_arg = node.args[1]
            if isinstance(layout_arg, ast.PathExpr) and \
                    layout_arg.name == alloc_layout_var:
                continue
            replace_node(program, layout_arg.node_id,
                         _reparse(alloc_layout_var))
            return program
    return None


@rewrite("call_with_actual_signature", FixKind.MODIFY,
         "call the target function with its true argument list")
def call_with_actual_signature(program):
    """For fn-pointer misuse: drop the transmute and pad/trim call args to
    the callee's real signature (extra args filled with 0)."""
    target_fn = None
    binding = None
    for call in _transmute_calls(program):
        generics = call.func.generic_args
        if len(generics) == 2 and isinstance(generics[0], ty.TyFn) and call.args:
            inner = call.args[0]
            if isinstance(inner, ast.PathExpr):
                target_fn = program.fn(inner.name)
                binding = call
                break
        if len(generics) == 2 and isinstance(generics[1], ty.TyFn) \
                and isinstance(generics[0], ty.TyInt):
            return None  # int→fn transmute has no recoverable target
    if target_fn is None or binding is None:
        return None
    # Locate the enclosing let BEFORE detaching the transmute call.
    parents = ast.parent_map(program)
    binding_let = None
    node = binding
    while node is not None:
        node = parents.get(node.node_id)
        if isinstance(node, ast.LetStmt):
            binding_let = node
            break
    replace_node(program, binding.node_id, _reparse(target_fn.name))
    if binding_let is None:
        return program
    binding_let.ty = None  # let inference pick up the real fn type
    fn_var = binding_let.name
    want = len(target_fn.params)
    for node in walk(program):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.PathExpr) \
                and node.func.is_local and node.func.name == fn_var:
            while len(node.args) > want:
                node.args.pop()
            while len(node.args) < want:
                node.args.append(ast.IntLit(0))
    return program


@rewrite("read_unaligned_instead", FixKind.MODIFY,
         "misaligned *p → p.read_unaligned()")
def read_unaligned_instead(program):
    for node in walk(program):
        if not (isinstance(node, ast.Unary) and node.op == "*"):
            continue
        operand = node.operand
        if not (isinstance(operand, ast.PathExpr) and operand.is_local):
            continue
        let = _let_defining(program, operand.name)
        if let is None or let.init is None:
            continue
        init = _unwrap_unsafe(let.init)
        if not (isinstance(init, ast.Cast) and isinstance(init.ty, ty.TyRawPtr)):
            continue
        ptr = print_expr(operand)
        replace_node(program, node.node_id,
                     _reparse(f"{ptr}.read_unaligned()"))
        return program
    return None


@rewrite("correct_tail_dispatch", FixKind.MODIFY,
         "dispatch the tail call through the correctly-typed function")
def correct_tail_dispatch(program):
    """Tail-call misuse: a dispatcher returns `f(args)` through a transmuted
    pointer. Replace the laundered pointer with the real function."""
    for call in _transmute_calls(program):
        generics = call.func.generic_args
        if len(generics) == 2 and call.args and \
                isinstance(call.args[0], ast.PathExpr):
            inner = call.args[0]
            if program.fn(inner.name) is not None:
                replace_node(program, call.node_id, _reparse(inner.name))
                return program
    return None


@rewrite("saturating_arith_on_extreme", FixKind.REPLACE,
         "overflowing +/-/* near MAX/MIN → saturating_*")
def saturating_arith_on_extreme(program):
    extreme_vars = set()
    for node in walk(program):
        if isinstance(node, ast.LetStmt) and node.init is not None:
            init = node.init
            if isinstance(init, ast.PathExpr) and len(init.segments) == 2 \
                    and init.segments[1] in ("MAX", "MIN"):
                extreme_vars.add(node.name)
    for node in walk(program):
        if isinstance(node, ast.Binary) and node.op in ("+", "-", "*"):
            involves_extreme = any(
                (isinstance(side, ast.PathExpr) and side.is_local
                 and side.name in extreme_vars)
                or (isinstance(side, ast.PathExpr) and len(side.segments) == 2
                    and side.segments[1] in ("MAX", "MIN"))
                for side in (node.left, node.right)
            )
            if not involves_extreme:
                continue
            method = {"+": "saturating_add", "-": "saturating_sub",
                      "*": "saturating_mul"}[node.op]
            left = print_expr(node.left)
            right = print_expr(node.right)
            replace_node(program, node.node_id,
                         _reparse(f"{left}.{method}({right})"))
            return program
    return None


@rewrite("guard_division_nonzero", FixKind.ASSERT,
         "a / b → zero-guarded division with safe fallback")
def guard_division_nonzero(program):
    for node in walk(program):
        if isinstance(node, ast.Binary) and node.op in ("/", "%"):
            if isinstance(node.right, ast.IntLit):
                continue  # literal divisors are either fine or intent
            left = print_expr(node.left)
            right = print_expr(node.right)
            op = node.op
            guarded = _reparse(
                f"if {right} != 0 {{ {left} {op} {right} }} else {{ 0 }}")
            replace_node(program, node.node_id, guarded)
            return program
    return None


@rewrite("replace_unwrap_with_unwrap_or", FixKind.REPLACE,
         "opt.unwrap() → opt.unwrap_or(0)")
def replace_unwrap_with_unwrap_or(program):
    for node in walk(program):
        if isinstance(node, ast.MethodCall) and node.method == "unwrap" \
                and not node.args:
            recv = node.receiver
            # Leave Layout::...unwrap() alone: that's a setup idiom, not UB.
            if isinstance(recv, ast.Call) and isinstance(recv.func, ast.PathExpr) \
                    and recv.func.segments[0] == "Layout":
                continue
            node.method = "unwrap_or"
            node.args.append(ast.IntLit(0))
            return program
    return None


@rewrite("mask_shift_amount", FixKind.MODIFY,
         "a << b → a << (b % BITS)")
def mask_shift_amount(program):
    for node in walk(program):
        if isinstance(node, ast.Binary) and node.op in ("<<", ">>"):
            if isinstance(node.right, ast.IntLit) and node.right.value < 32:
                continue
            left = print_expr(node.left)
            right = print_expr(node.right)
            masked = _reparse(f"{left} {node.op} ({right} % 32)")
            replace_node(program, node.node_id, masked)
            return program
    return None


@rewrite("read_owner_instead_of_raw", FixKind.MODIFY,
         "unsafe { *p } where p = &x as *T → read x directly")
def read_owner_instead_of_raw(program):
    for node in walk(program):
        if not (isinstance(node, ast.Unary) and node.op == "*"):
            continue
        operand = node.operand
        if not (isinstance(operand, ast.PathExpr) and operand.is_local):
            continue
        let = _let_defining(program, operand.name)
        if let is None or let.init is None:
            continue
        origin = _original_place_of_addr(program, let.init)
        if origin is None:
            continue
        replace_node(program, node.node_id, _reparse(origin))
        return program
    return None


@rewrite("read_written_union_field", FixKind.MODIFY,
         "read the union field that was actually written")
def read_written_union_field(program):
    writes: dict[str, str] = {}
    for node in walk(program):
        if isinstance(node, ast.LetStmt) and isinstance(node.init, ast.StructLit):
            lit = node.init
            if len(lit.fields) == 1:
                writes[node.name] = lit.fields[0][0]
    union_names = {
        item.name for item in program.items if isinstance(item, ast.UnionItem)
    }
    for node in walk(program):
        if isinstance(node, ast.FieldAccess) and \
                isinstance(node.obj, ast.PathExpr) and \
                node.obj.name in writes:
            let = _let_defining(program, node.obj.name)
            if let is None or not isinstance(let.init, ast.StructLit) \
                    or let.init.name not in union_names:
                continue
            written = writes[node.obj.name]
            if node.field != written:
                replace_node(
                    program, node.node_id,
                    _reparse(f"{node.obj.name}.{written}"))
                return program
    return None


@rewrite("write_zero_after_alloc", FixKind.MODIFY,
         "initialise freshly allocated heap memory before reading it")
def write_zero_after_alloc(program):
    for node in walk(program):
        if not (isinstance(node, ast.LetStmt) and node.init is not None):
            continue
        init = node.init
        if isinstance(init, ast.Cast):
            inner = _unwrap_unsafe(init.expr)
        else:
            inner = _unwrap_unsafe(init)
        if not _is_path_call(inner, "alloc", "alloc_zeroed"):
            continue
        name = node.name
        location = containing_block(program, node.node_id)
        if location is None:
            continue
        block, index = location
        init_stmt = _parse_stmt(f"unsafe {{ *{name} = 0; }}")
        block.stmts.insert(index + 1, init_stmt)
        return program
    return None


@rewrite("shorten_shared_borrow", FixKind.MODIFY,
         "create the shared borrow only after the mutable write")
def shorten_shared_borrow(program):
    main = program.fn("main")
    if main is None:
        return None
    block = main.body
    shared_index, shared_var = None, None
    for index, stmt in enumerate(block.stmts):
        if isinstance(stmt, ast.LetStmt) and isinstance(stmt.init, ast.Unary) \
                and stmt.init.op == "&":
            shared_index, shared_var = index, stmt.name
    if shared_index is None:
        return None
    write_index = None
    for index in range(shared_index + 1, len(block.stmts)):
        stmt = block.stmts[index]
        if isinstance(stmt, ast.ExprStmt) and isinstance(
                stmt.expr, (ast.Assign, ast.CompoundAssign)):
            target = stmt.expr.target
            if isinstance(target, ast.Unary) and target.op == "*":
                write_index = index
    if write_index is None:
        return None
    stmt = block.stmts.pop(shared_index)
    block.stmts.insert(write_index, stmt)  # lands right after the write
    return program


@rewrite("hoist_write_before_shared", FixKind.MODIFY,
         "perform the mutable write before the shared borrow is created")
def hoist_write_before_shared(program):
    main = program.fn("main")
    if main is None:
        return None
    block = main.body
    shared_index = None
    for index, stmt in enumerate(block.stmts):
        if isinstance(stmt, ast.LetStmt) and isinstance(stmt.init, ast.Unary) \
                and stmt.init.op == "&":
            shared_index = index
            break
    if shared_index is None:
        return None
    write_index = None
    for index in range(shared_index + 1, len(block.stmts)):
        stmt = block.stmts[index]
        if isinstance(stmt, ast.ExprStmt) and isinstance(
                stmt.expr, (ast.Assign, ast.CompoundAssign)):
            target = stmt.expr.target
            if isinstance(target, ast.Unary) and target.op == "*":
                write_index = index
                break
    if write_index is None:
        return None
    stmt = block.stmts.pop(write_index)
    block.stmts.insert(shared_index, stmt)
    return program


@rewrite("hoist_raw_use_before_reborrow", FixKind.MODIFY,
         "use the raw pointer before the new borrow invalidates it")
def hoist_raw_use_before_reborrow(program):
    main = program.fn("main")
    if main is None:
        return None
    block = main.body
    raw_var = None
    raw_index = None
    for index, stmt in enumerate(block.stmts):
        if isinstance(stmt, ast.LetStmt) and stmt.init is not None:
            init = stmt.init
            if isinstance(init, ast.Cast) and isinstance(init.ty, ty.TyRawPtr):
                raw_var, raw_index = stmt.name, index
                break
            init = _unwrap_unsafe(init)
            if isinstance(init, ast.MethodCall) and \
                    init.method in ("as_ptr", "as_mut_ptr"):
                raw_var, raw_index = stmt.name, index
                break
    if raw_var is None:
        return None
    invalidate_index = None
    for index in range(raw_index + 1, len(block.stmts)):
        stmt = block.stmts[index]
        if isinstance(stmt, ast.LetStmt) and isinstance(stmt.init, ast.Unary) \
                and stmt.init.op in ("&mut", "&"):
            invalidate_index = index
            break
        if isinstance(stmt, ast.ExprStmt) and isinstance(
                stmt.expr, (ast.Assign, ast.CompoundAssign)):
            target = stmt.expr.target
            if isinstance(target, ast.PathExpr) or isinstance(target, ast.Index):
                invalidate_index = index
                break
    if invalidate_index is None:
        return None
    use_index = None
    for index in range(invalidate_index + 1, len(block.stmts)):
        if _stmt_uses_name(block.stmts[index], raw_var):
            use_index = index
            break
    if use_index is None:
        return None
    stmt = block.stmts.pop(use_index)
    block.stmts.insert(invalidate_index, stmt)
    return program


@rewrite("release_lock_before_relock", FixKind.MODIFY,
         "drop the first guard before taking the lock again")
def release_lock_before_relock(program):
    main = program.fn("main")
    if main is None:
        return None
    block = main.body
    first_guard = None
    for index, stmt in enumerate(block.stmts):
        if isinstance(stmt, ast.LetStmt) and stmt.init is not None:
            init = stmt.init
            if isinstance(init, ast.MethodCall) and init.method == "lock":
                if first_guard is None:
                    first_guard = (index, stmt.name)
                    continue
                drop_stmt = parse_program(
                    f"fn __t() {{ drop({first_guard[1]}); }}"
                ).fn("__t").body.stmts[0]
                block.stmts.insert(index, drop_stmt)
                return program
    return None


@rewrite("fix_call_arity", FixKind.MODIFY,
         "pad/trim a fn-pointer call to the target's real arity")
def fix_call_arity(program):
    for node in walk(program):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.PathExpr)
                and node.func.is_local):
            continue
        let = _let_defining(program, node.func.name)
        if let is None or not isinstance(let.init, ast.PathExpr):
            continue
        target = program.fn(let.init.name)
        if target is None:
            continue
        want = len(target.params)
        if len(node.args) == want:
            continue
        while len(node.args) > want:
            node.args.pop()
        while len(node.args) < want:
            node.args.append(ast.IntLit(1))
        let.ty = None
        return program
    return None


@rewrite("replace_int_fn_transmute_with_fn", FixKind.MODIFY,
         "int→fn transmute → a real function with the declared signature")
def replace_int_fn_transmute_with_fn(program):
    for call in _transmute_calls(program):
        generics = call.func.generic_args
        if len(generics) != 2:
            continue
        src_ty, dst_ty = generics
        if not (isinstance(src_ty, ty.TyInt) and isinstance(dst_ty, ty.TyFn)):
            continue
        for item in program.functions():
            if item.name == "main":
                continue
            sig = ty.TyFn(tuple(p.ty for p in item.params),
                          item.ret or ty.UNIT, item.is_unsafe)
            if str(sig) == str(dst_ty):
                replace_node(program, call.node_id, _reparse(item.name))
                return program
    return None


@rewrite("store_valid_bool", FixKind.MODIFY,
         "writes of out-of-range byte into a bool location → write 1")
def store_valid_bool(program):
    bool_raws = set()
    for node in walk(program):
        if isinstance(node, ast.LetStmt) and node.init is not None:
            init = node.init
            chain = init
            saw_bool_ptr = False
            while isinstance(chain, ast.Cast):
                if isinstance(chain.ty, ty.TyRawPtr) and \
                        isinstance(chain.ty.target, ty.TyBool):
                    saw_bool_ptr = True
                chain = chain.expr
            if saw_bool_ptr and isinstance(chain, ast.Unary):
                bool_raws.add(node.name)
    for node in walk(program):
        if isinstance(node, ast.Assign):
            target = node.target
            if isinstance(target, ast.Unary) and target.op == "*" and \
                    isinstance(target.operand, ast.PathExpr) and \
                    target.operand.name in bool_raws and \
                    isinstance(node.value, ast.IntLit) and \
                    node.value.value not in (0, 1):
                node.value.value = 1
                return program
    return None


# ===========================================================================
# HALLUCINATION rules — deliberately wrong edits


@rewrite("hallu_remove_unsafe_block", FixKind.HALLUCINATION,
         "delete an unsafe marker (breaks E0133)")
def hallu_remove_unsafe_block(program):
    for node in walk(program):
        if isinstance(node, ast.Block) and node.is_unsafe:
            node.is_unsafe = False
            return program
    return None


@rewrite("hallu_perturb_constant", FixKind.HALLUCINATION,
         "change an integer literal (silently breaks semantics)")
def hallu_perturb_constant(program):
    literals = [n for n in walk(program)
                if isinstance(n, ast.IntLit) and n.value not in (0, 1)]
    if not literals:
        literals = [n for n in walk(program) if isinstance(n, ast.IntLit)]
    if not literals:
        return None
    victim = literals[len(literals) // 2]
    victim.value = victim.value + 1
    return program


@rewrite("retouch_output_constant", FixKind.HALLUCINATION,
         "needless rewrite of a load-bearing constant near the fix")
def retouch_output_constant(program):
    """Perturb a literal that actually flows into observable behaviour
    (skips incidental helper statements): models regenerating a whole
    function routinely change such constants."""
    candidates: list[ast.IntLit] = []
    for node in walk(program):
        if not isinstance(node, ast.LetStmt) or node.init is None:
            continue
        if node.name.startswith(("aux_", "__")):
            continue
        for sub in walk(node.init):
            if isinstance(sub, ast.IntLit) and sub.value not in (0, 1):
                candidates.append(sub)
    if not candidates:
        return None
    victim = candidates[0]
    victim.value = victim.value + 1
    return program


@rewrite("hallu_delete_statement", FixKind.HALLUCINATION,
         "drop a statement (often removes a needed binding)")
def hallu_delete_statement(program):
    main = program.fn("main")
    if main is None or not main.body.stmts:
        return None
    index = len(main.body.stmts) // 2
    del main.body.stmts[index]
    return program


@rewrite("hallu_duplicate_statement", FixKind.HALLUCINATION,
         "duplicate a statement (double-frees, double-pushes, ...)")
def hallu_duplicate_statement(program):
    main = program.fn("main")
    if main is None or not main.body.stmts:
        return None
    index = len(main.body.stmts) - 1
    stmt = main.body.stmts[index]
    main.body.stmts.insert(index, clone(stmt))
    return program


HALLUCINATION_RULES = [r.name for r in rules_of_kind(FixKind.HALLUCINATION)]


# ===========================================================================
# Sloppy variants — the same repair idea executed with carelessly-chosen
# constants (wrong fallback value, wrong fill). They pass Miri but change
# observable behaviour: this is how low-semantic-fidelity models produce
# repairs that count for the *pass* metric but not the *exec* metric.


def _patch_int_literal(predicate):
    """Build a patch that flips the first matching IntLit after the base
    rule ran (e.g. a guard's `else { 0 }` fallback becomes `else { 1 }`)."""
    def patch(program):
        for node in walk(program):
            if isinstance(node, ast.IntLit) and predicate(node, program):
                node.value = 1 if node.value == 0 else node.value - 1
                return program
        return program
    return patch


def _is_guard_fallback(lit: ast.IntLit, program) -> bool:
    parents = ast.parent_map(program)
    parent = parents.get(lit.node_id)
    return (isinstance(parent, ast.Block) and parent.tail is lit
            and lit.value == 0)


def _is_zero_fill_arg(lit: ast.IntLit, program) -> bool:
    parents = ast.parent_map(program)
    parent = parents.get(lit.node_id)
    if isinstance(parent, ast.MethodCall) and parent.method in (
            "resize", "unwrap_or") and lit.value == 0:
        return True
    if isinstance(parent, ast.Call) and isinstance(parent.func, ast.PathExpr) \
            and parent.func.segments[-1] == "new" and lit.value == 0:
        return True
    if isinstance(parent, ast.Assign) and parent.value is lit \
            and lit.value == 0:
        return True
    return False


def _patch_saturating_to_wrapping(program):
    for node in walk(program):
        if isinstance(node, ast.MethodCall) and \
                node.method.startswith("saturating_"):
            node.method = node.method.replace("saturating_", "wrapping_")
            return program
    return program


def _patch_shift_mask(program):
    for node in walk(program):
        if isinstance(node, ast.IntLit) and node.value == 32:
            parents = ast.parent_map(program)
            parent = parents.get(node.node_id)
            if isinstance(parent, ast.Binary) and parent.op == "%":
                node.value = 31
                return program
    return program


def _patch_bool_store(program):
    for node in walk(program):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.IntLit) \
                and node.value.value == 1:
            target = node.target
            if isinstance(target, ast.Unary) and target.op == "*":
                node.value.value = 0
                return program
    return program


_SLOPPY_PATCHES = {
    "guard_index_with_len_check": _patch_int_literal(_is_guard_fallback),
    "guard_division_nonzero": _patch_int_literal(_is_guard_fallback),
    "guard_nonnull_before_deref": _patch_int_literal(_is_guard_fallback),
    "guard_ptr_add_with_len_check": _patch_int_literal(_is_guard_fallback),
    "guard_alignment_before_cast_read": _patch_int_literal(_is_guard_fallback),
    "replace_uninit_with_zero_init": _patch_int_literal(_is_zero_fill_arg),
    "replace_set_len_with_resize": _patch_int_literal(_is_zero_fill_arg),
    "replace_unwrap_with_unwrap_or": _patch_int_literal(_is_zero_fill_arg),
    "write_before_assume_init": _patch_int_literal(_is_zero_fill_arg),
    "write_zero_after_alloc": _patch_int_literal(_is_zero_fill_arg),
    "saturating_arith_on_extreme": _patch_saturating_to_wrapping,
    "mask_shift_amount": _patch_shift_mask,
    "store_valid_bool": _patch_bool_store,
}


def _register_sloppy_variants() -> None:
    for base_name, patch in _SLOPPY_PATCHES.items():
        base = REGISTRY[base_name]

        def fn(program, _base=base, _patch=patch):
            transformed = _base.fn(program)
            if transformed is None:
                return None
            return _patch(transformed)

        name = f"sloppy_{base_name}"
        REGISTRY[name] = RewriteRule(
            name, base.kind,
            f"{base.description} — careless constants (semantics drift)",
            fn,
        )


_register_sloppy_variants()

#: base rule name → sloppy variant name (used by the oracle's fidelity model).
SLOPPY_VARIANTS = {base: f"sloppy_{base}" for base in _SLOPPY_PATCHES}


# ---------------------------------------------------------------------------
# Utilities used by rules


def _strip_redundant_unsafe(program: ast.Program, inner_id: int) -> None:
    """After replacing an unsafe op with a safe call, drop a now-pure
    `unsafe { ... }` wrapper if the replacement is its only content."""
    for node in walk(program):
        if isinstance(node, ast.Block) and node.is_unsafe \
                and not node.stmts and node.tail is not None \
                and node.tail.node_id == inner_id:
            node.is_unsafe = False


def apply_rule(program: ast.Program, rule_name: str) -> ast.Program | None:
    """Apply a registry rule by name; returns the transformed clone or None."""
    rule = REGISTRY.get(rule_name)
    if rule is None:
        return None
    return rule.apply(program)


def applicable_rules(program: ast.Program,
                     kinds: tuple[FixKind, ...] = (FixKind.REPLACE,
                                                   FixKind.ASSERT,
                                                   FixKind.MODIFY),
                     ) -> list[str]:
    """Names of all rules whose pattern occurs in ``program``."""
    names = []
    for rule in REGISTRY.values():
        if rule.kind not in kinds:
            continue
        if rule.apply(program) is not None:
            names.append(rule.name)
    return names
