"""Algorithm 1: pruning irrelevant nodes from the Rust AST.

Faithful to the paper's pseudo-code: keep nodes marked ``unsafe`` (Principle
1 — all unsafe operations are explicitly marked), keep the context that the
Miri errors implicate, and drop everything irrelevant so the knowledge-base
vectors and the LLM prompts are not diluted by noise.

The unit of pruning is the *statement*: a statement survives when it
(a) contains an unsafe region or unsafe-adjacent operation, (b) overlaps a
diagnostic span, or (c) defines a name a surviving statement uses
(computed to a fixpoint, so definition chains stay intact).
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.ast_nodes import clone, walk
from ..miri.errors import MiriError

#: Method calls that are unsafe-adjacent even outside an `unsafe` block.
_UNSAFE_ADJACENT_METHODS = {
    "as_ptr", "as_mut_ptr", "set_len", "assume_init", "get_unchecked",
    "get_unchecked_mut", "offset", "add", "sub", "read", "write",
    "read_unaligned", "write_unaligned",
}

_UNSAFE_ADJACENT_CALLS = {
    "transmute", "zeroed", "alloc", "alloc_zeroed", "dealloc", "from_raw",
    "into_raw", "null", "null_mut", "spawn",
}


def prune_program(program: ast.Program,
                  errors: list[MiriError] | None = None) -> ast.Program:
    """Return a pruned clone of ``program`` (Algorithm 1)."""
    errors = errors or []
    pruned = clone(program)
    error_lines = {e.span.line for e in errors if e.span.line}

    kept_items: list[ast.Item] = []
    for item in pruned.items:
        if isinstance(item, ast.FnItem):
            _prune_fn(item, error_lines)
            if item.is_unsafe or item.body.stmts or item.body.tail is not None \
                    or item.name == "main":
                kept_items.append(item)
        elif isinstance(item, (ast.StaticItem, ast.UnionItem)):
            kept_items.append(item)  # statics/unions are unsafe-relevant
        elif isinstance(item, ast.StructItem):
            kept_items.append(item)
        # UseItem / ConstItem are noise for repair purposes.
    pruned.items = kept_items
    return pruned


def _prune_fn(fn: ast.FnItem, error_lines: set[int]) -> None:
    block = fn.body
    keep: list[bool] = []
    for stmt in block.stmts:
        keep.append(_is_relevant(stmt, error_lines) or fn.is_unsafe)

    # Fixpoint: keep definitions of names used by kept statements.
    changed = True
    while changed:
        changed = False
        needed: set[str] = set()
        for flag, stmt in zip(keep, block.stmts):
            if flag:
                needed.update(_used_names(stmt))
        if block.tail is not None:
            needed.update(_used_names_expr(block.tail))
        for index, stmt in enumerate(block.stmts):
            if keep[index]:
                continue
            if isinstance(stmt, ast.LetStmt) and stmt.name in needed:
                keep[index] = True
                changed = True
    block.stmts = [stmt for flag, stmt in zip(keep, block.stmts) if flag]


def _is_relevant(stmt: ast.Stmt, error_lines: set[int]) -> bool:
    for node in walk(stmt):
        if isinstance(node, ast.Block) and node.is_unsafe:
            return True
        if isinstance(node, ast.MethodCall) and \
                node.method in _UNSAFE_ADJACENT_METHODS:
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.PathExpr) \
                and node.func.segments[-1] in _UNSAFE_ADJACENT_CALLS:
            return True
        if isinstance(node, ast.Cast) and node.ty is not None and \
                "*" in str(node.ty):
            return True
        if node.span.line in error_lines:
            return True
    return False


def _used_names(stmt: ast.Stmt) -> set[str]:
    names: set[str] = set()
    for node in walk(stmt):
        if isinstance(node, ast.PathExpr) and node.is_local:
            names.add(node.name)
    if isinstance(stmt, ast.LetStmt):
        names.discard(stmt.name)
    return names


def _used_names_expr(expr: ast.Expr) -> set[str]:
    return {
        node.name for node in walk(expr)
        if isinstance(node, ast.PathExpr) and node.is_local
    }


def pruning_ratio(original: ast.Program, pruned: ast.Program) -> float:
    """Fraction of AST nodes removed (diagnostic metric for the ablation)."""
    before = sum(1 for _ in walk(original))
    after = sum(1 for _ in walk(pruned))
    if before == 0:
        return 0.0
    return max(0.0, 1.0 - after / before)
