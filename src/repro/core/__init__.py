"""RustBrain core: the paper's primary contribution.

Public surface::

    from repro.core import RustBrain, RustBrainConfig
    brain = RustBrain(RustBrainConfig(model="gpt-4"))
    outcome = brain.repair(rust_source)
"""

from .evaluate import Triplet, evaluate_repair, semantically_acceptable
from .feedback import FeedbackMemory
from .knowledge import KnowledgeBase, vectorize
from .pipeline import RepairOutcome, RustBrain, RustBrainConfig
from .pruning import prune_program, pruning_ratio
from .rewrites import FixKind, REGISTRY, apply_rule

__all__ = [
    "FeedbackMemory",
    "FixKind",
    "KnowledgeBase",
    "REGISTRY",
    "RepairOutcome",
    "RustBrain",
    "RustBrainConfig",
    "Triplet",
    "apply_rule",
    "evaluate_repair",
    "prune_program",
    "pruning_ratio",
    "semantically_acceptable",
    "vectorize",
]
