"""RustBrain: the full fast/slow-thinking repair pipeline.

Stage map (Fig. 2):

* **F1** — run the detector ("Miri"); pass-through if no UB.
* **F2** — feature extraction + multi-solution generation (fast thinking),
  boosted by the feedback memory's recalled plans (§III-C).
* **S1** — decompose each solution into agent-tagged steps.
* **S2** — execute with the three fix agents, verify per step, adaptive
  rollback; if everything stalls, the abstract reasoning agent consults the
  knowledge base and a refinement round runs with the retrieved hints.
* **S3** — verified plans are generalised into the feedback memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.registry import apply_config_overrides, register_engine
from ..lang.parser import parse_program
from ..lang.printer import print_program
from ..llm.client import ContextOverflow, LLMClient, VirtualClock
from ..llm.oracle import rank_candidate_rules
from ..miri import BatchVerifier, detect_ub
from .agents.reasoning import AbstractReasoningAgent
from .agents.rollback import RollbackPolicy
from .features import CaseFeatures, analyse
from .feedback import FeedbackMemory
from .knowledge import KnowledgeBase
from .slow import SlowThinking, SolutionOutcome
from .solution import Solution, decompose


@dataclass
class RustBrainConfig:
    model: str = "gpt-4"
    temperature: float = 0.5
    seed: int = 0
    #: fast-thinking candidate solutions per round (RQ1 uses 10).
    n_solutions: int = 6
    #: fast→slow→feedback rounds before giving up.
    max_rounds: int = 2
    use_knowledge_base: bool = True
    kb_coverage: float = 1.0
    use_feedback: bool = True
    use_pruning: bool = True
    rollback: RollbackPolicy = RollbackPolicy.ADAPTIVE
    #: virtual seconds per detector invocation (a real `cargo miri` run).
    detector_seconds: float = 0.8
    max_steps_per_solution: int = 4
    #: Route S2 per-candidate verification through the batched detector
    #: entry point (:func:`repro.miri.detect_ub_batch`): identical verdicts
    #: and identical virtual-clock charges, strictly fewer interpreter
    #: executions when candidates coincide.  ``batch_verify=off`` keeps the
    #: one-detector-run-per-step path (the benchmark gates compare both).
    batch_verify: bool = True
    #: Normalized-AST dedup on top of batching (``batch_verify=on`` only):
    #: the S2 verifier matches candidates by
    #: :func:`repro.miri.source_fingerprint` (formatting- and
    #: identifier-divergent spellings of one program verify once), and F1
    #: detection goes through the process-wide
    #: :func:`repro.miri.detect_case` memo shared with every other engine
    #: consulting the same case source.  Outcomes are byte-identical
    #: either way; ``fingerprint=off`` restores the exact-text engine
    #: paths (the benchmark gates compare run counts).
    fingerprint: bool = True


@dataclass
class RepairOutcome:
    passed: bool
    repaired_source: str | None
    seconds: float
    tokens: int
    llm_calls: int
    solutions_tried: int
    steps_executed: int
    hallucinations: int
    rollbacks: int
    used_knowledge_base: bool
    used_feedback: bool
    error_sequences: list[list[int]] = field(default_factory=list)
    applied_rules: list[str] = field(default_factory=list)
    failure_reason: str | None = None
    #: Per-member summaries when the outcome came from an ensemble engine
    #: (see :mod:`repro.engine.ensemble`); empty for ordinary arms.  Plain
    #: dicts so outcomes stay picklable and JSON-serializable.
    members: list[dict] = field(default_factory=list)


class RustBrain:
    """The paper's framework. One instance accumulates feedback across
    repairs (the self-learning loop); construct fresh instances for
    independent experimental arms."""

    def __init__(self, config: RustBrainConfig | None = None,
                 kb: KnowledgeBase | None = None,
                 feedback: FeedbackMemory | None = None):
        self.config = config or RustBrainConfig()
        self.kb = kb if kb is not None else (
            KnowledgeBase.default(self.config.kb_coverage,
                                  use_pruning=self.config.use_pruning)
            if self.config.use_knowledge_base else None)
        self.feedback = feedback if feedback is not None else FeedbackMemory()
        self._repair_index = 0

    # ------------------------------------------------------------------

    def repair(self, source: str, difficulty: int = 2) -> RepairOutcome:
        """Repair one program; returns the outcome with full accounting."""
        config = self.config
        clock = VirtualClock()
        client = LLMClient(config.model, config.temperature,
                           seed=config.seed * 7919 + self._repair_index,
                           clock=clock)
        self._repair_index += 1

        # F1: detection.  The F1 report seeds the per-repair verification
        # memo: any S2 rewrite chain that arrives back at the original
        # program re-verifies for free (under fingerprinting even though
        # the canonical print spells it differently than the raw input).
        # With fingerprint=on the question itself goes through the
        # process-wide case memo, so N ensemble members consulting this
        # same source interpret it once between them.
        verifier = BatchVerifier(fingerprint=config.fingerprint) \
            if config.batch_verify else None
        clock.advance(config.detector_seconds)
        if verifier is not None and config.fingerprint:
            from ..miri import detect_case
            report = detect_case(source, collect=True)
            verifier.seed(source, report)
        elif verifier is not None:
            report = verifier.verify(source)
        else:
            report = detect_ub(source, collect=True)
        if report.passed:
            return self._outcome(client, True, source, 0, 0, 0, 0, [], [],
                                 used_kb=False, used_feedback=False)
        try:
            program = parse_program(source)
        except Exception:
            return self._outcome(client, False, None, 0, 0, 0, 0, [], [],
                                 used_kb=False, used_feedback=False,
                                 failure_reason="unparseable input")

        slow = SlowThinking(client, config.rollback,
                            config.detector_seconds,
                            config.max_steps_per_solution,
                            verifier=verifier)
        reasoning = (AbstractReasoningAgent(client, self.kb,
                                            config.use_pruning)
                     if self.kb is not None else None)

        solutions_tried = 0
        steps_executed = 0
        hallucinations = 0
        rollbacks = 0
        error_sequences: list[list[int]] = []
        used_kb = False
        used_feedback = False

        for round_index in range(config.max_rounds):
            # F2: features + solution generation.
            try:
                features = analyse(client, program, report,
                                   config.use_pruning)
            except ContextOverflow:
                return self._outcome(
                    client, False, None, solutions_tried, steps_executed,
                    hallucinations, rollbacks, error_sequences, [],
                    used_kb=used_kb, used_feedback=used_feedback,
                    failure_reason="exceeds model context limit")

            feedback_rules = None
            if config.use_feedback:
                feedback_rules = self.feedback.recall(
                    features.vector, features.extracted.predicted_category)
                used_feedback = used_feedback or feedback_rules is not None

            kb_hint = None
            if reasoning is not None:
                # Abstract reasoning: LLM AST extraction → Algorithm 1 →
                # vector search. Consulted every round when the KB is on —
                # this is the 2x-4x overhead Fig. 7 attributes to it.
                hint = reasoning.consult(program, report.errors)
                kb_hint = hint.rules or None
                used_kb = used_kb or bool(kb_hint)

            plans = rank_candidate_rules(
                client, features.extracted, program, config.n_solutions,
                kb_hint=kb_hint, feedback_rules=feedback_rules,
                difficulty=difficulty, round_index=round_index,
                orchestrated=True)
            # Identical samples are one solution, not several: duplicated
            # plans are collapsed, first occurrence winning (low temperatures
            # genuinely yield fewer distinct options — the Fig. 11
            # under-exploration effect).
            seen_plans: set[tuple[str, ...]] = set()
            unique_plans: list[list[str]] = []
            for plan in plans:
                key = tuple(plan)
                if key not in seen_plans:
                    seen_plans.add(key)
                    unique_plans.append(plan)
            guided_rules = set(kb_hint or []) | set(feedback_rules or [])
            solutions = decompose(unique_plans, guided_rules=guided_rules)

            # S1+S2: execute and verify each solution.
            for solution in solutions:
                outcome = slow.execute(solution, program, report.error_count)
                solutions_tried += 1
                steps_executed += outcome.steps_executed
                hallucinations += outcome.hallucinations
                rollbacks += outcome.rollbacks
                error_sequences.append(outcome.error_sequence)
                if outcome.solved:
                    repaired = print_program(outcome.final_program)
                    # S3: generalise the verified plan.
                    if config.use_feedback:
                        self.feedback.learn(
                            features.vector,
                            features.extracted.predicted_category,
                            outcome.applied_rules)
                    return self._outcome(
                        client, True, repaired, solutions_tried,
                        steps_executed, hallucinations, rollbacks,
                        error_sequences, outcome.applied_rules,
                        used_kb=used_kb, used_feedback=used_feedback)

        return self._outcome(
            client, False, None, solutions_tried, steps_executed,
            hallucinations, rollbacks, error_sequences, [],
            used_kb=used_kb, used_feedback=used_feedback,
            failure_reason="all solutions exhausted")

    # ------------------------------------------------------------------

    def _outcome(self, client: LLMClient, passed: bool,
                 repaired: str | None, solutions: int, steps: int,
                 hallucinations: int, rollbacks: int,
                 sequences: list[list[int]], applied: list[str], *,
                 used_kb: bool, used_feedback: bool,
                 failure_reason: str | None = None) -> RepairOutcome:
        return RepairOutcome(
            passed=passed,
            repaired_source=repaired,
            seconds=client.clock.elapsed,
            tokens=client.stats.total_tokens,
            llm_calls=client.stats.call_count,
            solutions_tried=solutions,
            steps_executed=steps,
            hallucinations=hallucinations,
            rollbacks=rollbacks,
            used_knowledge_base=used_kb,
            used_feedback=used_feedback,
            error_sequences=sequences,
            applied_rules=applied,
            failure_reason=failure_reason,
        )


# ---------------------------------------------------------------------------
# Engine registrations — RustBrain and every ablation variant the paper's
# evaluation arms use are declared here, next to the implementation, instead
# of in a central factory if-chain.


def _rustbrain_factory(**variant_defaults):
    def build(*, model: str = "gpt-4", seed: int = 0,
              temperature: float = 0.5, **overrides) -> RustBrain:
        config = RustBrainConfig(model=model, seed=seed,
                                 temperature=temperature)
        apply_config_overrides(config, {**variant_defaults, **overrides})
        return RustBrain(config)
    return build


register_engine(
    "rustbrain",
    summary="full fast/slow-thinking pipeline: KB, feedback, adaptive "
            "rollback (the paper's framework)",
    tags=("rustbrain",),
)(_rustbrain_factory())

register_engine(
    "rustbrain_nokb",
    summary="RustBrain without the pruned-AST knowledge base "
            "(Fig. 8/9 'non knowledge' arm)",
    tags=("rustbrain", "ablation"),
)(_rustbrain_factory(use_knowledge_base=False))

register_engine(
    "rustbrain_nofeedback",
    summary="RustBrain without the self-learning feedback memory",
    tags=("rustbrain", "ablation"),
)(_rustbrain_factory(use_feedback=False))

register_engine(
    "rustbrain_norollback",
    summary="RustBrain with rollback disabled "
            "(hallucination-propagation ablation)",
    tags=("rustbrain", "ablation"),
)(_rustbrain_factory(rollback=RollbackPolicy.NONE))

register_engine(
    "rustbrain_initial_rollback",
    summary="RustBrain with rollback-to-initial instead of adaptive "
            "(prior-framework policy)",
    tags=("rustbrain", "ablation"),
)(_rustbrain_factory(rollback=RollbackPolicy.INITIAL))

register_engine(
    "rustbrain_nopruning",
    summary="RustBrain with the unpruned knowledge base",
    tags=("rustbrain", "ablation"),
)(_rustbrain_factory(use_pruning=False))
