"""The (accuracy, acceptability, overhead) evaluation triplet (§III-C).

*Accuracy* — the repaired program passes the detector.
*Acceptability* — observable behaviour matches the developer-repaired
reference (the paper validates semantics against test benchmarks composed of
developer-repaired code; we compare the full observable trace: stdout).
*Overhead* — virtual seconds and tokens consumed producing the repair.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..miri import detect_ub
from ..miri.errors import MiriReport


@dataclass(frozen=True)
class Triplet:
    accuracy: bool
    acceptability: bool | None   # None when accuracy is False
    seconds: float
    tokens: int

    def as_dict(self) -> dict:
        return {
            "accuracy": self.accuracy,
            "acceptability": self.acceptability,
            "seconds": round(self.seconds, 2),
            "tokens": self.tokens,
        }


def observable_trace(source: str) -> tuple[bool, list[str]]:
    """(passed, stdout) of a program under the detector."""
    report = detect_ub(source)
    return report.passed, list(report.stdout)


def semantically_acceptable(repaired_source: str,
                            reference_source: str) -> bool:
    """Exec-metric check: repaired output must match the developer fix."""
    ok_repaired, out_repaired = observable_trace(repaired_source)
    ok_reference, out_reference = observable_trace(reference_source)
    if not (ok_repaired and ok_reference):
        return False
    return out_repaired == out_reference


def evaluate_repair(repaired_source: str | None, reference_source: str,
                    seconds: float, tokens: int) -> Triplet:
    """Assemble the full triplet for a finished repair attempt."""
    if repaired_source is None:
        return Triplet(False, None, seconds, tokens)
    report = detect_ub(repaired_source)
    if not report.passed:
        return Triplet(False, None, seconds, tokens)
    acceptable = semantically_acceptable(repaired_source, reference_source)
    return Triplet(True, acceptable, seconds, tokens)
