"""The (accuracy, acceptability, overhead) evaluation triplet (§III-C).

*Accuracy* — the repaired program passes the detector.
*Acceptability* — observable behaviour matches the developer-repaired
reference (the paper validates semantics against test benchmarks composed of
developer-repaired code; we compare the full observable trace: stdout).
*Overhead* — virtual seconds and tokens consumed producing the repair.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..miri import DETECTOR_STATS, detect_ub_batch, source_fingerprint
from ..miri.errors import MiriReport

#: Process-wide observable-trace memo for the exec metric, keyed by the
#: normalized :func:`~repro.miri.source_fingerprint`.  The detector is a
#: pure function of the *program* — and a trace (pass verdict + stdout)
#: is invariant under formatting and consistent identifier renaming — so
#: a trace computed once is valid for the life of the process, and a
#: repair that reproduces the developer reference up to formatting is
#: not re-interpreted at all.  Campaigns re-verify the same reference
#: for every (arm, seed) pair that repairs a case.  Bounded so a
#: pathological workload cannot grow it without limit.
_TRACE_MEMO: dict[str, tuple[bool, tuple[str, ...]]] = {}
_TRACE_MEMO_LIMIT = 4096


def clear_trace_memo() -> None:
    """Drop every memoized trace (results are unaffected — the detector is
    pure).  For benchmarks that publish detector-run counts and must not
    inherit warmth from earlier stages in the same process."""
    _TRACE_MEMO.clear()


def _traces(sources: tuple[str, ...]) -> list[tuple[bool, tuple[str, ...]]]:
    """(passed, stdout) per source; unseen distinct *fingerprints* run in
    one batched detector call, repeats are answered from the memo."""
    fingerprints = [source_fingerprint(source) for source in sources]
    missing: dict[str, str] = {}  # fingerprint -> representative source
    for fingerprint, source in zip(fingerprints, sources):
        if fingerprint not in _TRACE_MEMO and fingerprint not in missing:
            missing[fingerprint] = source
    fresh: dict[str, tuple[bool, tuple[str, ...]]] = {}
    if missing:
        # The representatives are fingerprint-distinct already, so the
        # batch's own fingerprint pass would find nothing.
        for fingerprint, report in zip(
                missing, detect_ub_batch(list(missing.values()),
                                         fingerprint=False)):
            fresh[fingerprint] = (report.passed, tuple(report.stdout))
            if len(_TRACE_MEMO) < _TRACE_MEMO_LIMIT:
                _TRACE_MEMO[fingerprint] = fresh[fingerprint]
    # Questions answered without reaching detect_ub_batch (memo hits and
    # in-call duplicates) still count as requests; ``runs`` alone reflects
    # the amortization.
    DETECTOR_STATS.record(requests=len(sources) - len(missing))
    return [fresh.get(fingerprint) or _TRACE_MEMO[fingerprint]
            for fingerprint in fingerprints]


@dataclass(frozen=True)
class Triplet:
    accuracy: bool
    acceptability: bool | None   # None when accuracy is False
    seconds: float
    tokens: int

    def as_dict(self) -> dict:
        return {
            "accuracy": self.accuracy,
            "acceptability": self.acceptability,
            "seconds": round(self.seconds, 2),
            "tokens": self.tokens,
        }


def observable_trace(source: str) -> tuple[bool, list[str]]:
    """(passed, stdout) of a program under the detector."""
    passed, stdout = _traces((source,))[0]
    return passed, list(stdout)


def semantically_acceptable(repaired_source: str,
                            reference_source: str) -> bool:
    """Exec-metric check: repaired output must match the developer fix.

    Both traces come from one batched, memoized detector pass — when the
    repair *is* the developer fix the program is interpreted once, and a
    reference already scored for another arm or seed is not re-interpreted
    at all.
    """
    repaired, reference = _traces((repaired_source, reference_source))
    if not (repaired[0] and reference[0]):
        return False
    return repaired[1] == reference[1]


def evaluate_repair(repaired_source: str | None, reference_source: str,
                    seconds: float, tokens: int) -> Triplet:
    """Assemble the full triplet for a finished repair attempt."""
    if repaired_source is None:
        return Triplet(False, None, seconds, tokens)
    if not _traces((repaired_source,))[0][0]:
        return Triplet(False, None, seconds, tokens)
    # The repaired trace above is a memo hit here — one interpretation.
    acceptable = semantically_acceptable(repaired_source, reference_source)
    return Triplet(True, acceptable, seconds, tokens)
