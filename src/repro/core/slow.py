"""Slow thinking (stages S1–S2): decompose, execute, verify, roll back.

For each candidate solution, the steps are dispatched to the matching fix
agent, the detector re-verifies after every step, and the adaptive rollback
agent decides what state the next step builds on. When every fast-thinking
solution stalls, the abstract reasoning agent consults the knowledge base
and one refinement round is attempted with the retrieved hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast_nodes as ast
from ..llm.client import LLMClient
from ..miri import BatchVerifier
from .agents.base import AgentResult, FixAgent
from .agents.rollback import RollbackAgent, RollbackPolicy
from .solution import Solution


@dataclass
class SolutionOutcome:
    solution: Solution
    solved: bool
    final_program: ast.Program | None
    steps_executed: int
    hallucinations: int
    rollbacks: int
    error_sequence: list[int]
    applied_rules: list[str] = field(default_factory=list)


class SlowThinking:
    def __init__(self, client: LLMClient,
                 rollback_policy: RollbackPolicy = RollbackPolicy.ADAPTIVE,
                 detector_seconds: float = 0.8,
                 max_steps_per_solution: int = 4,
                 verifier: BatchVerifier | None = None):
        self.client = client
        self.rollback_policy = rollback_policy
        self.max_steps = max_steps_per_solution
        #: One batched-verification memo shared by all three agents, so the
        #: dedup spans every solution and round of the repair this instance
        #: serves — and, when the verifier fingerprints, formatting- or
        #: identifier-divergent spellings of one candidate program too;
        #: ``None`` keeps the one-detector-run-per-step path.
        self.verifier = verifier
        self.agents = {
            name: FixAgent(name, client, detector_seconds, verifier)
            for name in ("safe_replacement", "assertion", "modification")
        }

    # ------------------------------------------------------------------

    def execute(self, solution: Solution, program: ast.Program,
                initial_errors: int) -> SolutionOutcome:
        """Run one solution's steps to completion or exhaustion."""
        rollback = RollbackAgent(self.rollback_policy, program, initial_errors)
        current = program
        current_errors = initial_errors
        executed = 0
        hallucinations = 0
        applied: list[str] = []

        for step in solution.steps[: self.max_steps]:
            agent = self.agents.get(step.agent, self.agents["modification"])
            result = agent.execute(step, current, current_errors)
            executed += 1
            if result.hallucinated:
                hallucinations += 1
            if result.program is None:
                # No-op edit; the trajectory records an unchanged count.
                rollback.observe(current, current_errors)
                continue
            applied.append(result.applied_rule)
            rollback.observe(result.program, result.error_count)
            if result.solved:
                return SolutionOutcome(
                    solution, True, result.program, executed, hallucinations,
                    rollback.rollbacks, rollback.error_sequence, applied)
            current, current_errors = rollback.next_base(
                result.program, result.error_count)

        return SolutionOutcome(
            solution, False, rollback.best.program, executed, hallucinations,
            rollback.rollbacks, rollback.error_sequence, applied)
