"""Type inference and checking over the ``lang`` AST.

A bidirectional-ish walk: every expression gets a type in the domain

    ``Ty`` | ``ANY_INT`` | ``None``

where ``ANY_INT`` is the unsuffixed-integer-literal sentinel (compatible
with every concrete integer type, exactly like rustc's ``{integer}``
inference variable) and ``None`` means *unknown* — a shape the checker
does not model.  Every check is gated on knowledge: unknown types make a
check silently pass, never fail.  That asymmetry is the design center:
the checker runs as a standing oracle over the whole UB corpus (buggy
and fixed sources alike), so a false positive is a correctness bug while
a false negative is merely a missed diagnostic.

Emitted codes: ``E0308`` (mismatched types in let/assign/call/return/
condition/operand positions), ``E0061`` (direct-call arity), ``E0369``
(operator on non-numeric operand), ``E0512`` (transmute size mismatch,
with a cast suggestion), ``E0605`` (invalid cast), ``E0608`` (indexing a
non-indexable type), ``E0609`` (unknown field), ``E0614`` (deref of a
non-pointer), ``E0560``/``E0063`` (struct literal fields).
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.span import Span
from ..lang.types import (BOOL, CHAR, INFER, INT_TYPES, ISIZE, NEVER, U8,
                          U32, UNIT, USIZE, LayoutError, StructLayout, Ty,
                          TyArray, TyBool, TyChar, TyFn, TyInfer, TyInt,
                          TyNever, TyPath, TyRawPtr, TyRef, TySlice, TyStr,
                          TyTuple, TyUnit, contains_infer, normalize,
                          size_of)
from .diagnostics import Diagnostic, Label, Suggestion
from .names import ItemTables


class _AnyInt:
    """Sentinel for an unsuffixed integer literal's pending type."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "{integer}"


ANY_INT = _AnyInt()

#: Inferred type of an expression: a concrete type, the pending-integer
#: sentinel, or ``None`` for "unknown — do not check".
InferTy = Ty | _AnyInt | None

_ARITH = frozenset({"+", "-", "*", "/", "%"})
_BITS = frozenset({"&", "|", "^"})
_SHIFTS = frozenset({"<<", ">>"})
_CMP = frozenset({"<", "<=", ">", ">="})
_EQ = frozenset({"==", "!="})
_LOGIC = frozenset({"&&", "||"})

_NEVER_MACROS = frozenset({"panic", "unreachable", "todo", "unimplemented"})
_PRINT_MACROS = frozenset({"println", "print", "eprintln", "eprint"})


def fmt_ty(t: InferTy) -> str:
    """Human form of an inferred type (rustc prints ``{integer}``)."""
    if t is ANY_INT:
        return "{integer}"
    if t is None:
        return "_"
    return str(t)


def degrade(t: InferTy) -> Ty:
    """Embed an inferred type into a container slot (unknown → ``_``)."""
    if isinstance(t, Ty):
        return t
    return INFER


def _struct_compat(e: Ty, a: Ty) -> bool:
    if isinstance(e, TyInfer) or isinstance(a, TyInfer):
        return True
    if isinstance(e, TyNever) or isinstance(a, TyNever):
        return True
    if isinstance(e, TyInt):
        return isinstance(a, TyInt) and e.name == a.name
    if isinstance(e, TyRef):
        if not isinstance(a, TyRef):
            return False
        if e.mutable and not a.mutable:
            return False
        return _struct_compat(e.target, a.target)
    if isinstance(e, TyRawPtr):
        # `&T` coerces to `*const T`, `&mut T` to both raw flavours.
        if not isinstance(a, (TyRawPtr, TyRef)):
            return False
        if e.mutable and not a.mutable:
            return False
        return _struct_compat(e.target, a.target)
    if isinstance(e, TySlice):
        if isinstance(a, TyArray):  # unsize coercion behind the ref
            return _struct_compat(e.elem, a.elem)
        return isinstance(a, TySlice) and _struct_compat(e.elem, a.elem)
    if isinstance(e, TyArray):
        return (isinstance(a, TyArray) and e.length == a.length
                and _struct_compat(e.elem, a.elem))
    if isinstance(e, TyTuple):
        return (isinstance(a, TyTuple) and len(e.elems) == len(a.elems)
                and all(_struct_compat(x, y)
                        for x, y in zip(e.elems, a.elems)))
    if isinstance(e, TyFn):
        return (isinstance(a, TyFn) and len(e.params) == len(a.params)
                and all(_struct_compat(x, y)
                        for x, y in zip(e.params, a.params))
                and _struct_compat(e.ret, a.ret))
    if isinstance(e, TyPath):
        return (isinstance(a, TyPath) and e.name == a.name
                and len(e.args) == len(a.args)
                and all(_struct_compat(x, y)
                        for x, y in zip(e.args, a.args)))
    return type(e) is type(a)


def compatible(expected: InferTy, actual: InferTy) -> bool:
    """Whether ``actual`` is acceptable where ``expected`` is required.

    Unknowns are compatible with everything (the no-false-positive
    gate); ``ANY_INT`` matches every integer type; ``!`` coerces to any
    type; ``&T`` coerces to ``*const T`` and arrays unsize to slices
    behind references.
    """
    if expected is None or actual is None:
        return True
    if isinstance(expected, Ty) and contains_infer(expected):
        return True
    if isinstance(actual, Ty) and contains_infer(actual):
        return True
    if expected is ANY_INT:
        return actual is ANY_INT or isinstance(actual, (TyInt, TyNever))
    if actual is ANY_INT:
        return isinstance(expected, (TyInt, TyNever))
    return _struct_compat(normalize(expected), normalize(actual))


def _score(t: InferTy) -> int:
    if t is None:
        return 0
    if t is ANY_INT:
        return 1
    return 2 if contains_infer(t) else 3


def pick(a: InferTy, b: InferTy) -> InferTy:
    """The more informative of two compatible inferences."""
    return a if _score(a) >= _score(b) else b


def call_extent(source: str, start: int) -> int | None:
    """Offset one past the ``)`` closing the call that starts at
    ``start`` (textual paren matching; fine for suggestion splices on
    the shapes the checker recognises)."""
    open_idx = source.find("(", start)
    if open_idx == -1:
        return None
    depth = 0
    for idx in range(open_idx, len(source)):
        ch = source[idx]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return idx + 1
    return None


class Typeck:
    """One checking walk over a program; collects diagnostics."""

    def __init__(self, program: ast.Program, source: str,
                 tables: ItemTables,
                 layouts: dict[str, StructLayout]):
        self.program = program
        self.source = source
        self.tables = tables
        self.layouts = layouts
        self.diagnostics: list[Diagnostic] = []
        self._scopes: list[dict[str, InferTy]] = []
        self._ret: InferTy = UNIT

    # ------------------------------------------------------------------
    # Entry points

    def run(self) -> list[Diagnostic]:
        for item in self.program.items:
            if isinstance(item, ast.FnItem):
                self._check_fn(item)
            elif isinstance(item, (ast.StaticItem, ast.ConstItem)):
                self._scopes = [{}]
                init_t = self.infer(item.init)
                if item.ty is not None and not compatible(item.ty, init_t):
                    self._mismatch(item.ty, init_t, item.init.span)
                self._scopes = []
        return self.diagnostics

    def _check_fn(self, item: ast.FnItem) -> None:
        frame: dict[str, InferTy] = {}
        for param in item.params:
            frame[param.name] = param.ty
        self._scopes = [frame]
        self._ret = item.ret if item.ret is not None else UNIT
        body_t = self._infer_block(item.body, fresh_frame=False)
        if (item.ret is not None and item.body.tail is not None
                and not compatible(self._ret, body_t)):
            self._mismatch(self._ret, body_t, item.body.tail.span,
                           note=f"`{item.name}` declares return type "
                                f"`{item.ret}`")
        self._scopes = []

    # ------------------------------------------------------------------
    # Diagnostics helpers

    def _emit(self, code: str, message: str, span: Span, *,
              labels: tuple[Label, ...] = (),
              notes: tuple[str, ...] = (),
              suggestions: tuple[Suggestion, ...] = ()) -> None:
        self.diagnostics.append(Diagnostic(
            code=code, message=message, span=span,
            labels=labels, notes=notes, suggestions=suggestions))

    def _mismatch(self, expected: InferTy, actual: InferTy, span: Span,
                  *, note: str | None = None,
                  suggestions: tuple[Suggestion, ...] = ()) -> None:
        self._emit(
            "E0308",
            f"mismatched types: expected `{fmt_ty(expected)}`, "
            f"found `{fmt_ty(actual)}`",
            span,
            notes=(note,) if note else (),
            suggestions=suggestions)

    def _expect_bool(self, t: InferTy, span: Span) -> None:
        if t is ANY_INT or (isinstance(t, Ty) and not isinstance(
                t, (TyBool, TyNever, TyInfer))):
            self._mismatch(BOOL, t, span)

    # ------------------------------------------------------------------
    # Scopes

    def _lookup(self, name: str) -> InferTy:
        for frame in reversed(self._scopes):
            if name in frame:
                return frame[name]
        if name in self.tables.consts:
            return self.tables.consts[name].ty
        if name in self.tables.statics:
            return self.tables.statics[name].ty
        if name in self.tables.functions:
            item = self.tables.functions[name]
            return TyFn(tuple(p.ty if p.ty is not None else INFER
                              for p in item.params),
                        item.ret if item.ret is not None else UNIT,
                        item.is_unsafe)
        return None

    # ------------------------------------------------------------------
    # Statements and blocks

    def _infer_block(self, block: ast.Block,
                     fresh_frame: bool = True) -> InferTy:
        if fresh_frame:
            self._scopes.append({})
        diverges = False
        for stmt in block.stmts:
            if isinstance(stmt, ast.LetStmt):
                self._check_let(stmt)
            elif isinstance(stmt, ast.ExprStmt):
                t = self.infer(stmt.expr)
                if isinstance(t, TyNever):
                    diverges = True
        tail_t: InferTy = UNIT
        if block.tail is not None:
            tail_t = self.infer(block.tail)
        elif diverges:
            tail_t = NEVER
        if fresh_frame:
            self._scopes.pop()
        return tail_t

    def _check_let(self, stmt: ast.LetStmt) -> None:
        init_t: InferTy = None
        if stmt.init is not None:
            init_t = self.infer(stmt.init)
        if (stmt.ty is not None and stmt.init is not None
                and not compatible(stmt.ty, init_t)):
            suggestions: tuple[Suggestion, ...] = ()
            if (isinstance(normalize(stmt.ty), TyBool)
                    and (init_t is ANY_INT or isinstance(init_t, TyInt))
                    and isinstance(stmt.init, (ast.PathExpr, ast.IntLit))):
                src = self.source[stmt.init.span.start:stmt.init.span.end]
                suggestions = (Suggestion(
                    message="compare with zero to get a `bool`",
                    span=stmt.init.span,
                    replacement=f"{src} != 0"),)
            self._mismatch(stmt.ty, init_t, stmt.init.span,
                           note=f"`{stmt.name}` is declared as `{stmt.ty}`",
                           suggestions=suggestions)
        self._scopes[-1][stmt.name] = stmt.ty if stmt.ty is not None \
            else init_t

    # ------------------------------------------------------------------
    # Expressions

    def infer(self, node: ast.Expr) -> InferTy:
        method = getattr(self, f"_infer_{type(node).__name__}", None)
        if method is None:
            return None
        return method(node)

    # -- literals -------------------------------------------------------

    def _infer_IntLit(self, node: ast.IntLit) -> InferTy:
        if node.suffix:
            return INT_TYPES.get(node.suffix)
        return ANY_INT

    def _infer_BoolLit(self, node: ast.BoolLit) -> InferTy:
        return BOOL

    def _infer_CharLit(self, node: ast.CharLit) -> InferTy:
        return CHAR

    def _infer_StrLit(self, node: ast.StrLit) -> InferTy:
        return TyRef(TyStr(), False)

    # -- paths ----------------------------------------------------------

    def _infer_PathExpr(self, node: ast.PathExpr) -> InferTy:
        if len(node.segments) == 1:
            name = node.segments[0]
            if name == "None":
                return TyPath("Option", (INFER,))
            return self._lookup(name)
        head, last = node.segments[0], node.segments[-1]
        if head in INT_TYPES and last in ("MAX", "MIN"):
            return INT_TYPES[head]
        if head == "Ordering" or (len(node.segments) >= 2
                                  and node.segments[-2] == "Ordering"):
            return TyPath("Ordering")
        return None

    # -- operators ------------------------------------------------------

    def _infer_Unary(self, node: ast.Unary) -> InferTy:
        t = self.infer(node.operand)
        if node.op in ("&", "&mut"):
            return TyRef(degrade(t), node.op == "&mut")
        if node.op == "*":
            return self._deref(t, node.span, emit=True)
        if node.op == "-":
            if t is ANY_INT or isinstance(t, TyInt):
                return t
            if isinstance(t, (TyBool, TyChar, TyUnit)):
                self._emit("E0369",
                           f"cannot apply unary operator `-` to type "
                           f"`{fmt_ty(t)}`", node.span)
            return None
        if node.op == "!":
            if t is ANY_INT or isinstance(t, (TyInt, TyBool)):
                return t
            if isinstance(t, (TyChar, TyUnit)):
                self._emit("E0369",
                           f"cannot apply unary operator `!` to type "
                           f"`{fmt_ty(t)}`", node.span)
            return None
        return None

    def _deref(self, t: InferTy, span: Span, *, emit: bool) -> InferTy:
        if isinstance(t, (TyRef, TyRawPtr)):
            return t.target
        if isinstance(t, TyPath):
            if t.name in ("Box", "MutexGuard", "ManuallyDrop") and t.args:
                return t.args[0]
            if t.name == "Vec" and t.args:
                return TySlice(t.args[0])
            if t.name == "String":
                return TyStr()
        if emit and isinstance(t, (TyInt, TyBool, TyChar, TyTuple,
                                   TyArray, TyUnit)):
            self._emit("E0614",
                       f"type `{fmt_ty(t)}` cannot be dereferenced", span)
        return None

    def _numeric_operand(self, op: str, t: InferTy, span: Span) -> None:
        if isinstance(t, (TyBool, TyChar, TyUnit)):
            self._emit("E0369",
                       f"cannot apply binary operator `{op}` to type "
                       f"`{fmt_ty(t)}`", span)

    def _infer_Binary(self, node: ast.Binary) -> InferTy:
        lt = self.infer(node.left)
        rt = self.infer(node.right)
        op = node.op
        if op in _LOGIC:
            self._expect_bool(lt, node.left.span)
            self._expect_bool(rt, node.right.span)
            return BOOL
        if op in _SHIFTS:
            # Shift operands may have distinct integer types; only the
            # left side determines the result.
            self._numeric_operand(op, lt, node.left.span)
            self._numeric_operand(op, rt, node.right.span)
            return lt if (lt is ANY_INT or isinstance(lt, TyInt)) else None
        if op in _BITS and isinstance(lt, TyBool) and isinstance(rt, TyBool):
            return BOOL
        if op in _ARITH or op in _BITS:
            self._numeric_operand(op, lt, node.left.span)
            self._numeric_operand(op, rt, node.right.span)
            if isinstance(lt, TyInt) and isinstance(rt, TyInt):
                if lt.name != rt.name:
                    self._mismatch(lt, rt, node.right.span)
                return lt
            if isinstance(lt, TyInt) and rt is ANY_INT:
                return lt
            if lt is ANY_INT and isinstance(rt, TyInt):
                return rt
            if lt is ANY_INT and rt is ANY_INT:
                return ANY_INT
            if isinstance(lt, TyNever):
                return rt
            if isinstance(rt, TyNever):
                return lt
            return None
        if op in _CMP or op in _EQ:
            if not (compatible(lt, rt) or compatible(rt, lt)):
                self._mismatch(lt, rt, node.right.span)
            return BOOL
        return None

    # -- assignment -----------------------------------------------------

    def _infer_Assign(self, node: ast.Assign) -> InferTy:
        target_t = self.infer(node.target)
        value_t = self.infer(node.value)
        if not compatible(target_t, value_t):
            self._mismatch(target_t, value_t, node.value.span)
        return UNIT

    def _infer_CompoundAssign(self, node: ast.CompoundAssign) -> InferTy:
        target_t = self.infer(node.target)
        value_t = self.infer(node.value)
        if node.op in _ARITH or node.op in _SHIFTS:
            self._numeric_operand(node.op, target_t, node.target.span)
        if node.op not in _SHIFTS and not compatible(target_t, value_t):
            self._mismatch(target_t, value_t, node.value.span)
        return UNIT

    # -- calls ----------------------------------------------------------

    def _infer_Call(self, node: ast.Call) -> InferTy:
        arg_ts = [self.infer(arg) for arg in node.args]
        func = node.func
        if not isinstance(func, ast.PathExpr):
            self.infer(func)
            return None
        if len(func.segments) == 1:
            name = func.segments[0]
            local = None
            for frame in reversed(self._scopes):
                if name in frame:
                    local = frame[name]
                    break
            if local is not None:
                # A call through a fn-valued local: never arity-checked.
                return local.ret if isinstance(local, TyFn) else None
            if name in self.tables.functions:
                return self._call_fn_item(self.tables.functions[name],
                                          node, arg_ts)
            if name == "drop":
                if len(node.args) != 1:
                    self._emit("E0061",
                               f"`drop` takes 1 argument but "
                               f"{len(node.args)} were supplied", node.span)
                return UNIT
            if name == "Some":
                return TyPath("Option",
                              (degrade(arg_ts[0]) if arg_ts else INFER,))
            return None
        return self._builtin_call(func, node, arg_ts)

    def _call_fn_item(self, item: ast.FnItem, node: ast.Call,
                      arg_ts: list[InferTy]) -> InferTy:
        want, got = len(item.params), len(node.args)
        if want != got:
            suggestions: tuple[Suggestion, ...] = ()
            if got < want and all(isinstance(p.ty, TyInt)
                                  for p in item.params[got:]):
                extent = call_extent(self.source, node.span.start)
                if extent is not None:
                    head = self.source[node.span.start:extent - 1]
                    pad = ", ".join("0" for _ in range(want - got))
                    joined = f"{head}, {pad})" if got else f"{head}{pad})"
                    suggestions = (Suggestion(
                        message="provide the missing arguments",
                        span=Span(node.span.start, extent,
                                  node.span.line, node.span.col),
                        replacement=joined),)
            plural = "s" if want != 1 else ""
            self._emit("E0061",
                       f"this function takes {want} argument{plural} but "
                       f"{got} were supplied", node.span,
                       labels=(Label(item.span,
                                     f"`{item.name}` defined here"),),
                       suggestions=suggestions)
        for param, arg, arg_t in zip(item.params, node.args, arg_ts):
            if param.ty is not None and not compatible(param.ty, arg_t):
                self._mismatch(param.ty, arg_t, arg.span,
                               note=f"parameter `{param.name}` of "
                                    f"`{item.name}` is `{param.ty}`")
        return item.ret if item.ret is not None else UNIT

    def _builtin_call(self, func: ast.PathExpr, node: ast.Call,
                      arg_ts: list[InferTy]) -> InferTy:
        segments = list(func.segments)
        if segments and segments[0] == "std":
            segments = segments[1:]
        key = "::".join(segments)
        gargs = func.generic_args

        def garg(idx: int) -> Ty:
            return gargs[idx] if len(gargs) > idx else INFER

        def arg(idx: int) -> InferTy:
            return arg_ts[idx] if len(arg_ts) > idx else None

        if key == "Box::new":
            return TyPath("Box", (degrade(arg(0)),))
        if key == "Box::into_raw":
            inner = arg(0)
            if isinstance(inner, TyPath) and inner.name == "Box" \
                    and inner.args:
                return TyRawPtr(inner.args[0], True)
            return TyRawPtr(INFER, True)
        if key == "Box::from_raw":
            inner = arg(0)
            if isinstance(inner, TyRawPtr):
                return TyPath("Box", (inner.target,))
            return TyPath("Box", (INFER,))
        if key in ("Vec::new", "Vec::with_capacity"):
            return TyPath("Vec", (garg(0),))
        if key == "String::new":
            return TyPath("String")
        if key == "String::from":
            return TyPath("String")
        if key in ("MaybeUninit::uninit", "MaybeUninit::zeroed"):
            return TyPath("MaybeUninit", (garg(0),))
        if key == "MaybeUninit::new":
            return TyPath("MaybeUninit", (degrade(arg(0)),))
        if key == "ManuallyDrop::new":
            return TyPath("ManuallyDrop", (degrade(arg(0)),))
        if key == "ManuallyDrop::into_inner":
            inner = arg(0)
            if isinstance(inner, TyPath) and inner.args:
                return inner.args[0]
            return None
        if key == "Mutex::new":
            return TyPath("Mutex", (degrade(arg(0)),))
        if key in ("AtomicUsize::new", "AtomicI64::new", "AtomicBool::new"):
            return TyPath(segments[0])
        if key == "Layout::new":
            return TyPath("Layout")
        if key in ("Layout::from_size_align", "Layout::array"):
            return TyPath("Result", (TyPath("Layout"), INFER))
        if key in ("alloc::alloc", "alloc::alloc_zeroed", "alloc::realloc"):
            return TyRawPtr(U8, True)
        if key == "alloc::dealloc":
            return UNIT
        if key == "ptr::null":
            return TyRawPtr(garg(0), False)
        if key == "ptr::null_mut":
            return TyRawPtr(garg(0), True)
        if key == "ptr::read":
            inner = arg(0)
            if isinstance(inner, (TyRawPtr, TyRef)):
                return inner.target
            return None
        if key in ("ptr::write", "ptr::copy", "ptr::copy_nonoverlapping",
                   "ptr::drop_in_place", "ptr::write_bytes"):
            return UNIT
        if key == "mem::transmute":
            return self._check_transmute(func, node, arg_ts)
        if key in ("mem::zeroed", "mem::uninitialized"):
            return garg(0) if gargs else None
        if key in ("mem::size_of", "mem::align_of", "mem::size_of_val"):
            return USIZE
        if key in ("mem::forget", "mem::drop", "mem::swap"):
            return UNIT
        if key == "mem::replace":
            inner = arg(0)
            if isinstance(inner, TyRef):
                return inner.target
            return None
        if key == "thread::spawn":
            return TyPath("JoinHandle", (INFER,))
        if key == "process::exit":
            return NEVER
        if key == "char::from_u32":
            return TyPath("Option", (CHAR,))
        if key == "char::from_u32_unchecked":
            return CHAR
        if segments[0] in INT_TYPES:
            # `u32::from_le_bytes(..)` style constructors.
            return INT_TYPES[segments[0]]
        return None

    def _check_transmute(self, func: ast.PathExpr, node: ast.Call,
                         arg_ts: list[InferTy]) -> InferTy:
        gargs = func.generic_args
        if len(gargs) != 2:
            return gargs[0] if len(gargs) == 1 else None
        src_ty, dst_ty = gargs
        if not (contains_infer(src_ty) or contains_infer(dst_ty)):
            try:
                src_size = size_of(src_ty, self.layouts)
                dst_size = size_of(dst_ty, self.layouts)
            except LayoutError:
                return dst_ty
            if src_size != dst_size:
                suggestions: tuple[Suggestion, ...] = ()
                src_t = arg_ts[0] if arg_ts else None
                if (len(node.args) == 1 and isinstance(dst_ty, TyInt)
                        and (src_t is ANY_INT
                             or isinstance(src_t, (TyInt, TyRawPtr)))):
                    extent = call_extent(self.source, node.span.start)
                    arg_node = node.args[0]
                    if extent is not None and isinstance(
                            arg_node, (ast.PathExpr, ast.IntLit)):
                        src = self.source[arg_node.span.start:
                                          arg_node.span.end]
                        suggestions = (Suggestion(
                            message="use a lossless `as` cast instead",
                            span=Span(node.span.start, extent,
                                      node.span.line, node.span.col),
                            replacement=f"{src} as {dst_ty}"),)
                self._emit(
                    "E0512",
                    f"cannot transmute between types of different sizes: "
                    f"`{src_ty}` ({src_size} bytes) vs `{dst_ty}` "
                    f"({dst_size} bytes)",
                    node.span,
                    suggestions=suggestions)
        return dst_ty

    # -- method calls ---------------------------------------------------

    def _infer_MethodCall(self, node: ast.MethodCall) -> InferTy:
        recv_t = self.infer(node.receiver)
        arg_ts = [self.infer(arg) for arg in node.args]
        t = recv_t
        for _ in range(4):
            result = self._method(t, node, arg_ts)
            if result is not _MISS:
                return result
            t = self._deref(t, node.span, emit=False)
            if t is None:
                return None
        return None

    def _method(self, t: InferTy, node: ast.MethodCall,
                arg_ts: list[InferTy]):
        name = node.method
        gargs = node.generic_args
        if not isinstance(t, Ty):
            return None if t is None else _MISS
        if name == "clone":
            return t
        if isinstance(t, TyPath):
            return self._path_method(t, name, node, arg_ts, gargs)
        if isinstance(t, (TyArray, TySlice)):
            elem = t.elem
            if name == "len":
                return USIZE
            if name == "is_empty":
                return BOOL
            if name == "as_ptr":
                return TyRawPtr(elem, False)
            if name == "as_mut_ptr":
                return TyRawPtr(elem, True)
            if name in ("get", "first", "last"):
                return TyPath("Option", (TyRef(elem, False),))
            return _MISS
        if isinstance(t, TyRawPtr):
            if name in ("add", "sub", "offset", "wrapping_add",
                        "wrapping_sub", "wrapping_offset"):
                return t
            if name in ("read", "read_unaligned", "read_volatile"):
                return t.target
            if name in ("write", "write_unaligned", "write_volatile",
                        "write_bytes"):
                return UNIT
            if name == "is_null":
                return BOOL
            if name == "cast":
                return TyRawPtr(gargs[0] if gargs else INFER, t.mutable)
            if name == "offset_from":
                return ISIZE
            return None
        if isinstance(t, TyInt):
            if name in ("wrapping_add", "wrapping_sub", "wrapping_mul",
                        "saturating_add", "saturating_sub",
                        "saturating_mul", "pow", "min", "max", "abs",
                        "rotate_left", "rotate_right", "swap_bytes"):
                return t
            if name in ("checked_add", "checked_sub", "checked_mul"):
                return TyPath("Option", (t,))
            if name in ("count_ones", "count_zeros", "leading_zeros",
                        "trailing_zeros"):
                return U32
            if name in ("to_le_bytes", "to_be_bytes", "to_ne_bytes"):
                return TyArray(U8, t.bits // 8)
            if name == "is_power_of_two":
                return BOOL
            return None
        if isinstance(t, TyStr):
            if name == "len":
                return USIZE
            if name == "as_ptr":
                return TyRawPtr(U8, False)
            if name == "as_bytes":
                return TyRef(TySlice(U8), False)
            if name == "to_string":
                return TyPath("String")
            return None
        if isinstance(t, TyChar):
            if name == "to_digit":
                return TyPath("Option", (U32,))
            if name.startswith("is_"):
                return BOOL
            return None
        return _MISS if isinstance(t, TyRef) else None

    def _path_method(self, t: TyPath, name: str, node: ast.MethodCall,
                     arg_ts: list[InferTy], gargs: list[Ty]):
        inner = t.args[0] if t.args else INFER
        if t.name == "Vec":
            if name == "push":
                if arg_ts and not compatible(inner, arg_ts[0]):
                    self._mismatch(inner, arg_ts[0], node.args[0].span)
                return UNIT
            if name == "pop":
                return TyPath("Option", (inner,))
            if name in ("len", "capacity"):
                return USIZE
            if name == "is_empty":
                return BOOL
            if name == "contains":
                return BOOL
            if name == "as_ptr":
                return TyRawPtr(inner, False)
            if name == "as_mut_ptr":
                return TyRawPtr(inner, True)
            if name in ("set_len", "resize", "clear", "reserve",
                        "truncate", "insert", "shrink_to_fit",
                        "extend_from_slice"):
                return UNIT
            if name == "remove":
                return inner
            if name == "get":
                return TyPath("Option", (TyRef(inner, False),))
            if name == "get_mut":
                return TyPath("Option", (TyRef(inner, True),))
            if name in ("first", "last"):
                return TyPath("Option", (TyRef(inner, False),))
            return None
        if t.name == "MaybeUninit":
            if name == "assume_init":
                return inner
            if name == "as_ptr":
                return TyRawPtr(inner, False)
            if name == "as_mut_ptr":
                return TyRawPtr(inner, True)
            if name == "write":
                return TyRef(inner, True)
            return None
        if t.name == "Mutex":
            if name == "lock":
                return TyPath("Result",
                              (TyPath("MutexGuard", (inner,)), INFER))
            return None
        if t.name == "JoinHandle":
            if name == "join":
                return TyPath("Result", (inner, INFER))
            return None
        if t.name == "Option":
            if name in ("unwrap", "expect", "unwrap_or",
                        "unwrap_or_default", "take"):
                return inner if name != "take" else t
            if name in ("is_some", "is_none"):
                return BOOL
            return None
        if t.name == "Result":
            if name in ("unwrap", "expect"):
                return inner
            if name in ("is_ok", "is_err"):
                return BOOL
            if name == "ok":
                return TyPath("Option", (inner,))
            return None
        if t.name in ("AtomicUsize", "AtomicI64", "AtomicBool"):
            base = {"AtomicUsize": USIZE, "AtomicI64": INT_TYPES["i64"],
                    "AtomicBool": BOOL}[t.name]
            if name == "load":
                return base
            if name == "store":
                return UNIT
            if name in ("swap", "fetch_add", "fetch_sub", "fetch_and",
                        "fetch_or", "fetch_xor", "compare_and_swap"):
                return base
            return None
        if t.name == "String":
            if name == "len":
                return USIZE
            if name in ("push", "push_str", "clear"):
                return UNIT
            if name == "as_str":
                return TyRef(TyStr(), False)
            if name == "as_ptr":
                return TyRawPtr(U8, False)
            if name == "as_bytes":
                return TyRef(TySlice(U8), False)
            if name == "into_bytes":
                return TyPath("Vec", (U8,))
            if name == "is_empty":
                return BOOL
            return None
        if t.name == "MutexGuard":
            return _MISS  # force the deref chain to the payload
        if t.name == "Box":
            return _MISS
        if t.name == "Layout":
            if name == "size":
                return USIZE
            if name == "align":
                return USIZE
            return None
        return None

    # -- places ---------------------------------------------------------

    def _infer_FieldAccess(self, node: ast.FieldAccess) -> InferTy:
        obj_t = self.infer(node.obj)
        t = obj_t
        for _ in range(4):
            if isinstance(t, TyTuple):
                if node.field.isdigit():
                    idx = int(node.field)
                    if idx < len(t.elems):
                        return t.elems[idx]
                self._emit("E0609",
                           f"no field `{node.field}` on type `{t}`",
                           node.span)
                return None
            if isinstance(t, TyPath) and t.name in self.layouts:
                layout = self.layouts[t.name]
                if node.field in layout.field_names:
                    return layout.type_of(node.field)
                self._emit(
                    "E0609",
                    f"no field `{node.field}` on type `{t.name}`",
                    node.span,
                    notes=(f"available fields are: "
                           f"{', '.join(layout.field_names)}",))
                return None
            if isinstance(t, (TyInt, TyBool, TyChar)):
                self._emit("E0609",
                           f"no field `{node.field}` on type `{fmt_ty(t)}`",
                           node.span)
                return None
            stepped = self._deref(t, node.span, emit=False)
            if stepped is None:
                return None
            t = stepped
        return None

    def _infer_Index(self, node: ast.Index) -> InferTy:
        obj_t = self.infer(node.obj)
        idx_t = self.infer(node.index)
        if isinstance(idx_t, (TyBool, TyChar, TyRef, TyTuple)):
            self._mismatch(USIZE, idx_t, node.index.span)
        t = obj_t
        for _ in range(4):
            if isinstance(t, TyPath) and t.name == "Vec" and t.args:
                return t.args[0]
            if isinstance(t, (TyArray, TySlice)):
                return t.elem
            if isinstance(t, (TyInt, TyBool, TyChar, TyRawPtr, TyUnit,
                              TyTuple)) or (
                    isinstance(t, TyPath) and t.name in self.layouts):
                self._emit("E0608",
                           f"cannot index into a value of type "
                           f"`{fmt_ty(t)}`", node.span)
                return None
            stepped = self._deref(t, node.span, emit=False)
            if stepped is None:
                return None
            t = stepped
        return None

    # -- casts ----------------------------------------------------------

    def _infer_Cast(self, node: ast.Cast) -> InferTy:
        src_t = self.infer(node.expr)
        target = node.ty
        if target is None:
            return None
        if isinstance(normalize(target), TyBool):
            if src_t is ANY_INT or (isinstance(src_t, Ty)
                                    and not isinstance(src_t, (TyBool,
                                                               TyInfer,
                                                               TyNever))):
                self._emit("E0605",
                           f"cannot cast `{fmt_ty(src_t)}` as `bool`",
                           node.span,
                           notes=("compare with zero instead",))
        elif isinstance(target, TyPath) and target.name in self.layouts:
            self._emit("E0605",
                       f"non-primitive cast: cannot cast to "
                       f"`{target.name}`", node.span)
        return target

    # -- control flow ---------------------------------------------------

    def _infer_Block(self, node: ast.Block) -> InferTy:
        return self._infer_block(node)

    def _infer_IfExpr(self, node: ast.IfExpr) -> InferTy:
        cond_t = self.infer(node.cond)
        self._expect_bool(cond_t, node.cond.span)
        then_t = self._infer_block(node.then_block)
        if node.else_block is None:
            return UNIT
        else_t = self.infer(node.else_block)
        if compatible(then_t, else_t) or compatible(else_t, then_t):
            return pick(then_t, else_t)
        return None

    def _infer_WhileExpr(self, node: ast.WhileExpr) -> InferTy:
        cond_t = self.infer(node.cond)
        self._expect_bool(cond_t, node.cond.span)
        self._infer_block(node.body)
        return UNIT

    def _infer_LoopExpr(self, node: ast.LoopExpr) -> InferTy:
        self._infer_block(node.body)
        return None

    def _infer_ForExpr(self, node: ast.ForExpr) -> InferTy:
        iter_t = self.infer(node.iterable)
        var_t = self._element_type(iter_t)
        self._scopes.append({node.var: var_t})
        self._infer_block(node.body, fresh_frame=False)
        self._scopes.pop()
        return UNIT

    def _element_type(self, iter_t: InferTy) -> InferTy:
        if isinstance(iter_t, TyPath):
            if iter_t.name == "Range" and iter_t.args:
                return iter_t.args[0]
            if iter_t.name == "Vec" and iter_t.args:
                return iter_t.args[0]
        if isinstance(iter_t, (TyArray, TySlice)):
            return iter_t.elem
        if isinstance(iter_t, TyRef):
            inner = self._element_type(iter_t.target)
            if isinstance(inner, Ty):
                return TyRef(inner, iter_t.mutable)
        return None

    def _infer_RangeExpr(self, node: ast.RangeExpr) -> InferTy:
        lo_t = self.infer(node.lo) if node.lo is not None else None
        hi_t = self.infer(node.hi) if node.hi is not None else None
        elem = pick(lo_t, hi_t)
        return TyPath("Range", (degrade(elem),))

    # -- aggregates -----------------------------------------------------

    def _infer_TupleLit(self, node: ast.TupleLit) -> InferTy:
        return TyTuple(tuple(degrade(self.infer(e)) for e in node.elems))

    def _infer_ArrayLit(self, node: ast.ArrayLit) -> InferTy:
        elem: InferTy = None
        for entry in node.elems:
            elem = pick(elem, self.infer(entry))
        return TyArray(degrade(elem), len(node.elems))

    def _infer_ArrayRepeat(self, node: ast.ArrayRepeat) -> InferTy:
        elem = self.infer(node.elem)
        self.infer(node.count)
        if isinstance(node.count, ast.IntLit):
            return TyArray(degrade(elem), node.count.value)
        return None

    def _infer_StructLit(self, node: ast.StructLit) -> InferTy:
        value_ts = [(fname, value, self.infer(value))
                    for fname, value in node.fields]
        layout = self.layouts.get(node.name)
        if layout is None:
            return TyPath(node.name) if node.name in self.tables.types \
                else None
        given = set()
        for fname, value, value_t in value_ts:
            given.add(fname)
            if fname not in layout.field_names:
                self._emit(
                    "E0560",
                    f"struct `{node.name}` has no field named `{fname}`",
                    node.span,
                    notes=(f"available fields are: "
                           f"{', '.join(layout.field_names)}",))
                continue
            want = layout.type_of(fname)
            if not compatible(want, value_t):
                self._mismatch(want, value_t, value.span,
                               note=f"field `{fname}` of `{node.name}` "
                                    f"is `{want}`")
        if layout.is_union:
            if len(node.fields) != 1:
                self._emit("E0063",
                           f"union `{node.name}` expressions must "
                           f"initialise exactly one field", node.span)
        else:
            missing = [f for f in layout.field_names if f not in given]
            if missing:
                listed = ", ".join(f"`{f}`" for f in missing)
                self._emit("E0063",
                           f"missing field{'s' if len(missing) > 1 else ''} "
                           f"{listed} in initializer of `{node.name}`",
                           node.span)
        return TyPath(node.name)

    # -- macros, closures, jumps ----------------------------------------

    def _infer_MacroCall(self, node: ast.MacroCall) -> InferTy:
        arg_ts = [self.infer(arg) for arg in node.args]
        if node.name in _NEVER_MACROS:
            return NEVER
        if node.name in _PRINT_MACROS:
            return UNIT
        if node.name == "format":
            return TyPath("String")
        if node.name == "vec":
            elem: InferTy = None
            for t in arg_ts:
                elem = pick(elem, t)
            return TyPath("Vec", (degrade(elem),))
        if node.name == "vec_repeat":
            return TyPath("Vec",
                          (degrade(arg_ts[0]) if arg_ts else INFER,))
        if node.name in ("assert", "debug_assert"):
            if node.args:
                self._expect_bool(arg_ts[0], node.args[0].span)
            return UNIT
        if node.name in ("assert_eq", "assert_ne", "debug_assert_eq",
                         "debug_assert_ne"):
            return UNIT
        return None

    def _infer_Closure(self, node: ast.Closure) -> InferTy:
        self._scopes.append({name: None for name in node.params})
        self.infer(node.body)
        self._scopes.pop()
        return TyPath("Closure")

    def _infer_ReturnExpr(self, node: ast.ReturnExpr) -> InferTy:
        value_t: InferTy = UNIT
        if node.value is not None:
            value_t = self.infer(node.value)
        span = node.value.span if node.value is not None else node.span
        if not compatible(self._ret, value_t):
            self._mismatch(self._ret, value_t, span)
        return NEVER

    def _infer_BreakExpr(self, node: ast.BreakExpr) -> InferTy:
        if node.value is not None:
            self.infer(node.value)
        return NEVER

    def _infer_ContinueExpr(self, node: ast.ContinueExpr) -> InferTy:
        return NEVER


#: Internal sentinel: "this method is not on this type, keep deref-ing".
_MISS = object()
