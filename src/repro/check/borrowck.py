"""Conservative move and borrow analysis.

A deliberately narrow subset of rustc's borrow checker, tuned for zero
false positives over the UB corpus (whose *buggy* sources must also
check clean — their defects are dynamic UB, not compile errors):

* **Moves** (``E0382``) are tracked only for ``let y = x;`` where ``x``
  is a local whose type is clearly non-Copy (an owning container
  annotation, or a ``vec!``/``Box::new``/``String`` initializer).
  Function-call arguments are *not* moves: the corpus leans on
  ``drop(v); v[1]`` as a dynamic use-after-free idiom, which rustc
  rejects but our dynamic detector owns.
* **Borrows** (``E0499``/``E0502``) are tracked only for bare
  ``let r = &mut x;`` / ``let r = &x;`` bindings; a second borrow
  conflicts only if the first borrower is still used afterwards
  (non-lexical-lifetimes style).  A ``&mut`` immediately under a cast
  (``&mut x as *mut T``) creates no tracked borrow.
* **Immutability** (``E0384``/``E0594``): assignment to an initialised
  non-``mut`` ``let``, assignment to a non-``mut`` static, and
  assignment through a shared reference — each with a mechanical fix
  suggestion (``let`` → ``let mut``, ``&x`` → ``&mut x``).

Each nested block is analysed with fresh move/borrow state; scope
tracking for assignment targets crosses blocks.  Unknown shapes are
ignored entirely — every rule here errs silent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast_nodes as ast
from ..lang.span import Span
from ..lang.types import StructLayout, is_copy
from .diagnostics import Diagnostic, Label, Suggestion
from .names import ItemTables

#: Initializer call paths that always build a non-Copy owner.
_OWNER_CALLS = frozenset({
    "Vec::new", "Vec::with_capacity", "Box::new", "String::new",
    "String::from", "Mutex::new",
})
_OWNER_MACROS = frozenset({"vec", "vec_repeat"})


@dataclass
class _Borrow:
    index: int
    borrower: str
    target: str
    mutable: bool
    span: Span
    init_span: Span  # the full `&x` / `&mut x` initializer text


def _bare_name(expr: ast.Expr) -> str | None:
    if isinstance(expr, ast.PathExpr) and expr.is_local:
        return expr.segments[0]
    return None


def _names_used(node: ast.Node) -> set[str]:
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.PathExpr) and child.is_local:
            names.add(child.segments[0])
    return names


def _first_use(node: ast.Node, name: str) -> ast.PathExpr | None:
    for child in ast.walk(node):
        if isinstance(child, ast.PathExpr) and child.is_local \
                and child.segments[0] == name:
            return child
    return None


def _assign_targets(node: ast.Node) -> set[str]:
    targets: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, (ast.Assign, ast.CompoundAssign)):
            name = _bare_name(child.target)
            if name is not None:
                targets.add(name)
    return targets


class Borrowck:
    """Move/borrow pass over every function in a program."""

    def __init__(self, program: ast.Program, source: str,
                 tables: ItemTables,
                 layouts: dict[str, StructLayout]):
        self.program = program
        self.source = source
        self.tables = tables
        self.layouts = layouts
        self.diagnostics: list[Diagnostic] = []
        #: Scope stack: name -> LetStmt (for mutability and suggestions).
        self._lets: list[dict[str, ast.LetStmt]] = []
        #: Scope stack: name -> shared-borrow info for `let r = &x;`.
        self._shared_refs: list[dict[str, tuple[Span, str]]] = []
        #: Non-Copy locals in scope (candidates for move tracking).
        self._owners: list[set[str]] = []

    def run(self) -> list[Diagnostic]:
        for item in self.program.items:
            if isinstance(item, ast.FnItem):
                self._check_fn(item)
        return self.diagnostics

    # ------------------------------------------------------------------

    def _check_fn(self, item: ast.FnItem) -> None:
        self._lets = [{}]
        self._shared_refs = [{}]
        owners: set[str] = set()
        for param in item.params:
            if param.ty is not None and not is_copy(param.ty, self.layouts):
                owners.add(param.name)
        self._owners = [owners]
        self._block(item.body, fresh_scopes=False)
        self._lets = []
        self._shared_refs = []
        self._owners = []

    def _push(self) -> None:
        self._lets.append({})
        self._shared_refs.append({})
        self._owners.append(set())

    def _pop(self) -> None:
        self._lets.pop()
        self._shared_refs.pop()
        self._owners.pop()

    def _lookup_let(self, name: str) -> ast.LetStmt | None:
        for frame in reversed(self._lets):
            if name in frame:
                return frame[name]
        return None

    def _lookup_shared_ref(self, name: str) -> tuple[Span, str] | None:
        for frame in reversed(self._shared_refs):
            if name in frame:
                return frame[name]
        return None

    def _is_owner(self, name: str) -> bool:
        return any(name in frame for frame in self._owners)

    # ------------------------------------------------------------------
    # Block analysis

    def _block(self, block: ast.Block, fresh_scopes: bool = True) -> None:
        if fresh_scopes:
            self._push()
        moves: list[tuple[int, str, str, Span]] = []  # idx, src, dest, span
        borrows: list[_Borrow] = []
        nodes: list[ast.Node] = list(block.stmts)
        if block.tail is not None:
            nodes.append(block.tail)
        for index, node in enumerate(nodes):
            if isinstance(node, ast.LetStmt):
                self._let_stmt(node, index, moves, borrows)
            elif isinstance(node, ast.ExprStmt):
                self._visit_expr(node.expr)
            else:  # the tail expression
                self._visit_expr(node)
        self._report_moves(moves, nodes)
        self._report_borrows(borrows, nodes)
        if fresh_scopes:
            self._pop()

    def _let_stmt(self, stmt: ast.LetStmt, index: int,
                  moves: list[tuple[int, str, str, Span]],
                  borrows: list[_Borrow]) -> None:
        init = stmt.init
        # (Re)binding a name ends any tracking of the previous binding.
        self._shared_refs[-1].pop(stmt.name, None)
        if init is None:
            self._lets[-1][stmt.name] = stmt
            return
        # Bare move: `let y = x;` of a known owner.
        src = _bare_name(init)
        if src is not None and self._is_owner(src):
            moves.append((index, src, stmt.name, init.span))
            self._owners[-1].add(stmt.name)
        elif self._is_non_copy_init(stmt):
            self._owners[-1].add(stmt.name)
        # Bare borrow: `let r = &x;` / `let r = &mut x;`.
        if isinstance(init, ast.Unary) and init.op in ("&", "&mut"):
            target = _bare_name(init.operand)
            if target is not None:
                init_span = Span(init.span.start, init.operand.span.end,
                                 init.span.line, init.span.col)
                borrows.append(_Borrow(index, stmt.name, target,
                                       init.op == "&mut", stmt.span,
                                       init_span))
                if init.op == "&":
                    self._shared_refs[-1][stmt.name] = (init_span, target)
        else:
            self._visit_expr(init)
        self._lets[-1][stmt.name] = stmt

    def _is_non_copy_init(self, stmt: ast.LetStmt) -> bool:
        if stmt.ty is not None:
            return not is_copy(stmt.ty, self.layouts)
        init = stmt.init
        if isinstance(init, ast.MacroCall) and init.name in _OWNER_MACROS:
            return True
        if isinstance(init, ast.Call) and isinstance(init.func,
                                                     ast.PathExpr):
            return init.func.full in _OWNER_CALLS
        return False

    # ------------------------------------------------------------------
    # Deferred reports (need the whole statement list for liveness)

    def _report_moves(self, moves: list[tuple[int, str, str, Span]],
                      nodes: list[ast.Node]) -> None:
        for index, src, dest, move_span in moves:
            for later in nodes[index + 1:]:
                if src in _assign_targets(later):
                    break  # reassigned: the binding is live again
                if isinstance(later, ast.LetStmt) and later.name == src:
                    break  # shadowed by a fresh binding
                use = _first_use(later, src)
                if use is not None:
                    self.diagnostics.append(Diagnostic(
                        code="E0382",
                        message=f"use of moved value `{src}`",
                        span=use.span,
                        labels=(Label(move_span,
                                      f"value moved to `{dest}` here"),),
                        notes=(f"`{src}` has a non-Copy type; the move "
                               f"invalidates the original binding",),
                        suggestions=(Suggestion(
                            message=f"use the moved-to binding `{dest}` "
                                    f"instead",
                            span=use.span,
                            replacement=dest),),
                    ))
                    break

    def _report_borrows(self, borrows: list[_Borrow],
                        nodes: list[ast.Node]) -> None:
        for i, first in enumerate(borrows):
            for second in borrows[i + 1:]:
                if first.target != second.target:
                    continue
                if not second.mutable:
                    continue  # only a new `&mut` can conflict
                if not self._used_at_or_after(first.borrower, second.index,
                                              nodes):
                    continue  # first borrow already dead (NLL)
                if first.mutable:
                    code = "E0499"
                    message = (f"cannot borrow `{first.target}` as "
                               f"mutable more than once at a time")
                else:
                    code = "E0502"
                    message = (f"cannot borrow `{first.target}` as "
                               f"mutable because it is also borrowed "
                               f"as shared")
                self.diagnostics.append(Diagnostic(
                    code=code,
                    message=message,
                    span=second.init_span,
                    labels=(Label(first.init_span,
                                  f"first borrow by `{first.borrower}` "
                                  f"occurs here"),),
                    notes=(f"`{first.borrower}` is still used after the "
                           f"second borrow",),
                ))
                break

    def _used_at_or_after(self, name: str, index: int,
                          nodes: list[ast.Node]) -> bool:
        for later in nodes[index:]:
            if isinstance(later, ast.LetStmt) and later.init is not None \
                    and _bare_name(later.init) is None:
                if name in _names_used(later.init):
                    return True
            elif name in _names_used(later):
                return True
            if isinstance(later, ast.LetStmt) and later.name == name:
                return False  # shadowed
        return False

    # ------------------------------------------------------------------
    # Expression traversal: assignment checks + nested blocks

    def _visit_expr(self, node: ast.Expr) -> None:
        if isinstance(node, (ast.Assign, ast.CompoundAssign)):
            self._check_assign_target(node)
            self._visit_expr(node.value)
            # Still walk non-name targets (`v[i] = ..` uses `i`).
            if _bare_name(node.target) is None:
                self._visit_expr(node.target)
            return
        if isinstance(node, ast.Block):
            self._block(node)
            return
        if isinstance(node, ast.IfExpr):
            self._visit_expr(node.cond)
            self._block(node.then_block)
            if node.else_block is not None:
                self._visit_expr(node.else_block)
            return
        if isinstance(node, ast.WhileExpr):
            self._visit_expr(node.cond)
            self._block(node.body)
            return
        if isinstance(node, ast.LoopExpr):
            self._block(node.body)
            return
        if isinstance(node, ast.ForExpr):
            self._visit_expr(node.iterable)
            self._block(node.body)
            return
        if isinstance(node, ast.Closure):
            self._visit_expr(node.body)
            return
        for value in vars(node).values():
            if isinstance(value, ast.Expr):
                self._visit_expr(value)
            elif isinstance(value, (list, tuple)):
                for entry in value:
                    if isinstance(entry, ast.Expr):
                        self._visit_expr(entry)
                    elif isinstance(entry, tuple):
                        for sub in entry:
                            if isinstance(sub, ast.Expr):
                                self._visit_expr(sub)

    def _check_assign_target(self,
                             node: ast.Assign | ast.CompoundAssign) -> None:
        name = _bare_name(node.target)
        if name is not None:
            let = self._lookup_let(name)
            if let is not None:
                if not let.mutable and let.init is not None:
                    self.diagnostics.append(Diagnostic(
                        code="E0384",
                        message=f"cannot assign twice to immutable "
                                f"variable `{name}`",
                        span=node.target.span,
                        labels=(Label(let.span,
                                      f"`{name}` declared immutable "
                                      f"here"),),
                        suggestions=(Suggestion(
                            message="make the binding mutable",
                            span=let.span,
                            replacement="let mut"),),
                    ))
                return
            static = self.tables.statics.get(name)
            if static is not None and not static.mutable:
                self.diagnostics.append(Diagnostic(
                    code="E0594",
                    message=f"cannot assign to immutable static `{name}`",
                    span=node.target.span,
                    labels=(Label(static.span,
                                  f"`{name}` declared here"),),
                    notes=("consider declaring the static as "
                           "`static mut` (and auditing every access)",),
                ))
            return
        # `*r = ..` through a tracked shared reference.
        target = node.target
        if isinstance(target, ast.Unary) and target.op == "*":
            ref_name = _bare_name(target.operand)
            if ref_name is not None:
                info = self._lookup_shared_ref(ref_name)
                if info is not None:
                    init_span, borrowed = info
                    self.diagnostics.append(Diagnostic(
                        code="E0594",
                        message=f"cannot assign to `*{ref_name}`, which "
                                f"is behind a `&` reference",
                        span=target.span,
                        labels=(Label(init_span,
                                      f"`{ref_name}` borrows `{borrowed}` "
                                      f"as shared here"),),
                        suggestions=(Suggestion(
                            message="borrow mutably instead",
                            span=init_span,
                            replacement=f"&mut {borrowed}"),),
                    ))
