"""Structured diagnostics (``repro.diagnostics/1``).

Rust compiler errors are structured data — a stable code, a primary span,
labeled secondary spans, notes, and machine-applicable suggestions — and
the whole compile-repair literature leans on exactly that structure.  The
checker's passes emit :class:`Diagnostic` records in the same shape:

* ``code`` is a stable ``E0xxx`` identifier (rustc's numbering where the
  mini-Rust subset overlaps it), safe to assert in tests and to key
  repair strategies on;
* ``span`` points at the offending source range via
  :class:`~repro.lang.span.Span`;
* ``labels`` attach messages to secondary spans (the first borrow, the
  move site, the declared type);
* ``suggestions`` are concrete textual splices — ``replace [start, end)
  with this string`` — that a repair engine can apply without a model in
  the loop.

Serialization (:meth:`CheckReport.to_dict`) is versioned under
``repro.diagnostics/1`` and byte-deterministic (no timestamps, sorted
keys at the json layer), so diagnostics can be cached, diffed, and
shipped over the service boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.span import Span, render_snippet

#: Bump when the serialized diagnostic layout changes incompatibly.
DIAGNOSTICS_SCHEMA = "repro.diagnostics/1"

#: The stable error-code catalogue.  Codes reuse rustc's numbering where
#: the subset overlaps it; the title is the generic phrasing shown when a
#: diagnostic has no more specific message.
ERROR_CODES: dict[str, str] = {
    "E0001": "syntax error",
    "E0061": "wrong number of arguments",
    "E0063": "missing field in struct literal",
    "E0277": "layout cannot be computed",
    "E0308": "mismatched types",
    "E0369": "binary operation cannot be applied to operand type",
    "E0382": "use of moved value",
    "E0384": "cannot assign twice to immutable variable",
    "E0412": "cannot find type in this scope",
    "E0422": "cannot find struct or union in this scope",
    "E0425": "cannot find value in this scope",
    "E0428": "a definition with this name already exists",
    "E0499": "cannot borrow as mutable more than once at a time",
    "E0502": "cannot borrow as mutable because it is also borrowed as shared",
    "E0512": "cannot transmute between types of different sizes",
    "E0560": "struct literal has no field with this name",
    "E0594": "cannot assign to this expression",
    "E0605": "non-primitive or invalid cast",
    "E0608": "cannot index into this type",
    "E0609": "no field with this name",
    "E0614": "type cannot be dereferenced",
}


def _span_dict(span: Span) -> dict:
    return {"start": span.start, "end": span.end,
            "line": span.line, "col": span.col}


def _span_from_dict(entry: dict) -> Span:
    return Span(entry["start"], entry["end"], entry["line"], entry["col"])


@dataclass(frozen=True)
class Suggestion:
    """A machine-applicable fix: replace ``span`` with ``replacement``."""

    message: str
    span: Span
    replacement: str

    def to_dict(self) -> dict:
        return {"message": self.message, "span": _span_dict(self.span),
                "replacement": self.replacement}

    @classmethod
    def from_dict(cls, entry: dict) -> "Suggestion":
        return cls(message=entry["message"],
                   span=_span_from_dict(entry["span"]),
                   replacement=entry["replacement"])


@dataclass(frozen=True)
class Label:
    """A secondary span with its own message (the first borrow, the
    declared type, the move site)."""

    span: Span
    message: str

    def to_dict(self) -> dict:
        return {"span": _span_dict(self.span), "message": self.message}

    @classmethod
    def from_dict(cls, entry: dict) -> "Label":
        return cls(span=_span_from_dict(entry["span"]),
                   message=entry["message"])


@dataclass(frozen=True)
class Diagnostic:
    """One checker finding with a stable code and a primary span."""

    code: str
    message: str
    span: Span
    labels: tuple[Label, ...] = ()
    notes: tuple[str, ...] = ()
    suggestions: tuple[Suggestion, ...] = ()

    def render(self, source: str) -> str:
        lines = [f"error[{self.code}]: {self.message}",
                 render_snippet(source, self.span)]
        for label in self.labels:
            lines.append(render_snippet(source, label.span, label.message))
        for note in self.notes:
            lines.append(f"  = note: {note}")
        for suggestion in self.suggestions:
            lines.append(f"  = help: {suggestion.message}: "
                         f"`{suggestion.replacement}`")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "span": _span_dict(self.span),
            "labels": [label.to_dict() for label in self.labels],
            "notes": list(self.notes),
            "suggestions": [s.to_dict() for s in self.suggestions],
        }

    @classmethod
    def from_dict(cls, entry: dict) -> "Diagnostic":
        return cls(
            code=entry["code"],
            message=entry["message"],
            span=_span_from_dict(entry["span"]),
            labels=tuple(Label.from_dict(l) for l in entry["labels"]),
            notes=tuple(entry["notes"]),
            suggestions=tuple(Suggestion.from_dict(s)
                              for s in entry["suggestions"]),
        )


@dataclass(frozen=True)
class CheckReport:
    """Everything one :func:`~repro.check.checker.check_source` run found.

    ``diagnostics`` are ordered by primary span offset (ties broken by
    code), so rendering and serialization are deterministic for a given
    source text.
    """

    source: str
    diagnostics: tuple[Diagnostic, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def codes(self) -> list[str]:
        return [diagnostic.code for diagnostic in self.diagnostics]

    def render(self) -> str:
        if self.ok:
            return "check passed: no diagnostics"
        blocks = [diagnostic.render(self.source)
                  for diagnostic in self.diagnostics]
        count = len(self.diagnostics)
        blocks.append(f"check failed: {count} "
                      f"diagnostic{'s' if count != 1 else ''}")
        return "\n\n".join(blocks)

    def to_dict(self) -> dict:
        return {
            "schema": DIAGNOSTICS_SCHEMA,
            "ok": self.ok,
            "count": len(self.diagnostics),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def sort_diagnostics(diagnostics: list[Diagnostic]) -> tuple[Diagnostic, ...]:
    """Deterministic report order: by primary offset, then code, then
    message (two passes may flag the same span)."""
    return tuple(sorted(diagnostics,
                        key=lambda d: (d.span.start, d.code, d.message)))


def apply_suggestion(source: str, suggestion: Suggestion) -> str:
    """Splice one suggestion into the source text."""
    span = suggestion.span
    return source[:span.start] + suggestion.replacement + source[span.end:]
