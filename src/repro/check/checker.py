"""The checker front door: parse + all passes → a :class:`CheckReport`.

Pass order mirrors rustc's phases: parse (``E0001`` on lex/parse
failure), item collection and name resolution, struct/union layout
validation (``E0277`` via the shared :class:`~repro.lang.types`
machinery), type checking, then the conservative borrow/move pass.
Later passes run even when earlier ones found problems — they are
engineered to stay silent on shapes they cannot prove, so a single run
reports everything it can see, sorted by source position.
"""

from __future__ import annotations

from ..lang import LexError, ParseError, parse_program
from ..lang import ast_nodes as ast
from ..lang.span import Span
from ..lang.types import LayoutError, StructLayout
from .borrowck import Borrowck
from .diagnostics import CheckReport, Diagnostic, sort_diagnostics
from .names import ItemTables, resolve_names
from .typeck import Typeck


def _syntax_diagnostic(source: str, error: ParseError | LexError) -> \
        Diagnostic:
    if isinstance(error, ParseError):
        span = error.span
    else:
        span = Span(0, 0, error.line, error.col)
    return Diagnostic(code="E0001",
                      message=f"syntax error: {error.message}",
                      span=span)


def compute_layouts(program: ast.Program) -> tuple[
        dict[str, StructLayout], list[Diagnostic]]:
    """Layout every struct/union in declaration order.

    Types that fail (unknown field type, recursive definition, unsized
    field) produce ``E0277`` and are left out of the table, so later
    passes simply treat them as unknown.
    """
    layouts: dict[str, StructLayout] = {}
    diagnostics: list[Diagnostic] = []
    for item in program.items:
        if isinstance(item, ast.StructItem):
            builder = StructLayout.for_struct
        elif isinstance(item, ast.UnionItem):
            builder = StructLayout.for_union
        else:
            continue
        try:
            layouts[item.name] = builder(item.name, item.fields, layouts)
        except LayoutError as exc:
            diagnostics.append(Diagnostic(
                code="E0277",
                message=f"the layout of `{item.name}` cannot be "
                        f"computed: {exc}",
                span=item.span))
    return layouts, diagnostics


def check_program(program: ast.Program, source: str) -> CheckReport:
    """Run every post-parse pass over an already-parsed program."""
    tables, diagnostics = resolve_names(program)
    layouts, layout_diags = compute_layouts(program)
    diagnostics.extend(layout_diags)
    diagnostics.extend(Typeck(program, source, tables, layouts).run())
    diagnostics.extend(Borrowck(program, source, tables, layouts).run())
    return CheckReport(source=source,
                       diagnostics=sort_diagnostics(diagnostics))


def check_source(source: str) -> CheckReport:
    """Check a source text end to end; never raises on bad input."""
    try:
        program = parse_program(source)
    except (ParseError, LexError) as error:
        return CheckReport(
            source=source,
            diagnostics=(_syntax_diagnostic(source, error),))
    return check_program(program, source)
