"""Name resolution: scopes, duplicate definitions, unresolved identifiers.

The first checker pass.  It builds the program's item tables (value
namespace: functions/statics/consts; type namespace: structs/unions),
flags duplicate definitions (``E0428``), then walks every expression
with a lexical scope stack to flag unresolved value names (``E0425``,
with a close-match suggestion when one exists) and unknown type names in
annotations (``E0412``).

The pass is deliberately conservative about what counts as "unresolved":
only *single-segment* paths are candidate locals — qualified paths
(``std::mem::transmute``, ``i32::MAX``, ``Ordering::SeqCst``) name std
machinery the interpreter provides and are never flagged.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from ..lang import ast_nodes as ast
from ..lang.span import Span
from ..lang.types import (BUILTIN_GENERICS, BUILTIN_NAMED, Ty, TyArray,
                          TyFn, TyPath, TyRawPtr, TyRef, TySlice, TyTuple)
from .diagnostics import Diagnostic, Label, Suggestion

#: Single-segment value names the runtime provides without declaration.
BUILTIN_VALUES = frozenset({"drop", "None", "Some"})

#: Type names the subset knows without a user declaration (primitives
#: never reach here: the parser resolves them to concrete ``Ty``s).
KNOWN_TYPE_NAMES = frozenset(BUILTIN_GENERICS) | frozenset(BUILTIN_NAMED) \
    | frozenset({"MutexGuard", "Ordering", "Result", "Range"})


@dataclass
class ItemTables:
    """The program's top-level declarations, split by namespace."""

    functions: dict[str, ast.FnItem] = field(default_factory=dict)
    statics: dict[str, ast.StaticItem] = field(default_factory=dict)
    consts: dict[str, ast.ConstItem] = field(default_factory=dict)
    types: dict[str, ast.StructItem | ast.UnionItem] = field(
        default_factory=dict)

    def value_names(self) -> set[str]:
        return set(self.functions) | set(self.statics) | set(self.consts)


def collect_items(program: ast.Program) -> tuple[ItemTables,
                                                 list[Diagnostic]]:
    """Item tables plus ``E0428`` diagnostics for duplicate definitions."""
    tables = ItemTables()
    diagnostics: list[Diagnostic] = []

    def claim(table: dict, name: str, item: ast.Item, what: str) -> None:
        if name in table:
            first = table[name]
            diagnostics.append(Diagnostic(
                code="E0428",
                message=f"the {what} `{name}` is defined multiple times",
                span=item.span,
                labels=(Label(first.span,
                              f"`{name}` first defined here"),),
                notes=(f"`{name}` must be defined only once in this "
                       f"namespace",),
            ))
            return
        table[name] = item

    for item in program.items:
        if isinstance(item, ast.FnItem):
            claim(tables.functions, item.name, item, "function")
            if item.name in tables.statics or item.name in tables.consts:
                pass  # already reported via the shared namespace below
        elif isinstance(item, ast.StaticItem):
            claim(tables.statics, item.name, item, "static")
        elif isinstance(item, ast.ConstItem):
            claim(tables.consts, item.name, item, "const")
        elif isinstance(item, (ast.StructItem, ast.UnionItem)):
            kind = "union" if isinstance(item, ast.UnionItem) else "struct"
            claim(tables.types, item.name, item, kind)
    return tables, diagnostics


def type_path_names(ty: Ty):
    """Yield every named (``TyPath``) component inside ``ty``."""
    if isinstance(ty, TyPath):
        yield ty.name
        for arg in ty.args:
            yield from type_path_names(arg)
    elif isinstance(ty, (TyArray, TySlice)):
        yield from type_path_names(ty.elem)
    elif isinstance(ty, (TyRef, TyRawPtr)):
        yield from type_path_names(ty.target)
    elif isinstance(ty, TyTuple):
        for elem in ty.elems:
            yield from type_path_names(elem)
    elif isinstance(ty, TyFn):
        for param in ty.params:
            yield from type_path_names(param)
        yield from type_path_names(ty.ret)


class NameResolver:
    """One scoped walk over the program; collects diagnostics."""

    def __init__(self, program: ast.Program, tables: ItemTables):
        self.program = program
        self.tables = tables
        self.diagnostics: list[Diagnostic] = []
        self._scopes: list[set[str]] = []

    # -- scope helpers -----------------------------------------------------

    def _in_scope(self, name: str) -> bool:
        return any(name in frame for frame in self._scopes)

    def _visible_names(self) -> list[str]:
        names: set[str] = set(BUILTIN_VALUES)
        names.update(self.tables.value_names())
        for frame in self._scopes:
            names.update(frame)
        return sorted(names)

    # -- diagnostics -------------------------------------------------------

    def _unresolved(self, node: ast.PathExpr) -> None:
        name = node.segments[0]
        suggestions: tuple[Suggestion, ...] = ()
        close = difflib.get_close_matches(name, self._visible_names(),
                                          n=1, cutoff=0.6)
        notes: tuple[str, ...] = ()
        if close:
            suggestions = (Suggestion(
                message=f"a value with a similar name exists: `{close[0]}`",
                span=node.span,
                replacement=close[0]),)
        else:
            notes = ("not found in this scope or the item tables",)
        self.diagnostics.append(Diagnostic(
            code="E0425",
            message=f"cannot find value `{name}` in this scope",
            span=node.span,
            notes=notes,
            suggestions=suggestions,
        ))

    def check_type(self, ty: Ty | None, span: Span) -> None:
        if ty is None:
            return
        for name in type_path_names(ty):
            if name in KNOWN_TYPE_NAMES or name in self.tables.types:
                continue
            self.diagnostics.append(Diagnostic(
                code="E0412",
                message=f"cannot find type `{name}` in this scope",
                span=span,
                notes=("the subset knows the std wrappers "
                       "(Vec, Box, MaybeUninit, Mutex, ...) and every "
                       "struct or union declared in this program",),
            ))

    # -- traversal ---------------------------------------------------------

    def run(self) -> list[Diagnostic]:
        for item in self.program.items:
            if isinstance(item, ast.FnItem):
                self._visit_fn(item)
            elif isinstance(item, (ast.StaticItem, ast.ConstItem)):
                self.check_type(item.ty, item.span)
                self._scopes.append(set())
                self.visit(item.init)
                self._scopes.pop()
            elif isinstance(item, (ast.StructItem, ast.UnionItem)):
                for _name, field_ty in item.fields:
                    self.check_type(field_ty, item.span)
        return self.diagnostics

    def _visit_fn(self, item: ast.FnItem) -> None:
        frame: set[str] = set()
        for param in item.params:
            self.check_type(param.ty, param.span)
            if param.name in frame:
                self.diagnostics.append(Diagnostic(
                    code="E0428",
                    message=f"identifier `{param.name}` is bound more than "
                            f"once in this parameter list",
                    span=param.span,
                ))
            frame.add(param.name)
        self.check_type(item.ret, item.span)
        self._scopes.append(frame)
        self._visit_block(item.body, fresh_frame=False)
        self._scopes.pop()

    def _visit_block(self, block: ast.Block, fresh_frame: bool = True) -> None:
        if fresh_frame:
            self._scopes.append(set())
        for stmt in block.stmts:
            if isinstance(stmt, ast.LetStmt):
                self.check_type(stmt.ty, stmt.span)
                if stmt.init is not None:
                    self.visit(stmt.init)
                self._scopes[-1].add(stmt.name)
            elif isinstance(stmt, ast.ExprStmt):
                self.visit(stmt.expr)
        if block.tail is not None:
            self.visit(block.tail)
        if fresh_frame:
            self._scopes.pop()

    def visit(self, node: ast.Expr) -> None:
        if isinstance(node, ast.PathExpr):
            for ty in node.generic_args:
                self.check_type(ty, node.span)
            if len(node.segments) == 1:
                name = node.segments[0]
                if not (self._in_scope(name)
                        or name in self.tables.value_names()
                        or name in BUILTIN_VALUES):
                    self._unresolved(node)
            return
        if isinstance(node, ast.Block):
            self._visit_block(node)
            return
        if isinstance(node, ast.ForExpr):
            self.visit(node.iterable)
            self._scopes.append({node.var})
            self._visit_block(node.body, fresh_frame=False)
            self._scopes.pop()
            return
        if isinstance(node, ast.Closure):
            self._scopes.append(set(node.params))
            self.visit(node.body)
            self._scopes.pop()
            return
        if isinstance(node, ast.StructLit):
            if node.name not in self.tables.types:
                self.diagnostics.append(Diagnostic(
                    code="E0422",
                    message=f"cannot find struct or union `{node.name}` "
                            f"in this scope",
                    span=node.span,
                ))
            for _name, value in node.fields:
                self.visit(value)
            return
        if isinstance(node, ast.Cast):
            self.visit(node.expr)
            self.check_type(node.ty, node.span)
            return
        if isinstance(node, ast.MethodCall):
            for ty in node.generic_args:
                self.check_type(ty, node.span)
            self.visit(node.receiver)
            for arg in node.args:
                self.visit(arg)
            return
        # Generic recursion for every other expression shape.
        for value in vars(node).values():
            if isinstance(value, ast.Expr):
                self.visit(value)
            elif isinstance(value, (list, tuple)):
                for entry in value:
                    if isinstance(entry, ast.Expr):
                        self.visit(entry)
                    elif isinstance(entry, tuple):
                        for sub in entry:
                            if isinstance(sub, ast.Expr):
                                self.visit(sub)


def resolve_names(program: ast.Program) -> tuple[ItemTables,
                                                 list[Diagnostic]]:
    """Run the full pass: item tables + every name diagnostic."""
    tables, diagnostics = collect_items(program)
    resolver = NameResolver(program, tables)
    diagnostics.extend(resolver.run())
    return tables, diagnostics
