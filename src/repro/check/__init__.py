"""Static checker for the mini-Rust subset.

``check_source(source)`` is the front door: it parses and runs name
resolution, layout validation, type checking, and the conservative
borrow/move pass, returning a :class:`CheckReport` of structured
:class:`Diagnostic` records (stable ``E0xxx`` codes, spans, labels, and
machine-applicable suggestions), serialized under the
``repro.diagnostics/1`` schema.
"""

from .checker import check_program, check_source, compute_layouts
from .diagnostics import (DIAGNOSTICS_SCHEMA, ERROR_CODES, CheckReport,
                          Diagnostic, Label, Suggestion, apply_suggestion,
                          sort_diagnostics)

__all__ = [
    "DIAGNOSTICS_SCHEMA",
    "ERROR_CODES",
    "CheckReport",
    "Diagnostic",
    "Label",
    "Suggestion",
    "apply_suggestion",
    "check_program",
    "check_source",
    "compute_layouts",
    "sort_diagnostics",
]
