"""Type representations for the mini-Rust subset.

Types are immutable dataclasses. Layout queries (``size_of`` / ``align_of``)
live here too because both the detector's memory model and the repair agents'
assertion synthesis need them. The layout rules follow Rust's default
representation for the subset we model: little-endian integers, 8-byte
pointers, arrays packed, tuples/structs padded to field alignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

POINTER_SIZE = 8
POINTER_ALIGN = 8


class LayoutError(Exception):
    """Raised for types without a statically known layout (e.g. slices)."""


@dataclass(frozen=True)
class Ty:
    """Base class for all types."""

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


@dataclass(frozen=True)
class TyInt(Ty):
    bits: int
    signed: bool
    #: Present for usize/isize so printing round-trips.
    pointer_sized: bool = False

    @property
    def name(self) -> str:
        if self.pointer_sized:
            return "isize" if self.signed else "usize"
        return f"{'i' if self.signed else 'u'}{self.bits}"

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap ``value`` into this type's representable range (two's complement)."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.signed and value > self.max_value:
            value -= 1 << self.bits
        return value

    def in_range(self, value: int) -> bool:
        return self.min_value <= value <= self.max_value

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TyBool(Ty):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class TyChar(Ty):
    def __str__(self) -> str:
        return "char"


@dataclass(frozen=True)
class TyUnit(Ty):
    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class TyStr(Ty):
    """The unsized ``str`` type; only appears behind references."""

    def __str__(self) -> str:
        return "str"


@dataclass(frozen=True)
class TyNever(Ty):
    def __str__(self) -> str:
        return "!"


@dataclass(frozen=True)
class TyInfer(Ty):
    """The `_` placeholder; resolved during interpretation."""

    def __str__(self) -> str:
        return "_"


@dataclass(frozen=True)
class TyTuple(Ty):
    elems: tuple[Ty, ...]

    def __str__(self) -> str:
        if len(self.elems) == 1:
            return f"({self.elems[0]},)"
        return "(" + ", ".join(str(e) for e in self.elems) + ")"


@dataclass(frozen=True)
class TyArray(Ty):
    elem: Ty
    length: int

    def __str__(self) -> str:
        return f"[{self.elem}; {self.length}]"


@dataclass(frozen=True)
class TySlice(Ty):
    elem: Ty

    def __str__(self) -> str:
        return f"[{self.elem}]"


@dataclass(frozen=True)
class TyRef(Ty):
    target: Ty
    mutable: bool

    def __str__(self) -> str:
        return f"&mut {self.target}" if self.mutable else f"&{self.target}"


@dataclass(frozen=True)
class TyRawPtr(Ty):
    target: Ty
    mutable: bool

    def __str__(self) -> str:
        return f"*mut {self.target}" if self.mutable else f"*const {self.target}"


@dataclass(frozen=True)
class TyFn(Ty):
    params: tuple[Ty, ...]
    ret: Ty
    is_unsafe: bool = False

    def __str__(self) -> str:
        prefix = "unsafe fn" if self.is_unsafe else "fn"
        params = ", ".join(str(p) for p in self.params)
        if isinstance(self.ret, TyUnit):
            return f"{prefix}({params})"
        return f"{prefix}({params}) -> {self.ret}"


@dataclass(frozen=True)
class TyPath(Ty):
    """A named type: user structs/unions or known std generics.

    ``Vec<i32>`` is ``TyPath("Vec", (TyInt(32, True),))``; plain ``Foo`` has
    empty ``args``.
    """

    name: str
    args: tuple[Ty, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}<{', '.join(str(a) for a in self.args)}>"


# ---------------------------------------------------------------------------
# Common singletons

I8 = TyInt(8, True)
I16 = TyInt(16, True)
I32 = TyInt(32, True)
I64 = TyInt(64, True)
U8 = TyInt(8, False)
U16 = TyInt(16, False)
U32 = TyInt(32, False)
U64 = TyInt(64, False)
USIZE = TyInt(64, False, pointer_sized=True)
ISIZE = TyInt(64, True, pointer_sized=True)
BOOL = TyBool()
CHAR = TyChar()
UNIT = TyUnit()
NEVER = TyNever()
INFER = TyInfer()

INT_TYPES = {
    "i8": I8, "i16": I16, "i32": I32, "i64": I64,
    "u8": U8, "u16": U16, "u32": U32, "u64": U64,
    "usize": USIZE, "isize": ISIZE,
}

PRIMITIVES: dict[str, Ty] = {**INT_TYPES, "bool": BOOL, "char": CHAR, "str": TyStr()}

#: std generic wrappers whose layout is a single owning pointer triple/box.
BUILTIN_GENERICS = {"Vec", "Box", "MaybeUninit", "Option", "Mutex", "JoinHandle", "ManuallyDrop"}
BUILTIN_NAMED = {"AtomicUsize", "AtomicI64", "AtomicBool", "Layout", "String"}


# ---------------------------------------------------------------------------
# Structural helpers (used by the static checker)


def normalize(ty: Ty) -> Ty:
    """Structural normal form for type comparison.

    The parser produces ``UNIT`` for a literal ``()`` annotation, but
    programmatic construction can yield ``TyTuple(())`` — which prints
    identically yet compares unequal.  Normalizing maps the empty tuple
    to ``UNIT`` (recursively through containers) so the checker's
    equality never trips on the ambiguity.
    """
    if isinstance(ty, TyTuple):
        elems = tuple(normalize(e) for e in ty.elems)
        return UNIT if not elems else TyTuple(elems)
    if isinstance(ty, TyArray):
        return TyArray(normalize(ty.elem), ty.length)
    if isinstance(ty, TySlice):
        return TySlice(normalize(ty.elem))
    if isinstance(ty, TyRef):
        return TyRef(normalize(ty.target), ty.mutable)
    if isinstance(ty, TyRawPtr):
        return TyRawPtr(normalize(ty.target), ty.mutable)
    if isinstance(ty, TyFn):
        return TyFn(tuple(normalize(p) for p in ty.params),
                    normalize(ty.ret), ty.is_unsafe)
    if isinstance(ty, TyPath):
        return TyPath(ty.name, tuple(normalize(a) for a in ty.args))
    return ty


def contains_infer(ty: Ty) -> bool:
    """Whether ``_`` occurs anywhere inside ``ty`` (checks must not fire
    on a type that is only partially known)."""
    if isinstance(ty, TyInfer):
        return True
    if isinstance(ty, TyTuple):
        return any(contains_infer(e) for e in ty.elems)
    if isinstance(ty, (TyArray, TySlice)):
        return contains_infer(ty.elem)
    if isinstance(ty, (TyRef, TyRawPtr)):
        return contains_infer(ty.target)
    if isinstance(ty, TyFn):
        return any(contains_infer(p) for p in ty.params) \
            or contains_infer(ty.ret)
    if isinstance(ty, TyPath):
        return any(contains_infer(a) for a in ty.args)
    return False


def is_copy(ty: Ty, structs: dict[str, "StructLayout"] | None = None) -> bool:
    """Conservative Copy judgement for the borrow/move pass.

    Errs toward ``True``: a type we cannot classify is treated as Copy so
    move analysis stays silent rather than report a false positive.  Only
    the owning std containers (``Vec``/``Box``/``String``/``Mutex``/...)
    and aggregates containing them answer ``False``.
    """
    if isinstance(ty, (TyInt, TyBool, TyChar, TyUnit, TyNever, TyInfer,
                       TyRawPtr, TyFn, TyStr)):
        return True
    if isinstance(ty, TyRef):
        return not ty.mutable
    if isinstance(ty, TyTuple):
        return all(is_copy(e, structs) for e in ty.elems)
    if isinstance(ty, (TyArray, TySlice)):
        return is_copy(ty.elem, structs)
    if isinstance(ty, TyPath):
        if ty.name in ("MaybeUninit", "ManuallyDrop", "Option"):
            return all(is_copy(a, structs) for a in ty.args)
        if ty.name == "Layout":
            return True
        if ty.name in ("Vec", "String", "Box", "Mutex", "JoinHandle",
                       "MutexGuard", "Closure", "AtomicUsize", "AtomicI64",
                       "AtomicBool"):
            return False
        if structs is not None and ty.name in structs:
            return all(is_copy(t, structs)
                       for t in structs[ty.name].field_types)
        return True
    return True


# ---------------------------------------------------------------------------
# Layout


def size_of(ty: Ty, structs: dict[str, "StructLayout"] | None = None) -> int:
    """Byte size of ``ty`` under our fixed 64-bit layout model."""
    if isinstance(ty, TyInt):
        return ty.bits // 8
    if isinstance(ty, TyBool):
        return 1
    if isinstance(ty, TyChar):
        return 4
    if isinstance(ty, (TyUnit, TyNever)):
        return 0
    if isinstance(ty, TyArray):
        return size_of(ty.elem, structs) * ty.length
    if isinstance(ty, TyTuple):
        return _aggregate_layout([*ty.elems], structs)[0]
    if isinstance(ty, (TyRef, TyRawPtr, TyFn)):
        if isinstance(ty, (TyRef, TyRawPtr)) and isinstance(ty.target, (TySlice, TyStr)):
            return 2 * POINTER_SIZE  # fat pointer: (data, len)
        return POINTER_SIZE
    if isinstance(ty, TyPath):
        return _path_size(ty, structs)
    raise LayoutError(f"type {ty} has no static size")


def align_of(ty: Ty, structs: dict[str, "StructLayout"] | None = None) -> int:
    if isinstance(ty, TyInt):
        return ty.bits // 8
    if isinstance(ty, TyBool):
        return 1
    if isinstance(ty, TyChar):
        return 4
    if isinstance(ty, (TyUnit, TyNever)):
        return 1
    if isinstance(ty, TyArray):
        return align_of(ty.elem, structs)
    if isinstance(ty, TyTuple):
        return max((align_of(e, structs) for e in ty.elems), default=1)
    if isinstance(ty, (TyRef, TyRawPtr, TyFn)):
        return POINTER_ALIGN
    if isinstance(ty, TyPath):
        return _path_align(ty, structs)
    raise LayoutError(f"type {ty} has no static alignment")


def _path_size(ty: TyPath, structs: dict[str, "StructLayout"] | None) -> int:
    if ty.name == "Vec":
        return 3 * POINTER_SIZE  # (ptr, cap, len)
    if ty.name == "String":
        return 3 * POINTER_SIZE
    if ty.name in ("Box", "JoinHandle"):
        return POINTER_SIZE
    if ty.name in ("MaybeUninit", "ManuallyDrop"):
        return size_of(ty.args[0], structs)
    if ty.name == "Option":
        inner = ty.args[0]
        if isinstance(inner, (TyRef, TyRawPtr, TyFn)) or (
            isinstance(inner, TyPath) and inner.name == "Box"
        ):
            return POINTER_SIZE  # niche optimisation
        return _aggregate_layout([BOOL, inner], structs)[0]
    if ty.name == "Mutex":
        return POINTER_SIZE + size_of(ty.args[0], structs)
    if ty.name in ("AtomicUsize", "AtomicI64"):
        return 8
    if ty.name == "AtomicBool":
        return 1
    if ty.name == "Layout":
        return 2 * POINTER_SIZE
    if ty.name == "MutexGuard":
        return 2 * POINTER_SIZE
    if ty.name == "Closure":
        return POINTER_SIZE
    if structs and ty.name in structs:
        return structs[ty.name].size
    raise LayoutError(f"unknown named type {ty.name}")


def _path_align(ty: TyPath, structs: dict[str, "StructLayout"] | None) -> int:
    if ty.name in ("Vec", "String", "Box", "JoinHandle", "Layout",
                   "MutexGuard", "Closure"):
        return POINTER_ALIGN
    if ty.name in ("MaybeUninit", "ManuallyDrop"):
        return align_of(ty.args[0], structs)
    if ty.name == "Option":
        inner = ty.args[0]
        if isinstance(inner, (TyRef, TyRawPtr, TyFn)) or (
            isinstance(inner, TyPath) and inner.name == "Box"
        ):
            return POINTER_ALIGN
        return max(1, align_of(inner, structs))
    if ty.name == "Mutex":
        return max(POINTER_ALIGN, align_of(ty.args[0], structs))
    if ty.name in ("AtomicUsize", "AtomicI64"):
        return 8
    if ty.name == "AtomicBool":
        return 1
    if structs and ty.name in structs:
        return structs[ty.name].align
    raise LayoutError(f"unknown named type {ty.name}")


def _aggregate_layout(
    fields: list[Ty], structs: dict[str, "StructLayout"] | None
) -> tuple[int, int, list[int]]:
    """Return (size, align, per-field offsets) for a C-like aggregate."""
    offset = 0
    max_align = 1
    offsets: list[int] = []
    for fld in fields:
        fa = align_of(fld, structs)
        max_align = max(max_align, fa)
        offset = _round_up(offset, fa)
        offsets.append(offset)
        offset += size_of(fld, structs)
    return _round_up(offset, max_align), max_align, offsets


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


@dataclass(frozen=True)
class StructLayout:
    """Computed layout for a user struct or union."""

    name: str
    field_names: tuple[str, ...]
    field_types: tuple[Ty, ...]
    field_offsets: tuple[int, ...]
    size: int
    align: int
    is_union: bool = False

    @classmethod
    def for_struct(
        cls, name: str, fields: list[tuple[str, Ty]],
        structs: dict[str, "StructLayout"] | None = None,
    ) -> "StructLayout":
        names = tuple(f[0] for f in fields)
        tys = tuple(f[1] for f in fields)
        size, align, offsets = _aggregate_layout(list(tys), structs)
        return cls(name, names, tys, tuple(offsets), size, align)

    @classmethod
    def for_union(
        cls, name: str, fields: list[tuple[str, Ty]],
        structs: dict[str, "StructLayout"] | None = None,
    ) -> "StructLayout":
        names = tuple(f[0] for f in fields)
        tys = tuple(f[1] for f in fields)
        size = max((size_of(t, structs) for t in tys), default=0)
        align = max((align_of(t, structs) for t in tys), default=1)
        size = _round_up(size, align)
        return cls(name, names, tys, tuple(0 for _ in tys), size, align, is_union=True)

    def offset_of(self, field_name: str) -> int:
        return self.field_offsets[self.field_names.index(field_name)]

    def type_of(self, field_name: str) -> Ty:
        return self.field_types[self.field_names.index(field_name)]
