"""Visitor and transformer infrastructure over the mini-Rust AST.

Rewrite rules need to (a) find nodes matching a predicate and (b) replace a
node wherever it sits in its parent (attribute, list element, or tuple
element). :func:`replace_node` performs the surgical replacement; the pruning
algorithm and feature extraction use :func:`collect`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from . import ast_nodes as ast


def collect(root: ast.Node, predicate: Callable[[ast.Node], bool]) -> list[ast.Node]:
    """All descendants (including ``root``) for which ``predicate`` holds."""
    return [node for node in ast.walk(root) if predicate(node)]


def find_first(root: ast.Node, predicate: Callable[[ast.Node], bool]) -> ast.Node | None:
    for node in ast.walk(root):
        if predicate(node):
            return node
    return None


def iter_with_parents(
    root: ast.Node, parent: ast.Node | None = None
) -> Iterator[tuple[ast.Node, ast.Node | None]]:
    """Yield ``(node, parent)`` pairs in pre-order."""
    yield root, parent
    for value in vars(root).values():
        if isinstance(value, ast.Node):
            yield from iter_with_parents(value, root)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, ast.Node):
                    yield from iter_with_parents(item, root)
                elif isinstance(item, tuple):
                    for sub in item:
                        if isinstance(sub, ast.Node):
                            yield from iter_with_parents(sub, root)


def replace_node(root: ast.Node, target_id: int, replacement: ast.Node) -> bool:
    """Replace the node with ``node_id == target_id`` inside ``root``.

    Returns True when a replacement happened. Handles nodes stored directly in
    attributes, in lists, and in ``(name, node)`` tuples inside lists.
    """
    for node in ast.walk(root):
        for attr, value in vars(node).items():
            if isinstance(value, ast.Node) and value.node_id == target_id:
                setattr(node, attr, replacement)
                return True
            if isinstance(value, list):
                for index, item in enumerate(value):
                    if isinstance(item, ast.Node) and item.node_id == target_id:
                        value[index] = replacement
                        return True
                    if isinstance(item, tuple):
                        for tup_idx, sub in enumerate(item):
                            if isinstance(sub, ast.Node) and sub.node_id == target_id:
                                new_tuple = list(item)
                                new_tuple[tup_idx] = replacement
                                value[index] = tuple(new_tuple)
                                return True
    return False


def remove_stmt(root: ast.Node, target_id: int) -> bool:
    """Remove a statement by node id from whichever block holds it."""
    for node in ast.walk(root):
        if isinstance(node, ast.Block):
            for index, stmt in enumerate(node.stmts):
                if stmt.node_id == target_id:
                    del node.stmts[index]
                    return True
    return False


def containing_block(root: ast.Node, target_id: int) -> tuple[ast.Block, int] | None:
    """Find the block and statement index whose subtree contains ``target_id``.

    Returns the *innermost* such block, so an inserted assertion lands right
    next to the offending statement.
    """
    best: tuple[ast.Block, int] | None = None
    for node in ast.walk(root):
        if not isinstance(node, ast.Block):
            continue
        for index, stmt in enumerate(node.stmts):
            if any(n.node_id == target_id for n in ast.walk(stmt)):
                best = (node, index)
        if node.tail is not None and any(
            n.node_id == target_id for n in ast.walk(node.tail)
        ):
            best = (node, len(node.stmts))
    return best


def insert_before(root: ast.Node, target_id: int, new_stmt: ast.Stmt) -> bool:
    """Insert ``new_stmt`` immediately before the statement containing the node."""
    location = containing_block(root, target_id)
    if location is None:
        return False
    block, index = location
    block.stmts.insert(index, new_stmt)
    return True


def enclosing_unsafe_blocks(root: ast.Node) -> list[ast.Block]:
    """All ``unsafe { ... }`` blocks in the tree."""
    return [
        node for node in ast.walk(root)
        if isinstance(node, ast.Block) and node.is_unsafe
    ]
