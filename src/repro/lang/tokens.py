"""Token definitions for the mini-Rust lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .span import Span


class TokenKind(enum.Enum):
    IDENT = "ident"
    INT = "int"
    STRING = "string"
    CHAR = "char"
    LIFETIME = "lifetime"

    # Keywords.
    KW_AS = "as"
    KW_BREAK = "break"
    KW_CONST = "const"
    KW_CONTINUE = "continue"
    KW_ELSE = "else"
    KW_ENUM = "enum"
    KW_FALSE = "false"
    KW_FN = "fn"
    KW_FOR = "for"
    KW_IF = "if"
    KW_IMPL = "impl"
    KW_IN = "in"
    KW_LET = "let"
    KW_LOOP = "loop"
    KW_MATCH = "match"
    KW_MOVE = "move"
    KW_MUT = "mut"
    KW_PUB = "pub"
    KW_RETURN = "return"
    KW_STATIC = "static"
    KW_STRUCT = "struct"
    KW_TRUE = "true"
    KW_UNION = "union"
    KW_UNSAFE = "unsafe"
    KW_USE = "use"
    KW_WHILE = "while"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    COLONCOLON = "::"
    ARROW = "->"
    FATARROW = "=>"
    DOT = "."
    DOTDOT = ".."
    DOTDOTEQ = "..="
    HASH = "#"
    BANG = "!"
    QUESTION = "?"
    AT = "@"

    # Operators.
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    CARET = "^"
    AMP = "&"
    AMPAMP = "&&"
    PIPE = "|"
    PIPEPIPE = "||"
    SHL = "<<"
    SHR = ">>"
    EQ = "="
    EQEQ = "=="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    PLUSEQ = "+="
    MINUSEQ = "-="
    STAREQ = "*="
    SLASHEQ = "/="
    PERCENTEQ = "%="
    CARETEQ = "^="
    AMPEQ = "&="
    PIPEEQ = "|="
    SHLEQ = "<<="
    SHREQ = ">>="

    EOF = "eof"


KEYWORDS = {
    "as": TokenKind.KW_AS,
    "break": TokenKind.KW_BREAK,
    "const": TokenKind.KW_CONST,
    "continue": TokenKind.KW_CONTINUE,
    "else": TokenKind.KW_ELSE,
    "enum": TokenKind.KW_ENUM,
    "false": TokenKind.KW_FALSE,
    "fn": TokenKind.KW_FN,
    "for": TokenKind.KW_FOR,
    "if": TokenKind.KW_IF,
    "impl": TokenKind.KW_IMPL,
    "in": TokenKind.KW_IN,
    "let": TokenKind.KW_LET,
    "loop": TokenKind.KW_LOOP,
    "match": TokenKind.KW_MATCH,
    "move": TokenKind.KW_MOVE,
    "mut": TokenKind.KW_MUT,
    "pub": TokenKind.KW_PUB,
    "return": TokenKind.KW_RETURN,
    "static": TokenKind.KW_STATIC,
    "struct": TokenKind.KW_STRUCT,
    "true": TokenKind.KW_TRUE,
    "union": TokenKind.KW_UNION,
    "unsafe": TokenKind.KW_UNSAFE,
    "use": TokenKind.KW_USE,
    "while": TokenKind.KW_WHILE,
}

#: Integer literal suffixes the lexer recognises and keeps attached.
INT_SUFFIXES = (
    "i8", "i16", "i32", "i64", "i128", "isize",
    "u8", "u16", "u32", "u64", "u128", "usize",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    span: Span

    def is_kw(self, *kinds: TokenKind) -> bool:
        return self.kind in kinds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}@{self.span})"
