"""AST node definitions for the mini-Rust subset.

Nodes are plain mutable dataclasses (agents rewrite trees in place or via
:func:`clone`). Every node carries a :class:`~repro.lang.span.Span` pointing
at the original source so diagnostics and knowledge-base entries can reference
locations, and a ``node_id`` that is unique within a parse, which the AST
pruning algorithm and the rewrite engine use to address nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field

from .span import DUMMY_SPAN, Span
from .types import Ty

_NODE_COUNTER = itertools.count(1)


def _next_id() -> int:
    return next(_NODE_COUNTER)


@dataclass
class Node:
    span: Span = dc_field(default=DUMMY_SPAN, kw_only=True)
    node_id: int = dc_field(default_factory=_next_id, kw_only=True)


def clone(node):
    """Deep-copy an AST (or list of ASTs), assigning fresh node ids.

    Hand-rolled rather than :func:`copy.deepcopy`: ASTs are trees of
    dataclasses whose non-node fields (spans, types, literals) are frozen
    or scalar, so they are shared instead of copied — the rewrite engine
    clones on every candidate patch and deepcopy's memo machinery was the
    single hottest call in a cold campaign.
    """
    if isinstance(node, Node):
        return _clone_node(node)
    return [_clone_node(item) for item in node]


def _clone_node(node):
    new = object.__new__(type(node))
    fields = new.__dict__
    for key, value in node.__dict__.items():
        if isinstance(value, Node):
            fields[key] = _clone_node(value)
        elif type(value) is list:
            fields[key] = [_clone_child(item) for item in value]
        elif type(value) is tuple:
            fields[key] = tuple(_clone_child(item) for item in value)
        else:
            fields[key] = value
    fields["node_id"] = _next_id()
    return new


def _clone_child(item):
    if isinstance(item, Node):
        return _clone_node(item)
    if type(item) is tuple:
        return tuple(_clone_child(sub) for sub in item)
    if type(item) is list:
        return [_clone_child(sub) for sub in item]
    return item


def _walk_many(nodes):
    for node in nodes:
        yield from walk(node)


def walk(node: "Node"):
    """Yield ``node`` and every AST descendant, pre-order.

    Handles plain child nodes, lists of nodes, and lists of tuples that
    contain nodes (e.g. ``StructLit.fields`` is ``list[tuple[str, Expr]]``).
    Iterative with an explicit stack: every rewrite probe, fingerprint, and
    bytecode compile traverses with this, and nested ``yield from`` frames
    dominated it.
    """
    stack = [node]
    pop = stack.pop
    while stack:
        current = pop()
        yield current
        children = []
        append = children.append
        for value in vars(current).values():
            if isinstance(value, Node):
                append(value)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        append(item)
                    elif isinstance(item, tuple):
                        for sub in item:
                            if isinstance(sub, Node):
                                append(sub)
        if children:
            children.reverse()
            stack.extend(children)


# ---------------------------------------------------------------------------
# Expressions


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0
    suffix: str | None = None  # "i32", "usize", ... when written explicitly


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class CharLit(Expr):
    value: str = "\0"


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class PathExpr(Expr):
    """A (possibly qualified) path: ``x``, ``std::mem::transmute``,
    ``u32::from_le_bytes``; turbofish generic args are kept on the path."""

    segments: list[str] = dc_field(default_factory=list)
    generic_args: list[Ty] = dc_field(default_factory=list)

    @property
    def is_local(self) -> bool:
        return len(self.segments) == 1 and not self.generic_args

    @property
    def name(self) -> str:
        return self.segments[-1]

    @property
    def full(self) -> str:
        return "::".join(self.segments)


@dataclass
class Unary(Expr):
    op: str = "-"  # '-', '!', '*' (deref), '&', '&mut'
    operand: Expr = dc_field(default_factory=lambda: IntLit(0))


@dataclass
class Binary(Expr):
    op: str = "+"
    left: Expr = dc_field(default_factory=lambda: IntLit(0))
    right: Expr = dc_field(default_factory=lambda: IntLit(0))


@dataclass
class Assign(Expr):
    target: Expr = dc_field(default_factory=lambda: PathExpr(["_"]))
    value: Expr = dc_field(default_factory=lambda: IntLit(0))


@dataclass
class CompoundAssign(Expr):
    op: str = "+"
    target: Expr = dc_field(default_factory=lambda: PathExpr(["_"]))
    value: Expr = dc_field(default_factory=lambda: IntLit(0))


@dataclass
class Call(Expr):
    func: Expr = dc_field(default_factory=lambda: PathExpr(["_"]))
    args: list[Expr] = dc_field(default_factory=list)


@dataclass
class MethodCall(Expr):
    receiver: Expr = dc_field(default_factory=lambda: PathExpr(["_"]))
    method: str = ""
    generic_args: list[Ty] = dc_field(default_factory=list)
    args: list[Expr] = dc_field(default_factory=list)


@dataclass
class FieldAccess(Expr):
    obj: Expr = dc_field(default_factory=lambda: PathExpr(["_"]))
    field: str = ""  # also tuple indices: "0", "1", ...


@dataclass
class Index(Expr):
    obj: Expr = dc_field(default_factory=lambda: PathExpr(["_"]))
    index: Expr = dc_field(default_factory=lambda: IntLit(0))


@dataclass
class Cast(Expr):
    expr: Expr = dc_field(default_factory=lambda: IntLit(0))
    ty: Ty | None = None


@dataclass
class Block(Expr):
    stmts: list["Stmt"] = dc_field(default_factory=list)
    tail: Expr | None = None  # trailing expression without semicolon
    is_unsafe: bool = False


@dataclass
class IfExpr(Expr):
    cond: Expr = dc_field(default_factory=lambda: BoolLit(True))
    then_block: Block = dc_field(default_factory=Block)
    else_block: Expr | None = None  # Block or nested IfExpr


@dataclass
class WhileExpr(Expr):
    cond: Expr = dc_field(default_factory=lambda: BoolLit(False))
    body: Block = dc_field(default_factory=Block)


@dataclass
class LoopExpr(Expr):
    body: Block = dc_field(default_factory=Block)


@dataclass
class ForExpr(Expr):
    var: str = "_"
    iterable: Expr = dc_field(default_factory=lambda: IntLit(0))
    body: Block = dc_field(default_factory=Block)


@dataclass
class RangeExpr(Expr):
    lo: Expr | None = None
    hi: Expr | None = None
    inclusive: bool = False


@dataclass
class TupleLit(Expr):
    elems: list[Expr] = dc_field(default_factory=list)


@dataclass
class ArrayLit(Expr):
    elems: list[Expr] = dc_field(default_factory=list)


@dataclass
class ArrayRepeat(Expr):
    elem: Expr = dc_field(default_factory=lambda: IntLit(0))
    count: Expr = dc_field(default_factory=lambda: IntLit(0))


@dataclass
class StructLit(Expr):
    name: str = ""
    fields: list[tuple[str, Expr]] = dc_field(default_factory=list)


@dataclass
class MacroCall(Expr):
    """``assert!``, ``assert_eq!``, ``println!``, ``vec!``, ``panic!`` ..."""

    name: str = ""
    args: list[Expr] = dc_field(default_factory=list)


@dataclass
class Closure(Expr):
    params: list[str] = dc_field(default_factory=list)
    body: Expr = dc_field(default_factory=Block)
    is_move: bool = False


@dataclass
class ReturnExpr(Expr):
    value: Expr | None = None


@dataclass
class BreakExpr(Expr):
    value: Expr | None = None


@dataclass
class ContinueExpr(Expr):
    pass


# ---------------------------------------------------------------------------
# Statements


@dataclass
class Stmt(Node):
    pass


@dataclass
class LetStmt(Stmt):
    name: str = "_"
    mutable: bool = False
    ty: Ty | None = None
    init: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = dc_field(default_factory=lambda: IntLit(0))
    has_semi: bool = True


# ---------------------------------------------------------------------------
# Items


@dataclass
class Item(Node):
    pass


@dataclass
class Param(Node):
    name: str = "_"
    ty: Ty | None = None
    mutable: bool = False


@dataclass
class FnItem(Item):
    name: str = ""
    params: list[Param] = dc_field(default_factory=list)
    ret: Ty | None = None  # None means unit
    body: Block = dc_field(default_factory=Block)
    is_unsafe: bool = False


@dataclass
class StaticItem(Item):
    name: str = ""
    ty: Ty | None = None
    init: Expr = dc_field(default_factory=lambda: IntLit(0))
    mutable: bool = False


@dataclass
class ConstItem(Item):
    name: str = ""
    ty: Ty | None = None
    init: Expr = dc_field(default_factory=lambda: IntLit(0))


@dataclass
class StructItem(Item):
    name: str = ""
    fields: list[tuple[str, Ty]] = dc_field(default_factory=list)


@dataclass
class UnionItem(Item):
    name: str = ""
    fields: list[tuple[str, Ty]] = dc_field(default_factory=list)


@dataclass
class UseItem(Item):
    path: str = ""


@dataclass
class Program(Node):
    items: list[Item] = dc_field(default_factory=list)

    def fn(self, name: str) -> FnItem | None:
        """Look up a function item by name."""
        for item in self.items:
            if isinstance(item, FnItem) and item.name == name:
                return item
        return None

    def functions(self) -> list[FnItem]:
        return [i for i in self.items if isinstance(i, FnItem)]

    def find(self, node_id: int) -> Node | None:
        """Locate a node by id anywhere in the program."""
        for node in walk(self):
            if node.node_id == node_id:
                return node
        return None


def parent_map(root: Node) -> dict[int, Node]:
    """Map each node's ``node_id`` to its parent node."""
    parents: dict[int, Node] = {}
    for node in walk(root):
        for value in vars(node).values():
            children = []
            if isinstance(value, Node):
                children = [value]
            elif isinstance(value, (list, tuple)):
                children = [v for v in value if isinstance(v, Node)]
            for child in children:
                parents[child.node_id] = node
    return parents
