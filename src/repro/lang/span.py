"""Source spans for diagnostics.

Every token and AST node carries a :class:`Span` so that detector errors and
agent rewrites can point back at concrete source locations, mirroring the way
Miri diagnostics reference ``file.rs:line:col``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """Half-open byte range ``[start, end)`` in the original source text."""

    start: int
    end: int
    line: int
    col: int

    def merge(self, other: "Span") -> "Span":
        """Return the smallest span covering both ``self`` and ``other``."""
        if other.start < self.start:
            first, last = other, self
        else:
            first, last = self, other
        return Span(first.start, max(self.end, other.end), first.line, first.col)

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


DUMMY_SPAN = Span(0, 0, 0, 0)
