"""Source spans for diagnostics.

Every token and AST node carries a :class:`Span` so that detector errors and
agent rewrites can point back at concrete source locations, mirroring the way
Miri diagnostics reference ``file.rs:line:col``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """Half-open byte range ``[start, end)`` in the original source text."""

    start: int
    end: int
    line: int
    col: int

    def merge(self, other: "Span") -> "Span":
        """Return the smallest span covering both ``self`` and ``other``."""
        if other.start < self.start:
            first, last = other, self
        else:
            first, last = self, other
        return Span(first.start, max(self.end, other.end), first.line, first.col)

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


DUMMY_SPAN = Span(0, 0, 0, 0)


def line_col(source: str, offset: int) -> tuple[int, int]:
    """1-based ``(line, col)`` of a character offset, lexer convention."""
    offset = max(0, min(offset, len(source)))
    line = source.count("\n", 0, offset) + 1
    last_newline = source.rfind("\n", 0, offset)
    return line, offset - last_newline


def span_at(source: str, start: int, end: int | None = None) -> Span:
    """Build a :class:`Span` for ``[start, end)`` computing line/col from
    the text (for callers that only track offsets, e.g. textual splices)."""
    line, col = line_col(source, start)
    return Span(start, start if end is None else end, line, col)


def source_line(source: str, line: int) -> str:
    """The 1-based ``line``-th line of ``source`` (no trailing newline)."""
    lines = source.splitlines()
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return ""


def render_snippet(source: str, span: Span, label: str = "") -> str:
    """A rustc-style caret snippet pointing at ``span``::

          --> 3:9
           |
         3 |     let total = count + 1;
           |                 ^^^^^ label

    Spans with no real location (``DUMMY_SPAN``) render as the location
    line alone so callers never special-case them.
    """
    header = f"  --> {span}"
    if span.line < 1:
        return header
    text = source_line(source, span.line)
    gutter = f"{span.line} "
    pad = " " * len(gutter)
    remaining = len(text) - (span.col - 1)
    width = max(1, min(span.end - span.start, remaining))
    underline = " " * (span.col - 1) + "^" * width
    if label:
        underline += f" {label}"
    return "\n".join([header,
                      f"{pad}|",
                      f"{gutter}| {text}",
                      f"{pad}| {underline}"])
