"""Mini-Rust language frontend: lexer, parser, AST, printer, types.

This package is the substrate on which both the UB detector
(:mod:`repro.miri`) and the repair agents (:mod:`repro.core`) operate.

>>> from repro.lang import parse_program, print_program
>>> prog = parse_program("fn main() { let x = 1 + 2; }")
>>> print(print_program(prog))
fn main() {
    let x = 1 + 2;
}
"""

from .ast_nodes import Program, clone, parent_map, walk
from .lexer import LexError, tokenize
from .parser import ParseError, parse_expr, parse_program
from .printer import print_expr, print_program, print_type
from .span import Span

__all__ = [
    "LexError",
    "ParseError",
    "Program",
    "Span",
    "clone",
    "parent_map",
    "parse_expr",
    "parse_program",
    "print_expr",
    "print_program",
    "print_type",
    "tokenize",
    "walk",
]
