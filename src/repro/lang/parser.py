"""Recursive-descent parser for the mini-Rust subset.

Expressions use Pratt-style precedence climbing. The grammar intentionally
covers the constructs that unsafe-Rust UB corpora exercise: unsafe blocks and
functions, raw pointers, references, casts, turbofish paths
(``mem::transmute::<&i32, usize>``), struct/union items and literals, statics
(including ``static mut``), closures (for ``thread::spawn(move || ...)``),
macros (``assert!``, ``println!``, ``vec!``), and the usual control flow.
"""

from __future__ import annotations

from functools import lru_cache

from . import ast_nodes as ast
from .lexer import tokenize
from .span import Span
from .tokens import Token, TokenKind as T
from .types import (
    BOOL,
    CHAR,
    INFER,
    PRIMITIVES,
    Ty,
    TyArray,
    TyFn,
    TyPath,
    TyRawPtr,
    TyRef,
    TySlice,
    TyTuple,
    TyStr,
    UNIT,
)


class ParseError(Exception):
    def __init__(self, message: str, span: Span):
        super().__init__(f"{message} at {span}")
        self.message = message
        self.span = span

    def render(self, source: str) -> str:
        """Caret snippet pointing at the offending token."""
        from .span import render_snippet
        return f"error: {self.message}\n" + render_snippet(source, self.span)


# Binary operator precedence; higher binds tighter.
_BINOP_PREC = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3, "<": 3, ">": 3, "<=": 3, ">=": 3,
    "|": 4,
    "^": 5,
    "&": 6,
    "<<": 7, ">>": 7,
    "+": 8, "-": 8,
    "*": 9, "/": 9, "%": 9,
}
_CAST_PREC = 10

_COMPOUND_OPS = {
    T.PLUSEQ: "+", T.MINUSEQ: "-", T.STAREQ: "*", T.SLASHEQ: "/",
    T.PERCENTEQ: "%", T.CARETEQ: "^", T.AMPEQ: "&", T.PIPEEQ: "|",
    T.SHLEQ: "<<", T.SHREQ: ">>",
}

_BINOP_TOKENS = {
    T.PIPEPIPE: "||", T.AMPAMP: "&&",
    T.EQEQ: "==", T.NE: "!=", T.LT: "<", T.GT: ">", T.LE: "<=", T.GE: ">=",
    T.PIPE: "|", T.CARET: "^", T.AMP: "&",
    T.SHL: "<<", T.SHR: ">>",
    T.PLUS: "+", T.MINUS: "-",
    T.STAR: "*", T.SLASH: "/", T.PERCENT: "%",
}

_MACRO_NAMES = {
    "assert", "assert_eq", "assert_ne", "println", "print", "panic", "vec",
    "format", "write", "unreachable", "dbg",
}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        # When > 0, struct literals are not allowed (if/while/for headers).
        self._no_struct_lit = 0

    # ------------------------------------------------------------------
    # Token helpers

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, *kinds: T) -> bool:
        return self._peek().kind in kinds

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not T.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: T, what: str | None = None) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            expected = what or kind.value
            raise ParseError(f"expected {expected!r}, found {tok.text!r}", tok.span)
        return self._advance()

    def _eat(self, kind: T) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    def _expect_gt(self) -> None:
        """Consume a ``>``; splits ``>>`` / ``>=`` so nested generics parse."""
        tok = self._peek()
        if tok.kind is T.GT:
            self._advance()
            return
        if tok.kind is T.SHR:
            half = Span(tok.span.start + 1, tok.span.end, tok.span.line, tok.span.col + 1)
            self.tokens[self.pos] = Token(T.GT, ">", half)
            return
        if tok.kind is T.GE:
            half = Span(tok.span.start + 1, tok.span.end, tok.span.line, tok.span.col + 1)
            self.tokens[self.pos] = Token(T.EQ, "=", half)
            return
        raise ParseError(f"expected '>', found {tok.text!r}", tok.span)

    # ------------------------------------------------------------------
    # Program / items

    def parse_program(self) -> ast.Program:
        items: list[ast.Item] = []
        start = self._peek().span
        while not self._at(T.EOF):
            items.append(self.parse_item())
        return ast.Program(items, span=start)

    def parse_item(self) -> ast.Item:
        # Skip attributes like #[derive(...)] / #![allow(...)].
        while self._at(T.HASH):
            self._advance()
            self._eat(T.BANG)
            self._expect(T.LBRACKET)
            depth = 1
            while depth:
                tok = self._advance()
                if tok.kind is T.LBRACKET:
                    depth += 1
                elif tok.kind is T.RBRACKET:
                    depth -= 1
                elif tok.kind is T.EOF:
                    raise ParseError("unterminated attribute", tok.span)
        self._eat(T.KW_PUB)
        tok = self._peek()
        if tok.kind is T.KW_USE:
            return self._parse_use()
        if tok.kind is T.KW_STATIC:
            return self._parse_static()
        if tok.kind is T.KW_CONST and self._peek(1).kind is T.IDENT:
            return self._parse_const()
        if tok.kind is T.KW_STRUCT:
            return self._parse_struct()
        if tok.kind is T.KW_UNION or (tok.kind is T.IDENT and tok.text == "union"):
            return self._parse_union()
        if tok.kind is T.KW_FN or (tok.kind is T.KW_UNSAFE and self._peek(1).kind is T.KW_FN):
            return self._parse_fn()
        raise ParseError(f"expected item, found {tok.text!r}", tok.span)

    def _parse_use(self) -> ast.UseItem:
        start = self._expect(T.KW_USE).span
        parts: list[str] = []
        while not self._at(T.SEMI, T.EOF):
            parts.append(self._advance().text)
        self._expect(T.SEMI)
        return ast.UseItem("".join(parts), span=start)

    def _parse_static(self) -> ast.StaticItem:
        start = self._expect(T.KW_STATIC).span
        mutable = self._eat(T.KW_MUT) is not None
        name = self._expect(T.IDENT).text
        self._expect(T.COLON)
        ty = self.parse_type()
        self._expect(T.EQ)
        init = self.parse_expr()
        self._expect(T.SEMI)
        return ast.StaticItem(name, ty, init, mutable, span=start)

    def _parse_const(self) -> ast.ConstItem:
        start = self._expect(T.KW_CONST).span
        name = self._expect(T.IDENT).text
        self._expect(T.COLON)
        ty = self.parse_type()
        self._expect(T.EQ)
        init = self.parse_expr()
        self._expect(T.SEMI)
        return ast.ConstItem(name, ty, init, span=start)

    def _parse_struct(self) -> ast.StructItem:
        start = self._expect(T.KW_STRUCT).span
        name = self._expect(T.IDENT).text
        fields = self._parse_field_list()
        return ast.StructItem(name, fields, span=start)

    def _parse_union(self) -> ast.UnionItem:
        start = self._advance().span  # 'union' keyword or ident
        name = self._expect(T.IDENT).text
        fields = self._parse_field_list()
        return ast.UnionItem(name, fields, span=start)

    def _parse_field_list(self) -> list[tuple[str, Ty]]:
        self._expect(T.LBRACE)
        fields: list[tuple[str, Ty]] = []
        while not self._at(T.RBRACE):
            self._eat(T.KW_PUB)
            fname = self._expect(T.IDENT).text
            self._expect(T.COLON)
            fty = self.parse_type()
            fields.append((fname, fty))
            if not self._eat(T.COMMA):
                break
        self._expect(T.RBRACE)
        return fields

    def _parse_fn(self) -> ast.FnItem:
        is_unsafe = self._eat(T.KW_UNSAFE) is not None
        start = self._expect(T.KW_FN).span
        name = self._expect(T.IDENT).text
        self._expect(T.LPAREN)
        params: list[ast.Param] = []
        while not self._at(T.RPAREN):
            mutable = self._eat(T.KW_MUT) is not None
            pname = self._expect(T.IDENT).text
            self._expect(T.COLON)
            pty = self.parse_type()
            params.append(ast.Param(pname, pty, mutable))
            if not self._eat(T.COMMA):
                break
        self._expect(T.RPAREN)
        ret: Ty | None = None
        if self._eat(T.ARROW):
            ret = self.parse_type()
        body = self.parse_block()
        return ast.FnItem(name, params, ret, body, is_unsafe, span=start)

    # ------------------------------------------------------------------
    # Types

    def parse_type(self) -> Ty:
        tok = self._peek()
        if tok.kind is T.AMP:
            self._advance()
            if self._at(T.LIFETIME):
                self._advance()
            mutable = self._eat(T.KW_MUT) is not None
            return TyRef(self.parse_type(), mutable)
        if tok.kind is T.AMPAMP:  # && in type position: double reference
            self._advance()
            mutable = self._eat(T.KW_MUT) is not None
            return TyRef(TyRef(self.parse_type(), mutable), False)
        if tok.kind is T.STAR:
            self._advance()
            if self._eat(T.KW_CONST):
                return TyRawPtr(self.parse_type(), False)
            self._expect(T.KW_MUT, "const or mut after '*'")
            return TyRawPtr(self.parse_type(), True)
        if tok.kind is T.LPAREN:
            self._advance()
            if self._eat(T.RPAREN):
                return UNIT
            elems = [self.parse_type()]
            trailing_comma = False
            while self._eat(T.COMMA):
                trailing_comma = True
                if self._at(T.RPAREN):
                    break
                elems.append(self.parse_type())
            self._expect(T.RPAREN)
            if len(elems) == 1 and not trailing_comma:
                return elems[0]
            return TyTuple(tuple(elems))
        if tok.kind is T.LBRACKET:
            self._advance()
            elem = self.parse_type()
            if self._eat(T.SEMI):
                length_tok = self._expect(T.INT)
                length = _parse_int_text(length_tok.text)[0]
                self._expect(T.RBRACKET)
                return TyArray(elem, length)
            self._expect(T.RBRACKET)
            return TySlice(elem)
        if tok.kind in (T.KW_FN, T.KW_UNSAFE):
            is_unsafe = self._eat(T.KW_UNSAFE) is not None
            self._expect(T.KW_FN)
            self._expect(T.LPAREN)
            params: list[Ty] = []
            while not self._at(T.RPAREN):
                params.append(self.parse_type())
                if not self._eat(T.COMMA):
                    break
            self._expect(T.RPAREN)
            ret: Ty = UNIT
            if self._eat(T.ARROW):
                ret = self.parse_type()
            return TyFn(tuple(params), ret, is_unsafe)
        if tok.kind is T.IDENT:
            if tok.text == "_":
                self._advance()
                return INFER
            return self._parse_path_type()
        if tok.kind is T.BANG:
            self._advance()
            from .types import NEVER
            return NEVER
        raise ParseError(f"expected type, found {tok.text!r}", tok.span)

    def _parse_path_type(self) -> Ty:
        segments = [self._expect(T.IDENT).text]
        while self._at(T.COLONCOLON) and self._peek(1).kind is T.IDENT:
            self._advance()
            segments.append(self._expect(T.IDENT).text)
        name = segments[-1]
        if name in PRIMITIVES and not self._at(T.LT):
            prim = PRIMITIVES[name]
            return prim
        args: tuple[Ty, ...] = ()
        if self._eat(T.LT):
            arg_list = [self.parse_type()]
            while self._eat(T.COMMA):
                if self._at(T.GT, T.SHR, T.GE):
                    break
                arg_list.append(self.parse_type())
            self._expect_gt()
            args = tuple(arg_list)
        if name == "str":
            return TyStr()
        return TyPath(name, args)

    # ------------------------------------------------------------------
    # Blocks and statements

    def parse_block(self) -> ast.Block:
        start = self._expect(T.LBRACE).span
        stmts: list[ast.Stmt] = []
        tail: ast.Expr | None = None
        while not self._at(T.RBRACE):
            if self._eat(T.SEMI):
                continue
            if self._at(T.KW_LET):
                stmts.append(self._parse_let())
                continue
            if self._at(T.KW_FN) or (
                self._at(T.KW_UNSAFE) and self._peek(1).kind is T.KW_FN
            ):
                # Nested function items are rare; hoist them as statements is
                # not supported — corpus keeps functions at top level.
                raise ParseError("nested fn items are not supported", self._peek().span)
            expr = self.parse_expr()
            if self._eat(T.SEMI):
                stmts.append(ast.ExprStmt(expr, has_semi=True, span=expr.span))
            elif self._at(T.RBRACE):
                tail = expr
            elif _is_block_like(expr):
                stmts.append(ast.ExprStmt(expr, has_semi=False, span=expr.span))
            else:
                raise ParseError("expected ';' after expression", self._peek().span)
        self._expect(T.RBRACE)
        return ast.Block(stmts, tail, is_unsafe=False, span=start)

    def _parse_let(self) -> ast.LetStmt:
        start = self._expect(T.KW_LET).span
        mutable = self._eat(T.KW_MUT) is not None
        name = self._expect(T.IDENT).text
        ty: Ty | None = None
        if self._eat(T.COLON):
            ty = self.parse_type()
        init: ast.Expr | None = None
        if self._eat(T.EQ):
            init = self.parse_expr()
        self._expect(T.SEMI)
        return ast.LetStmt(name, mutable, ty, init, span=start)

    # ------------------------------------------------------------------
    # Expressions

    def parse_expr(self) -> ast.Expr:
        return self._parse_assign()

    def _parse_assign(self) -> ast.Expr:
        lhs = self._parse_range()
        tok = self._peek()
        if tok.kind is T.EQ:
            self._advance()
            value = self._parse_assign()
            return ast.Assign(lhs, value, span=lhs.span)
        if tok.kind in _COMPOUND_OPS:
            op = _COMPOUND_OPS[tok.kind]
            self._advance()
            value = self._parse_assign()
            return ast.CompoundAssign(op, lhs, value, span=lhs.span)
        return lhs

    def _parse_range(self) -> ast.Expr:
        if self._at(T.DOTDOT, T.DOTDOTEQ):
            inclusive = self._advance().kind is T.DOTDOTEQ
            hi = None if self._at_range_end() else self._parse_binary(1)
            return ast.RangeExpr(None, hi, inclusive)
        lo = self._parse_binary(1)
        if self._at(T.DOTDOT, T.DOTDOTEQ):
            inclusive = self._advance().kind is T.DOTDOTEQ
            hi = None if self._at_range_end() else self._parse_binary(1)
            return ast.RangeExpr(lo, hi, inclusive, span=lo.span)
        return lo

    def _at_range_end(self) -> bool:
        return self._at(T.RBRACE, T.RPAREN, T.RBRACKET, T.SEMI, T.COMMA, T.LBRACE, T.EOF)

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self._parse_cast()
        while True:
            tok = self._peek()
            op = _BINOP_TOKENS.get(tok.kind)
            if op is None or _BINOP_PREC[op] < min_prec:
                return lhs
            # `<` can begin a generic-arg list only in paths, which are handled
            # during primary parsing, so here it is always comparison.
            self._advance()
            rhs = self._parse_binary(_BINOP_PREC[op] + 1)
            lhs = ast.Binary(op, lhs, rhs, span=lhs.span)

    def _parse_cast(self) -> ast.Expr:
        expr = self._parse_unary()
        while self._at(T.KW_AS):
            self._advance()
            ty = self.parse_type()
            expr = ast.Cast(expr, ty, span=expr.span)
        return expr

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is T.MINUS:
            self._advance()
            return ast.Unary("-", self._parse_unary(), span=tok.span)
        if tok.kind is T.BANG:
            self._advance()
            return ast.Unary("!", self._parse_unary(), span=tok.span)
        if tok.kind is T.STAR:
            self._advance()
            return ast.Unary("*", self._parse_unary(), span=tok.span)
        if tok.kind is T.AMP:
            self._advance()
            op = "&mut" if self._eat(T.KW_MUT) else "&"
            return ast.Unary(op, self._parse_unary(), span=tok.span)
        if tok.kind is T.AMPAMP:
            # && in expression prefix position: double reference.
            self._advance()
            op = "&mut" if self._eat(T.KW_MUT) else "&"
            inner = ast.Unary(op, self._parse_unary(), span=tok.span)
            return ast.Unary("&", inner, span=tok.span)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.kind is T.LPAREN:
                self._advance()
                args = self._parse_expr_list(T.RPAREN)
                self._expect(T.RPAREN)
                expr = ast.Call(expr, args, span=expr.span)
            elif tok.kind is T.LBRACKET:
                self._advance()
                index = self.parse_expr()
                self._expect(T.RBRACKET)
                expr = ast.Index(expr, index, span=expr.span)
            elif tok.kind is T.DOT:
                self._advance()
                member = self._advance()
                if member.kind is T.INT:
                    expr = ast.FieldAccess(expr, member.text, span=expr.span)
                    continue
                if member.kind is not T.IDENT:
                    raise ParseError("expected field or method name", member.span)
                generic_args: list[Ty] = []
                if self._at(T.COLONCOLON) and self._peek(1).kind is T.LT:
                    self._advance()
                    self._advance()
                    generic_args.append(self.parse_type())
                    while self._eat(T.COMMA):
                        generic_args.append(self.parse_type())
                    self._expect_gt()
                if self._at(T.LPAREN):
                    self._advance()
                    args = self._parse_expr_list(T.RPAREN)
                    self._expect(T.RPAREN)
                    expr = ast.MethodCall(expr, member.text, generic_args, args,
                                          span=expr.span)
                else:
                    expr = ast.FieldAccess(expr, member.text, span=expr.span)
            else:
                return expr

    def _parse_expr_list(self, terminator: T) -> list[ast.Expr]:
        args: list[ast.Expr] = []
        guard = self._no_struct_lit
        self._no_struct_lit = 0  # parenthesised contexts allow struct literals
        try:
            while not self._at(terminator):
                args.append(self.parse_expr())
                if not self._eat(T.COMMA):
                    break
        finally:
            self._no_struct_lit = guard
        return args

    # ------------------------------------------------------------------
    # Primary expressions

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        kind = tok.kind

        if kind is T.INT:
            self._advance()
            value, suffix = _parse_int_text(tok.text)
            return ast.IntLit(value, suffix, span=tok.span)
        if kind is T.KW_TRUE:
            self._advance()
            return ast.BoolLit(True, span=tok.span)
        if kind is T.KW_FALSE:
            self._advance()
            return ast.BoolLit(False, span=tok.span)
        if kind is T.STRING:
            self._advance()
            return ast.StrLit(_unescape(tok.text[1:-1]), span=tok.span)
        if kind is T.CHAR:
            self._advance()
            return ast.CharLit(_unescape(tok.text[1:-1]), span=tok.span)
        if kind is T.LPAREN:
            return self._parse_paren()
        if kind is T.LBRACKET:
            return self._parse_array()
        if kind is T.LBRACE:
            return self.parse_block()
        if kind is T.KW_UNSAFE:
            self._advance()
            block = self.parse_block()
            block.is_unsafe = True
            block.span = tok.span
            return block
        if kind is T.KW_IF:
            return self._parse_if()
        if kind is T.KW_WHILE:
            self._advance()
            cond = self._parse_no_struct(self.parse_expr)
            body = self.parse_block()
            return ast.WhileExpr(cond, body, span=tok.span)
        if kind is T.KW_LOOP:
            self._advance()
            return ast.LoopExpr(self.parse_block(), span=tok.span)
        if kind is T.KW_FOR:
            self._advance()
            var = self._expect(T.IDENT).text
            self._expect(T.KW_IN)
            iterable = self._parse_no_struct(self.parse_expr)
            body = self.parse_block()
            return ast.ForExpr(var, iterable, body, span=tok.span)
        if kind is T.KW_RETURN:
            self._advance()
            value = None
            if not self._at(T.SEMI, T.RBRACE, T.RPAREN, T.COMMA, T.EOF):
                value = self.parse_expr()
            return ast.ReturnExpr(value, span=tok.span)
        if kind is T.KW_BREAK:
            self._advance()
            value = None
            if not self._at(T.SEMI, T.RBRACE, T.EOF):
                value = self.parse_expr()
            return ast.BreakExpr(value, span=tok.span)
        if kind is T.KW_CONTINUE:
            self._advance()
            return ast.ContinueExpr(span=tok.span)
        if kind is T.KW_MOVE:
            self._advance()
            return self._parse_closure(is_move=True, span=tok.span)
        if kind in (T.PIPE, T.PIPEPIPE):
            return self._parse_closure(is_move=False, span=tok.span)
        if kind is T.IDENT:
            return self._parse_path_or_macro()
        raise ParseError(f"expected expression, found {tok.text!r}", tok.span)

    def _parse_no_struct(self, parse):
        self._no_struct_lit += 1
        try:
            return parse()
        finally:
            self._no_struct_lit -= 1

    def _parse_paren(self) -> ast.Expr:
        start = self._expect(T.LPAREN).span
        if self._eat(T.RPAREN):
            return ast.TupleLit([], span=start)
        guard = self._no_struct_lit
        self._no_struct_lit = 0
        try:
            first = self.parse_expr()
            if self._eat(T.COMMA):
                elems = [first]
                while not self._at(T.RPAREN):
                    elems.append(self.parse_expr())
                    if not self._eat(T.COMMA):
                        break
                self._expect(T.RPAREN)
                return ast.TupleLit(elems, span=start)
            self._expect(T.RPAREN)
            return first
        finally:
            self._no_struct_lit = guard

    def _parse_array(self) -> ast.Expr:
        start = self._expect(T.LBRACKET).span
        if self._eat(T.RBRACKET):
            return ast.ArrayLit([], span=start)
        guard = self._no_struct_lit
        self._no_struct_lit = 0
        try:
            first = self.parse_expr()
            if self._eat(T.SEMI):
                count = self.parse_expr()
                self._expect(T.RBRACKET)
                return ast.ArrayRepeat(first, count, span=start)
            elems = [first]
            while self._eat(T.COMMA):
                if self._at(T.RBRACKET):
                    break
                elems.append(self.parse_expr())
            self._expect(T.RBRACKET)
            return ast.ArrayLit(elems, span=start)
        finally:
            self._no_struct_lit = guard

    def _parse_if(self) -> ast.IfExpr:
        start = self._expect(T.KW_IF).span
        cond = self._parse_no_struct(self.parse_expr)
        then_block = self.parse_block()
        else_block: ast.Expr | None = None
        if self._eat(T.KW_ELSE):
            if self._at(T.KW_IF):
                else_block = self._parse_if()
            else:
                else_block = self.parse_block()
        return ast.IfExpr(cond, then_block, else_block, span=start)

    def _parse_closure(self, is_move: bool, span: Span) -> ast.Closure:
        params: list[str] = []
        if self._eat(T.PIPEPIPE):
            pass  # `||` : zero parameters
        else:
            self._expect(T.PIPE)
            while not self._at(T.PIPE):
                self._eat(T.KW_MUT)
                params.append(self._expect(T.IDENT).text)
                if self._eat(T.COLON):
                    self.parse_type()  # parameter type annotations are dropped
                if not self._eat(T.COMMA):
                    break
            self._expect(T.PIPE)
        body: ast.Expr
        if self._at(T.LBRACE):
            body = self.parse_block()
        else:
            body = self.parse_expr()
        return ast.Closure(params, body, is_move, span=span)

    def _parse_path_or_macro(self) -> ast.Expr:
        start = self._peek().span
        segments = [self._expect(T.IDENT).text]
        generic_args: list[Ty] = []
        while self._at(T.COLONCOLON):
            nxt = self._peek(1)
            if nxt.kind is T.IDENT:
                self._advance()
                segments.append(self._expect(T.IDENT).text)
            elif nxt.kind is T.LT:
                # Turbofish; may appear mid-path (`Vec::<i32>::new`).
                self._advance()
                self._advance()
                generic_args.append(self.parse_type())
                while self._eat(T.COMMA):
                    generic_args.append(self.parse_type())
                self._expect_gt()
            else:
                break

        # Macro invocation: `name!(...)` or `vec![...]`.
        if self._at(T.BANG) and len(segments) == 1 and segments[0] in _MACRO_NAMES:
            self._advance()
            if self._eat(T.LBRACKET):
                # Support the `vec![elem; count]` repeat form.
                if segments[0] == "vec" and not self._at(T.RBRACKET):
                    first = self.parse_expr()
                    if self._eat(T.SEMI):
                        count = self.parse_expr()
                        self._expect(T.RBRACKET)
                        return ast.MacroCall("vec_repeat", [first, count],
                                             span=start)
                    args = [first]
                    while self._eat(T.COMMA):
                        if self._at(T.RBRACKET):
                            break
                        args.append(self.parse_expr())
                    self._expect(T.RBRACKET)
                    return ast.MacroCall("vec", args, span=start)
                args = self._parse_expr_list(T.RBRACKET)
                self._expect(T.RBRACKET)
            elif self._eat(T.LBRACE):
                args = self._parse_expr_list(T.RBRACE)
                self._expect(T.RBRACE)
            else:
                self._expect(T.LPAREN)
                args = self._parse_expr_list(T.RPAREN)
                self._expect(T.RPAREN)
            return ast.MacroCall(segments[0], args, span=start)

        # Struct literal: `Name { field: expr, .. }` when allowed.
        if (
            self._at(T.LBRACE)
            and not self._no_struct_lit
            and len(segments) == 1
            and segments[0][0:1].isupper()
            and self._looks_like_struct_lit()
        ):
            self._advance()
            fields: list[tuple[str, ast.Expr]] = []
            while not self._at(T.RBRACE):
                fname = self._expect(T.IDENT).text
                self._expect(T.COLON)
                fields.append((fname, self.parse_expr()))
                if not self._eat(T.COMMA):
                    break
            self._expect(T.RBRACE)
            return ast.StructLit(segments[0], fields, span=start)

        return ast.PathExpr(segments, generic_args, span=start)

    def _looks_like_struct_lit(self) -> bool:
        """Disambiguate ``Name { field: ... }`` from a path followed by a block."""
        return (
            self._peek(1).kind is T.IDENT and self._peek(2).kind is T.COLON
        ) or self._peek(1).kind is T.RBRACE


def _is_block_like(expr: ast.Expr) -> bool:
    return isinstance(
        expr, (ast.Block, ast.IfExpr, ast.WhileExpr, ast.LoopExpr, ast.ForExpr)
    )


def _parse_int_text(text: str) -> tuple[int, str | None]:
    """Split an integer literal into (value, suffix)."""
    suffix = None
    body = text
    for candidate in ("i128", "u128", "isize", "usize", "i16", "u16", "i32",
                      "u32", "i64", "u64", "i8", "u8"):
        if body.endswith(candidate):
            head = body[: -len(candidate)]
            # Guard against hex digits being eaten (e.g. 0xbeef ends with 'ef'?
            # 'ef' is not a suffix, but 0x1u8: head='0x1').
            if head and (head[-1].isdigit() or head[-1] == "_" or
                         (head.startswith(("0x", "0X")) and len(head) > 2)):
                suffix = candidate
                body = head
                break
    body = body.replace("_", "")
    if body.startswith(("0x", "0X")):
        return int(body, 16), suffix
    if body.startswith(("0b", "0B")):
        return int(body, 2), suffix
    return int(body, 10), suffix


def _unescape(text: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            mapping = {"n": "\n", "t": "\t", "r": "\r", "0": "\0",
                       "\\": "\\", "'": "'", '"': '"'}
            out.append(mapping.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


@lru_cache(maxsize=512)
def _parse_program_cached(source: str) -> ast.Program:
    return Parser(source).parse_program()


def parse_program(source: str) -> ast.Program:
    """Parse a full mini-Rust source file into a :class:`Program`.

    Memoized on the source text: a repair round re-parses the same unchanged
    input many times (every engine instance, every campaign repeat), so the
    lex+parse runs once per distinct source and subsequent calls return a
    fresh :func:`~repro.lang.ast_nodes.clone` of the cached tree.  Cloning
    keeps callers isolated — agents rewrite ASTs in place, and a mutation
    must never leak into later parses — and reassigns node ids, which are
    only ever used as within-tree identities, never compared across parses
    or ordered.  Unparseable sources are not cached (``lru_cache`` does not
    memoize raised exceptions); they stay rare and cheap to re-reject.
    """
    return ast.clone(_parse_program_cached(source))


def parse_expr(source: str) -> ast.Expr:
    """Parse a single expression (used by tests and rewrite templates)."""
    parser = Parser(source)
    expr = parser.parse_expr()
    parser._expect(T.EOF)
    return expr
