"""Pretty-printer: AST back to mini-Rust source.

The repair agents rewrite ASTs; the printer regenerates canonical source so
that repaired programs can be re-parsed, diffed, stored in the knowledge base,
and shown to users. ``parse(print(ast))`` is structurally idempotent — the
property tests in ``tests/lang/test_roundtrip.py`` check this.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .types import Ty

_INDENT = "    "

# Mirrors parser precedence so we can parenthesise only where needed.
_PREC = {
    "||": 1, "&&": 2,
    "==": 3, "!=": 3, "<": 3, ">": 3, "<=": 3, ">=": 3,
    "|": 4, "^": 5, "&": 6, "<<": 7, ">>": 7,
    "+": 8, "-": 8, "*": 9, "/": 9, "%": 9,
}


class Printer:
    def __init__(self):
        self.lines: list[str] = []
        self.depth = 0

    # ------------------------------------------------------------------

    def print_program(self, program: ast.Program) -> str:
        for index, item in enumerate(program.items):
            if index:
                self._emit("")
            self._print_item(item)
        return "\n".join(self.lines) + "\n"

    def _emit(self, text: str) -> None:
        self.lines.append(_INDENT * self.depth + text if text else "")

    # ------------------------------------------------------------------
    # Items

    def _print_item(self, item: ast.Item) -> None:
        if isinstance(item, ast.FnItem):
            header = "unsafe fn" if item.is_unsafe else "fn"
            params = ", ".join(
                f"{'mut ' if p.mutable else ''}{p.name}: {p.ty}" for p in item.params
            )
            ret = f" -> {item.ret}" if item.ret is not None else ""
            self._emit(f"{header} {item.name}({params}){ret} {{")
            self._print_block_body(item.body)
            self._emit("}")
        elif isinstance(item, ast.StaticItem):
            mut = "mut " if item.mutable else ""
            self._emit(f"static {mut}{item.name}: {item.ty} = {self.expr(item.init)};")
        elif isinstance(item, ast.ConstItem):
            self._emit(f"const {item.name}: {item.ty} = {self.expr(item.init)};")
        elif isinstance(item, ast.StructItem):
            self._emit(f"struct {item.name} {{")
            self.depth += 1
            for fname, fty in item.fields:
                self._emit(f"{fname}: {fty},")
            self.depth -= 1
            self._emit("}")
        elif isinstance(item, ast.UnionItem):
            self._emit(f"union {item.name} {{")
            self.depth += 1
            for fname, fty in item.fields:
                self._emit(f"{fname}: {fty},")
            self.depth -= 1
            self._emit("}")
        elif isinstance(item, ast.UseItem):
            self._emit(f"use {item.path};")
        else:  # pragma: no cover - exhaustive over Item kinds
            raise TypeError(f"unknown item {type(item).__name__}")

    # ------------------------------------------------------------------
    # Statements / blocks

    def _print_block_body(self, block: ast.Block) -> None:
        self.depth += 1
        for stmt in block.stmts:
            self._print_stmt(stmt)
        if block.tail is not None:
            self._emit(self.expr(block.tail))
        self.depth -= 1

    def _print_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.LetStmt):
            mut = "mut " if stmt.mutable else ""
            ty = f": {stmt.ty}" if stmt.ty is not None else ""
            init = f" = {self.expr(stmt.init)}" if stmt.init is not None else ""
            self._emit(f"let {mut}{stmt.name}{ty}{init};")
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, (ast.IfExpr, ast.WhileExpr, ast.LoopExpr,
                                      ast.ForExpr, ast.Block)):
                self._print_block_expr_stmt(stmt.expr)
            else:
                semi = ";" if stmt.has_semi else ""
                self._emit(self.expr(stmt.expr) + semi)
        else:  # pragma: no cover
            raise TypeError(f"unknown stmt {type(stmt).__name__}")

    def _print_block_expr_stmt(self, expr: ast.Expr) -> None:
        """Multi-line rendering for block-like expressions in stmt position."""
        if isinstance(expr, ast.Block):
            self._emit("unsafe {" if expr.is_unsafe else "{")
            self._print_block_body(expr)
            self._emit("}")
        elif isinstance(expr, ast.IfExpr):
            self._print_if(expr)
        elif isinstance(expr, ast.WhileExpr):
            self._emit(f"while {self.expr(expr.cond)} {{")
            self._print_block_body(expr.body)
            self._emit("}")
        elif isinstance(expr, ast.LoopExpr):
            self._emit("loop {")
            self._print_block_body(expr.body)
            self._emit("}")
        elif isinstance(expr, ast.ForExpr):
            self._emit(f"for {expr.var} in {self.expr(expr.iterable)} {{")
            self._print_block_body(expr.body)
            self._emit("}")

    def _print_if(self, expr: ast.IfExpr) -> None:
        self._emit(f"if {self.expr(expr.cond)} {{")
        self._print_block_body(expr.then_block)
        node = expr.else_block
        while node is not None:
            if isinstance(node, ast.IfExpr):
                self._emit(f"}} else if {self.expr(node.cond)} {{")
                self._print_block_body(node.then_block)
                node = node.else_block
            else:
                self._emit("} else {")
                self._print_block_body(node)  # type: ignore[arg-type]
                node = None
                break
        self._emit("}")

    # ------------------------------------------------------------------
    # Expressions (single-line form)

    _CAST_PREC = 10

    def expr(self, e: ast.Expr, prec: int = 0) -> str:
        text = self._expr_inner(e)
        if isinstance(e, ast.Binary) and _PREC[e.op] < prec:
            return f"({text})"
        if isinstance(e, ast.Cast) and prec > self._CAST_PREC:
            return f"({text})"
        if isinstance(e, (ast.Assign, ast.CompoundAssign, ast.RangeExpr)) and prec > 0:
            return f"({text})"
        return text

    def _expr_inner(self, e: ast.Expr) -> str:
        if isinstance(e, ast.IntLit):
            return f"{e.value}{e.suffix or ''}"
        if isinstance(e, ast.BoolLit):
            return "true" if e.value else "false"
        if isinstance(e, ast.CharLit):
            return f"'{_escape(e.value)}'"
        if isinstance(e, ast.StrLit):
            return f'"{_escape(e.value)}"'
        if isinstance(e, ast.PathExpr):
            path = "::".join(e.segments)
            if e.generic_args:
                args = ", ".join(str(t) for t in e.generic_args)
                return f"{path}::<{args}>"
            return path
        if isinstance(e, ast.Unary):
            inner = self.expr(e.operand, prec=100)
            if e.op == "&mut":
                return f"&mut {inner}"
            return f"{e.op}{inner}"
        if isinstance(e, ast.Binary):
            prec = _PREC[e.op]
            left = self.expr(e.left, prec)
            right = self.expr(e.right, prec + 1)
            return f"{left} {e.op} {right}"
        if isinstance(e, ast.Assign):
            return f"{self.expr(e.target)} = {self.expr(e.value)}"
        if isinstance(e, ast.CompoundAssign):
            return f"{self.expr(e.target)} {e.op}= {self.expr(e.value)}"
        if isinstance(e, ast.Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{self.expr(e.func, prec=100)}({args})"
        if isinstance(e, ast.MethodCall):
            recv = self.expr(e.receiver, prec=100)
            generics = ""
            if e.generic_args:
                generics = "::<" + ", ".join(str(t) for t in e.generic_args) + ">"
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{recv}.{e.method}{generics}({args})"
        if isinstance(e, ast.FieldAccess):
            return f"{self.expr(e.obj, prec=100)}.{e.field}"
        if isinstance(e, ast.Index):
            return f"{self.expr(e.obj, prec=100)}[{self.expr(e.index)}]"
        if isinstance(e, ast.Cast):
            # `as` chains without parens; arithmetic operands need them.
            return f"{self.expr(e.expr, prec=self._CAST_PREC)} as {e.ty}"
        if isinstance(e, ast.Block):
            return self._inline_block(e)
        if isinstance(e, ast.IfExpr):
            return self._inline_if(e)
        if isinstance(e, ast.WhileExpr):
            return f"while {self.expr(e.cond)} {self._inline_block(e.body)}"
        if isinstance(e, ast.LoopExpr):
            return f"loop {self._inline_block(e.body)}"
        if isinstance(e, ast.ForExpr):
            return f"for {e.var} in {self.expr(e.iterable)} {self._inline_block(e.body)}"
        if isinstance(e, ast.RangeExpr):
            lo = self.expr(e.lo, prec=4) if e.lo is not None else ""
            hi = self.expr(e.hi, prec=4) if e.hi is not None else ""
            dots = "..=" if e.inclusive else ".."
            return f"{lo}{dots}{hi}"
        if isinstance(e, ast.TupleLit):
            if not e.elems:
                return "()"
            if len(e.elems) == 1:
                return f"({self.expr(e.elems[0])},)"
            return "(" + ", ".join(self.expr(x) for x in e.elems) + ")"
        if isinstance(e, ast.ArrayLit):
            return "[" + ", ".join(self.expr(x) for x in e.elems) + "]"
        if isinstance(e, ast.ArrayRepeat):
            return f"[{self.expr(e.elem)}; {self.expr(e.count)}]"
        if isinstance(e, ast.StructLit):
            fields = ", ".join(f"{n}: {self.expr(v)}" for n, v in e.fields)
            return f"{e.name} {{ {fields} }}"
        if isinstance(e, ast.MacroCall):
            if e.name == "vec_repeat":
                return f"vec![{self.expr(e.args[0])}; {self.expr(e.args[1])}]"
            args = ", ".join(self.expr(a) for a in e.args)
            if e.name == "vec":
                return f"vec![{args}]"
            return f"{e.name}!({args})"
        if isinstance(e, ast.Closure):
            move = "move " if e.is_move else ""
            params = ", ".join(e.params)
            body = (self._inline_block(e.body) if isinstance(e.body, ast.Block)
                    else self.expr(e.body))
            return f"{move}|{params}| {body}"
        if isinstance(e, ast.ReturnExpr):
            return f"return {self.expr(e.value)}" if e.value else "return"
        if isinstance(e, ast.BreakExpr):
            return f"break {self.expr(e.value)}" if e.value else "break"
        if isinstance(e, ast.ContinueExpr):
            return "continue"
        raise TypeError(f"unknown expr {type(e).__name__}")  # pragma: no cover

    def _inline_block(self, block: ast.Block) -> str:
        """Render a block on multiple lines, re-using the statement printer."""
        saved_lines, saved_depth = self.lines, self.depth
        self.lines = []
        self.depth = 1
        for stmt in block.stmts:
            self._print_stmt(stmt)
        if block.tail is not None:
            self._emit(self.expr(block.tail))
        inner = self.lines
        self.lines, self.depth = saved_lines, saved_depth

        prefix = "unsafe {" if block.is_unsafe else "{"
        if not inner:
            return prefix + " }"
        if len(inner) == 1 and block.tail is not None and not block.stmts:
            return f"{prefix} {inner[0].strip()} }}"
        pad = _INDENT * self.depth
        body = "\n".join(pad + line for line in inner)
        return f"{prefix}\n{body}\n{pad}}}"

    def _inline_if(self, e: ast.IfExpr) -> str:
        text = f"if {self.expr(e.cond)} {self._inline_block(e.then_block)}"
        if e.else_block is not None:
            if isinstance(e.else_block, ast.IfExpr):
                text += f" else {self._inline_if(e.else_block)}"
            else:
                text += f" else {self._inline_block(e.else_block)}"  # type: ignore[arg-type]
        return text


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        .replace("\t", "\\t").replace("\r", "\\r").replace("\0", "\\0")
    )


def print_program(program: ast.Program) -> str:
    """Render a full program to source text."""
    return Printer().print_program(program)


def print_expr(expr: ast.Expr) -> str:
    """Render a single expression (single-line where possible)."""
    return Printer().expr(expr)


def print_type(ty: Ty) -> str:
    return str(ty)
