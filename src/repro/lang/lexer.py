"""Tokenizer for the mini-Rust subset.

The lexer is a hand-written scanner producing a flat :class:`Token` stream.
It recognises exactly the surface syntax the UB corpus needs: identifiers,
integer/char/string literals (with type suffixes), the keyword set from
:mod:`repro.lang.tokens`, line and block comments, and all multi-character
operators used in real Rust code (``::``, ``->``, ``..=``, shifts, compound
assignments, ...).
"""

from __future__ import annotations

from .span import Span
from .tokens import INT_SUFFIXES, KEYWORDS, Token, TokenKind


class LexError(Exception):
    """Raised when the scanner meets a character it cannot tokenize."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{message} at {line}:{col}")
        self.message = message
        self.line = line
        self.col = col

    def render(self, source: str) -> str:
        """Caret snippet pointing at the unlexable character."""
        from .span import Span, render_snippet
        span = Span(0, 0, self.line, self.col)
        return f"error: {self.message}\n" + render_snippet(source, span)


# Multi-character punctuation, longest-first so maximal munch works.
_PUNCT = [
    ("..=", TokenKind.DOTDOTEQ),
    ("<<=", TokenKind.SHLEQ),
    (">>=", TokenKind.SHREQ),
    ("::", TokenKind.COLONCOLON),
    ("->", TokenKind.ARROW),
    ("=>", TokenKind.FATARROW),
    ("..", TokenKind.DOTDOT),
    ("&&", TokenKind.AMPAMP),
    ("||", TokenKind.PIPEPIPE),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("==", TokenKind.EQEQ),
    ("!=", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("+=", TokenKind.PLUSEQ),
    ("-=", TokenKind.MINUSEQ),
    ("*=", TokenKind.STAREQ),
    ("/=", TokenKind.SLASHEQ),
    ("%=", TokenKind.PERCENTEQ),
    ("^=", TokenKind.CARETEQ),
    ("&=", TokenKind.AMPEQ),
    ("|=", TokenKind.PIPEEQ),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (",", TokenKind.COMMA),
    (";", TokenKind.SEMI),
    (":", TokenKind.COLON),
    (".", TokenKind.DOT),
    ("#", TokenKind.HASH),
    ("!", TokenKind.BANG),
    ("?", TokenKind.QUESTION),
    ("@", TokenKind.AT),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("^", TokenKind.CARET),
    ("&", TokenKind.AMP),
    ("|", TokenKind.PIPE),
    ("=", TokenKind.EQ),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
]


class Lexer:
    """Scans mini-Rust source text into a token list."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(self._make(TokenKind.EOF, ""))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------
    # Scanning helpers

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return text

    def _make(self, kind: TokenKind, text: str, start: int | None = None,
              line: int | None = None, col: int | None = None) -> Token:
        begin = self.pos if start is None else start
        span = Span(begin, begin + len(text),
                    self.line if line is None else line,
                    self.col if col is None else col)
        return Token(kind, text, span)

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                depth = 1
                while self.pos < len(self.source) and depth:
                    if self._peek() == "/" and self._peek(1) == "*":
                        depth += 1
                        self._advance(2)
                    elif self._peek() == "*" and self._peek(1) == "/":
                        depth -= 1
                        self._advance(2)
                    else:
                        self._advance()
            else:
                return

    # ------------------------------------------------------------------
    # Token production

    def _next_token(self) -> Token:
        start, line, col = self.pos, self.line, self.col
        ch = self._peek()

        if ch.isdigit():
            return self._lex_number(start, line, col)
        if ch.isalpha() or ch == "_":
            return self._lex_ident(start, line, col)
        if ch == '"':
            return self._lex_string(start, line, col)
        if ch == "'":
            return self._lex_char_or_lifetime(start, line, col)

        for text, kind in _PUNCT:
            if self.source.startswith(text, self.pos):
                self._advance(len(text))
                return Token(kind, text, Span(start, self.pos, line, col))

        raise LexError(f"unexpected character {ch!r}", line, col)

    def _lex_number(self, start: int, line: int, col: int) -> Token:
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek().isalnum() or self._peek() == "_":
                if self._peek() not in "_0123456789abcdefABCDEF":
                    break
                self._advance()
        elif self._peek() == "0" and self._peek(1) in ("b", "B"):
            self._advance(2)
            while self._peek() and self._peek() in "01_":
                self._advance()
        else:
            while self._peek().isdigit() or self._peek() == "_":
                self._advance()
        # Optional type suffix, e.g. `4usize`, `0xffu8`.
        for suffix in INT_SUFFIXES:
            if self.source.startswith(suffix, self.pos):
                after = self.pos + len(suffix)
                nxt = self.source[after] if after < len(self.source) else ""
                if not (nxt.isalnum() or nxt == "_"):
                    self._advance(len(suffix))
                    break
        text = self.source[start : self.pos]
        return Token(TokenKind.INT, text, Span(start, self.pos, line, col))

    def _lex_ident(self, start: int, line: int, col: int) -> Token:
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, Span(start, self.pos, line, col))

    def _lex_string(self, start: int, line: int, col: int) -> Token:
        self._advance()  # opening quote
        while True:
            ch = self._peek()
            if not ch:
                raise LexError("unterminated string literal", line, col)
            if ch == "\\":
                self._advance(2)
                continue
            if ch == '"':
                self._advance()
                break
            self._advance()
        text = self.source[start : self.pos]
        return Token(TokenKind.STRING, text, Span(start, self.pos, line, col))

    def _lex_char_or_lifetime(self, start: int, line: int, col: int) -> Token:
        # Either a char literal `'a'` (with escapes) or a lifetime `'static`.
        self._advance()  # opening quote
        if self._peek() == "\\":
            self._advance(2)
            if self._peek() != "'":
                raise LexError("unterminated char literal", line, col)
            self._advance()
            kind = TokenKind.CHAR
        elif self._peek(1) == "'":
            self._advance(2)
            kind = TokenKind.CHAR
        else:
            # Lifetime: consume identifier characters.
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            kind = TokenKind.LIFETIME
        text = self.source[start : self.pos]
        return Token(kind, text, Span(start, self.pos, line, col))


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper around :class:`Lexer`."""
    return Lexer(source).tokenize()
