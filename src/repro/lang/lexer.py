"""Tokenizer for the mini-Rust subset.

The lexer is a hand-written scanner producing a flat :class:`Token` stream.
It recognises exactly the surface syntax the UB corpus needs: identifiers,
integer/char/string literals (with type suffixes), the keyword set from
:mod:`repro.lang.tokens`, line and block comments, and all multi-character
operators used in real Rust code (``::``, ``->``, ``..=``, shifts, compound
assignments, ...).

The scanner body is a single loop over local variables rather than
per-character helper methods: tokenization sits under every parse,
fingerprint, and bytecode compile, so the campaign cold path is directly
proportional to this loop.
"""

from __future__ import annotations

from .span import Span
from .tokens import INT_SUFFIXES, KEYWORDS, Token, TokenKind


class LexError(Exception):
    """Raised when the scanner meets a character it cannot tokenize."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{message} at {line}:{col}")
        self.message = message
        self.line = line
        self.col = col

    def render(self, source: str) -> str:
        """Caret snippet pointing at the unlexable character."""
        from .span import Span, render_snippet
        span = Span(0, 0, self.line, self.col)
        return f"error: {self.message}\n" + render_snippet(source, span)


# Multi-character punctuation, longest-first so maximal munch works.
_PUNCT = [
    ("..=", TokenKind.DOTDOTEQ),
    ("<<=", TokenKind.SHLEQ),
    (">>=", TokenKind.SHREQ),
    ("::", TokenKind.COLONCOLON),
    ("->", TokenKind.ARROW),
    ("=>", TokenKind.FATARROW),
    ("..", TokenKind.DOTDOT),
    ("&&", TokenKind.AMPAMP),
    ("||", TokenKind.PIPEPIPE),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("==", TokenKind.EQEQ),
    ("!=", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("+=", TokenKind.PLUSEQ),
    ("-=", TokenKind.MINUSEQ),
    ("*=", TokenKind.STAREQ),
    ("/=", TokenKind.SLASHEQ),
    ("%=", TokenKind.PERCENTEQ),
    ("^=", TokenKind.CARETEQ),
    ("&=", TokenKind.AMPEQ),
    ("|=", TokenKind.PIPEEQ),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (",", TokenKind.COMMA),
    (";", TokenKind.SEMI),
    (":", TokenKind.COLON),
    (".", TokenKind.DOT),
    ("#", TokenKind.HASH),
    ("!", TokenKind.BANG),
    ("?", TokenKind.QUESTION),
    ("@", TokenKind.AT),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("^", TokenKind.CARET),
    ("&", TokenKind.AMP),
    ("|", TokenKind.PIPE),
    ("=", TokenKind.EQ),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
]

# Length-bucketed views of _PUNCT so the scanner does three dict probes
# instead of a 47-entry linear scan per operator token.
_PUNCT3 = {text: kind for text, kind in _PUNCT if len(text) == 3}
_PUNCT2 = {text: kind for text, kind in _PUNCT if len(text) == 2}
_PUNCT1 = {text: kind for text, kind in _PUNCT if len(text) == 1}

_HEX_DIGITS = set("_0123456789abcdefABCDEF")
_IDENT_START = set("_abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")
_DIGITS_CONT = _DIGITS | {"_"}
_WS = set(" \t\r\n")


class Lexer:
    """Scans mini-Rust source text into a token list."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def tokenize(self) -> list[Token]:
        source = self.source
        n = len(source)
        pos = self.pos
        line = self.line
        col = self.col
        tokens: list[Token] = []
        append = tokens.append
        ident_cont = _IDENT_CONT
        digits_cont = _DIGITS_CONT

        while True:
            # -- trivia: whitespace, line comments, nested block comments
            while pos < n:
                ch = source[pos]
                if ch in _WS:
                    if ch == "\n":
                        line += 1
                        col = 1
                    else:
                        col += 1
                    pos += 1
                elif ch == "/" and source.startswith("//", pos):
                    stop = source.find("\n", pos)
                    if stop == -1:
                        stop = n
                    col += stop - pos
                    pos = stop
                elif ch == "/" and source.startswith("/*", pos):
                    depth = 1
                    i = pos + 2
                    while i < n and depth:
                        if source.startswith("/*", i):
                            depth += 1
                            i += 2
                        elif source.startswith("*/", i):
                            depth -= 1
                            i += 2
                        else:
                            i += 1
                    newlines = source.count("\n", pos, i)
                    if newlines:
                        line += newlines
                        col = i - source.rfind("\n", pos, i)
                    else:
                        col += i - pos
                    pos = i
                else:
                    break

            if pos >= n:
                append(Token(TokenKind.EOF, "", Span(pos, pos, line, col)))
                self.pos, self.line, self.col = pos, line, col
                return tokens

            start, tok_line, tok_col = pos, line, col
            ch = source[pos]

            if ch in _IDENT_START:
                i = pos + 1
                while i < n and source[i] in ident_cont:
                    i += 1
                text = source[start:i]
                kind = KEYWORDS.get(text, TokenKind.IDENT)
                append(Token(kind, text, Span(start, i, tok_line, tok_col)))
                col += i - start
                pos = i
                continue

            if ch in _DIGITS:
                if ch == "0" and source.startswith(("0x", "0X"), pos):
                    i = pos + 2
                    while i < n and source[i] in _HEX_DIGITS:
                        i += 1
                elif ch == "0" and source.startswith(("0b", "0B"), pos):
                    i = pos + 2
                    while i < n and source[i] in "01_":
                        i += 1
                else:
                    i = pos + 1
                    while i < n and source[i] in digits_cont:
                        i += 1
                # Optional type suffix, e.g. `4usize`, `0xffu8`.
                for suffix in INT_SUFFIXES:
                    if source.startswith(suffix, i):
                        after = i + len(suffix)
                        if after >= n or source[after] not in ident_cont:
                            i = after
                            break
                text = source[start:i]
                append(Token(TokenKind.INT, text,
                             Span(start, i, tok_line, tok_col)))
                col += i - start
                pos = i
                continue

            if ch == '"':
                i = pos + 1
                while True:
                    if i >= n:
                        raise LexError("unterminated string literal",
                                       tok_line, tok_col)
                    c = source[i]
                    if c == "\\":
                        i += 2
                    elif c == '"':
                        i += 1
                        break
                    else:
                        i += 1
                text = source[start:i]
                append(Token(TokenKind.STRING, text,
                             Span(start, i, tok_line, tok_col)))
                newlines = source.count("\n", start, i)
                if newlines:
                    line += newlines
                    col = i - source.rfind("\n", start, i)
                else:
                    col += i - start
                pos = i
                continue

            if ch == "'":
                # Either a char literal `'a'` (with escapes) or a lifetime
                # `'static`.
                i = pos + 1
                nxt = source[i] if i < n else ""
                if nxt == "\\":
                    i += 2
                    if i >= n or source[i] != "'":
                        raise LexError("unterminated char literal",
                                       tok_line, tok_col)
                    i += 1
                    kind = TokenKind.CHAR
                elif i + 1 < n and source[i + 1] == "'":
                    i += 2
                    kind = TokenKind.CHAR
                else:
                    while i < n and source[i] in ident_cont:
                        i += 1
                    kind = TokenKind.LIFETIME
                text = source[start:i]
                append(Token(kind, text, Span(start, i, tok_line, tok_col)))
                newlines = source.count("\n", start, i)
                if newlines:
                    line += newlines
                    col = i - source.rfind("\n", start, i)
                else:
                    col += i - start
                pos = i
                continue

            kind = _PUNCT3.get(source[pos:pos + 3])
            if kind is not None:
                width = 3
            else:
                kind = _PUNCT2.get(source[pos:pos + 2])
                if kind is not None:
                    width = 2
                else:
                    kind = _PUNCT1.get(ch)
                    if kind is None:
                        raise LexError(f"unexpected character {ch!r}",
                                       line, col)
                    width = 1
            i = pos + width
            append(Token(kind, source[start:i],
                         Span(start, i, tok_line, tok_col)))
            col += width
            pos = i


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper around :class:`Lexer`."""
    return Lexer(source).tokenize()
