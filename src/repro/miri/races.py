"""Happens-before data-race detection with vector clocks.

The interpreter runs spawned threads eagerly at their spawn point, each in
its own thread context with its own vector clock. Race detection does not
require true interleaving: two accesses race iff they touch overlapping bytes,
at least one is a write, and neither happens-before the other — which is a
property of the spawn/join/lock edges alone (FastTrack-style).

Happens-before edges modelled: spawn (parent → child start), join (child end
→ parent), mutex release → subsequent acquire, atomic store → atomic load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.span import DUMMY_SPAN, Span
from .errors import MiriError, UbKind


class VectorClock:
    """A mapping thread-id → logical time, with pointwise ordering."""

    __slots__ = ("times",)

    def __init__(self, times: dict[int, int] | None = None):
        self.times = dict(times or {})

    def copy(self) -> "VectorClock":
        return VectorClock(self.times)

    def get(self, tid: int) -> int:
        return self.times.get(tid, 0)

    def tick(self, tid: int) -> None:
        self.times[tid] = self.get(tid) + 1

    def join(self, other: "VectorClock") -> None:
        for tid, time in other.times.items():
            if time > self.get(tid):
                self.times[tid] = time

    def dominates(self, tid: int, time: int) -> bool:
        """True when event (tid, time) happens-before this clock."""
        return self.get(tid) >= time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VC{self.times}"


@dataclass
class AccessRecord:
    """Last write plus all reads-since-last-write for one byte."""

    write: tuple[int, int, Span] | None = None  # (tid, time, span)
    reads: dict[int, tuple[int, Span]] = field(default_factory=dict)


class RaceError(Exception):
    def __init__(self, error: MiriError):
        super().__init__(error.message)
        self.error = error


class RaceDetector:
    """Tracks per-(allocation, byte) access history and thread clocks."""

    def __init__(self):
        self.clocks: dict[int, VectorClock] = {0: VectorClock({0: 1})}
        #: (alloc_id, offset) → AccessRecord
        self.history: dict[tuple[int, int], AccessRecord] = {}
        #: mutex/atomic id → release clock
        self.sync_clocks: dict[int, VectorClock] = {}
        self._next_tid = 1

    # ------------------------------------------------------------------
    # Thread lifecycle

    def spawn(self, parent_tid: int) -> int:
        child = self._next_tid
        self._next_tid += 1
        parent_clock = self.clocks[parent_tid]
        child_clock = parent_clock.copy()
        child_clock.tick(child)
        self.clocks[child] = child_clock
        parent_clock.tick(parent_tid)
        return child

    def join(self, parent_tid: int, child_tid: int) -> None:
        self.clocks[parent_tid].join(self.clocks[child_tid])
        self.clocks[parent_tid].tick(parent_tid)

    # ------------------------------------------------------------------
    # Synchronisation objects (mutexes, atomics)

    def acquire(self, tid: int, sync_id: int) -> None:
        clock = self.sync_clocks.get(sync_id)
        if clock is not None:
            self.clocks[tid].join(clock)
        self.clocks[tid].tick(tid)

    def release(self, tid: int, sync_id: int) -> None:
        self.sync_clocks[sync_id] = self.clocks[tid].copy()
        self.clocks[tid].tick(tid)

    # ------------------------------------------------------------------
    # Data accesses

    def _record(self, alloc_id: int, offset: int) -> AccessRecord:
        key = (alloc_id, offset)
        record = self.history.get(key)
        if record is None:
            record = AccessRecord()
            self.history[key] = record
        return record

    def on_read(self, tid: int, alloc_id: int, offset: int, size: int,
                span: Span = DUMMY_SPAN) -> None:
        if self._next_tid == 1:
            # No thread has ever been spawned: every access so far is on
            # thread 0, and anything a future child does is ordered after
            # them by the spawn edge (the child clock inherits the parent's
            # at spawn time), so neither checks nor history are observable.
            return
        clock = self.clocks[tid]
        for byte in range(offset, offset + size):
            record = self._record(alloc_id, byte)
            if record.write is not None:
                wtid, wtime, wspan = record.write
                if wtid != tid and not clock.dominates(wtid, wtime):
                    raise RaceError(MiriError(
                        UbKind.DATA_RACE,
                        f"Data race detected between a read on thread {tid} "
                        f"and a write on thread {wtid} (unsynchronized "
                        f"accesses to the same location)",
                        span,
                    ))
            record.reads[tid] = (clock.get(tid), span)

    def on_write(self, tid: int, alloc_id: int, offset: int, size: int,
                 span: Span = DUMMY_SPAN) -> None:
        if self._next_tid == 1:
            # Same single-threaded fast path as on_read.
            return
        clock = self.clocks[tid]
        for byte in range(offset, offset + size):
            record = self._record(alloc_id, byte)
            if record.write is not None:
                wtid, wtime, _ = record.write
                if wtid != tid and not clock.dominates(wtid, wtime):
                    raise RaceError(MiriError(
                        UbKind.DATA_RACE,
                        f"Data race detected between a write on thread {tid} "
                        f"and a write on thread {wtid} (unsynchronized "
                        f"accesses to the same location)",
                        span,
                    ))
            for rtid, (rtime, _) in record.reads.items():
                if rtid != tid and not clock.dominates(rtid, rtime):
                    raise RaceError(MiriError(
                        UbKind.DATA_RACE,
                        f"Data race detected between a write on thread {tid} "
                        f"and a read on thread {rtid} (unsynchronized "
                        f"accesses to the same location)",
                        span,
                    ))
            record.write = (tid, clock.get(tid), span)
            record.reads = {}
