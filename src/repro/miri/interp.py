"""Tree-walking abstract interpreter with UB detection.

Executes a parsed mini-Rust program against the byte-level memory model.
Every load/store goes through the provenance / liveness / bounds / alignment
/ stacked-borrows / data-race checks in :mod:`repro.miri.memory`, so the UB
classes the paper's dataset exercises are *detected*, not pattern-matched.

Unsafe-context enforcement (the analogue of rustc's E0133) happens here
dynamically: dereferencing a raw pointer, calling an unsafe function, touching
a ``static mut``, or reading a union field outside an ``unsafe`` scope raises
a :class:`CompileError` — exactly what a hallucinated repair that deletes an
``unsafe`` block should run into.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

from ..lang import ast_nodes as ast
from ..lang import types as ty
from ..lang.span import DUMMY_SPAN, Span
from .borrows import BorrowError, reset_tags
from .errors import (
    CompileError,
    InterpUnsupported,
    MiriError,
    MiriReport,
    PanicSignal,
    UbKind,
    UbSignal,
)
from .memory import AllocKind, Memory
from .shims import (
    CALL_SHIMS,
    INT_METHODS,
    MAYBE_UNINIT_METHODS,
    OPTION_METHODS,
    PTR_METHODS,
    VEC_METHODS,
    method_handle_join,
    normalize_path,
)
from .values import (
    UNIT_VALUE,
    VAggregate,
    VBool,
    VChar,
    VFnPtr,
    VInt,
    VLayout,
    VMutexGuard,
    VMutexRef,
    VOption,
    VPtr,
    VRangeIter,
    VStr,
    VThreadHandle,
    VUninit,
    VUnit,
    Value,
)

DEFAULT_FUEL = 1_000_000

#: Explicit interpreter call-depth ceiling (user fns, closures, spawned
#: thread bodies).  The tree-walker and the bytecode VM consume very
#: different numbers of *Python* frames per interpreted call, so relying
#: on ``sys.getrecursionlimit()`` would make "stack overflow" fire at
#: engine-dependent interpreted depths (and step counts).  An explicit
#: counter raises :class:`RecursionError` at the identical interpreted
#: depth under both engines; the ceiling is low enough that the
#: tree-walker hits it before CPython's own limit does.
MAX_CALL_DEPTH = 56

_UNSAFE_SHIMS = {
    "mem::transmute", "transmute", "mem::zeroed", "zeroed",
    "ptr::read", "ptr::write", "ptr::copy", "ptr::copy_nonoverlapping",
    "alloc::alloc", "alloc", "alloc::alloc_zeroed", "alloc_zeroed",
    "alloc::dealloc", "dealloc", "Box::from_raw",
}

_UNSAFE_PTR_METHODS = {"offset", "add", "sub", "read", "write",
                       "read_unaligned", "write_unaligned"}
_UNSAFE_VEC_METHODS = {"get_unchecked", "get_unchecked_mut", "set_len"}
_UNSAFE_MU_METHODS = {"assume_init"}


class FuelExhausted(Exception):
    pass


class _Break(Exception):
    def __init__(self, value: Value):
        self.value = value


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Value):
        self.value = value


class _CollectAbort(Exception):
    """Stop error-collection mode (duplicate or too many errors)."""


@dataclass
class Local:
    alloc_id: int
    ty: ty.Ty
    mutable: bool


class Env:
    """Lexical scope chain mapping names to stack locals."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: "Env | None" = None):
        self.vars: dict[str, Local] = {}
        self.parent = parent

    def lookup(self, name: str) -> Local | None:
        env: Env | None = self
        while env is not None:
            local = env.vars.get(name)
            if local is not None:
                return local
            env = env.parent
        return None

    def define(self, name: str, local: Local) -> None:
        self.vars[name] = local

    def flatten(self) -> dict[str, Local]:
        merged: dict[str, Local] = {}
        chain: list[Env] = []
        env: Env | None = self
        while env is not None:
            chain.append(env)
            env = env.parent
        for scope in reversed(chain):
            merged.update(scope.vars)
        return merged


@dataclass(frozen=True)
class VUnionInit(Value):
    """A union literal: only one field is written; the rest stays uninit."""

    union_ty: ty.TyPath
    field: str
    value: Value

    def __str__(self) -> str:
        return f"{self.union_ty.name} {{ {self.field}: {self.value} }}"


@dataclass(frozen=True, eq=False)
class VClosure(Value):
    """A closure value: parameters, body AST, and its captured environment."""

    params: list[str]
    body: ast.Expr
    env: Env
    is_move: bool

    def __str__(self) -> str:
        return "<closure>"


@dataclass
class ThreadRecord:
    tid: int
    result: Value = UNIT_VALUE
    joined: bool = False


@dataclass
class MutexRecord:
    mutex_id: int
    data_ptr: VPtr
    inner_ty: ty.Ty
    locked: bool = False


#: Execution engines ``run_program`` can route to.
ENGINES = ("vm", "tree")

#: Process default, overridable per call via ``engine=`` or globally via
#: :func:`set_default_engine` / the ``REPRO_MIRI_ENGINE`` environment
#: variable (the escape hatch when triaging a suspected VM divergence).
DEFAULT_ENGINE = os.environ.get("REPRO_MIRI_ENGINE", "vm")
if DEFAULT_ENGINE not in ENGINES:  # pragma: no cover - env misconfiguration
    DEFAULT_ENGINE = "vm"


def set_default_engine(engine: str) -> str:
    """Set the process-wide default engine; returns the previous one."""
    global DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (expected one of "
                         f"{', '.join(ENGINES)})")
    previous = DEFAULT_ENGINE
    DEFAULT_ENGINE = engine
    return previous


def resolve_engine(engine: str | None) -> str:
    """Validate an ``engine=`` argument, applying the process default."""
    if engine is None:
        return DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (expected one of "
                         f"{', '.join(ENGINES)})")
    return engine


def run_program(program: ast.Program, *, fuel: int = DEFAULT_FUEL,
                collect: bool = False, max_errors: int = 8,
                debug: bool = False, engine: str | None = None,
                compiled=None) -> MiriReport:
    """Construct-and-run one interpreter over ``program``.

    The single execution point shared by :func:`repro.miri.detect_ub` and
    :func:`repro.miri.detect_ub_batch` — detector-invocation accounting
    hangs off calls to this function, so batched verification can prove it
    executes strictly fewer interpreters than one-call-per-candidate.

    ``engine`` picks the bytecode VM (``"vm"``, the default) or the
    tree-walking reference (``"tree"``); reports are byte-identical
    (gated by ``tests/miri/test_differential.py``).  ``compiled`` passes
    an already-compiled program so memoized callers skip recompilation;
    if compilation itself fails (a compiler bug, never a program
    property) the run falls back to the tree engine rather than
    misreporting.
    """
    engine = resolve_engine(engine)
    if engine == "vm":
        # Imported lazily: vm/bytecode import this module at load time.
        from .bytecode import BytecodeError, compile_program
        from .vm import VM
        if compiled is None:
            try:
                compiled = compile_program(program)
            except BytecodeError:
                compiled = None
        if compiled is not None:
            vm = VM(compiled, fuel=fuel, collect=collect,
                    max_errors=max_errors, debug=debug)
            return vm.run()
    interp = Interpreter(program, fuel=fuel, collect=collect,
                         max_errors=max_errors, debug=debug)
    return interp.run()


class Interpreter:
    """One program execution. Use :func:`repro.miri.detect_ub` normally."""

    def __init__(self, program: ast.Program, *, fuel: int = DEFAULT_FUEL,
                 collect: bool = False, max_errors: int = 8,
                 debug: bool = False):
        self.program = program
        self.debug = debug
        # Tag numbers surface in diagnostics; restart them so a program's
        # report is identical no matter what executed before it.
        reset_tags()
        self.memory = Memory()
        self.report = MiriReport()
        self.fuel = fuel
        self.collect = collect
        self.max_errors = max_errors
        self.unsafe_depth = 0
        self.globals = Env()
        self.consts: dict[str, Value] = {}
        self.threads: dict[int, ThreadRecord] = {}
        self.mutexes: dict[int, MutexRecord] = {}
        self.owned_boxes: set[int] = set()
        self.closures: dict[int, VClosure] = {}
        self._next_closure_id = 1
        self._static_mut: set[str] = set()
        self._error_keys: set[tuple[UbKind, int, int]] = set()
        self._call_depth = 0

    # ==================================================================
    # Top level

    def run(self) -> MiriReport:
        try:
            self._register_types()
            self._init_consts_and_statics()
            main = self.program.fn("main")
            if main is None:
                raise CompileError("`main` function not found")
            if main.params:
                raise CompileError("`main` must take no arguments")
            self._call_user_fn(main, [], tid=0, span=main.span)
            self._check_thread_leaks()
        except UbSignal as signal:
            self._record(signal.error)
        except PanicSignal as signal:
            self._record(signal.error)
        except CompileError as err:
            self._record(err.error)
        except InterpUnsupported as err:
            self._record(err.error)
        except _CollectAbort:
            pass
        except FuelExhausted:
            self._record(MiriError(
                UbKind.RESOURCE,
                "interpreter ran out of fuel (possible infinite loop)"))
        except RecursionError:
            self._record(MiriError(UbKind.RESOURCE, "stack overflow"))
        except (_Break, _Continue):
            self._record(MiriError(
                UbKind.COMPILE, "`break`/`continue` outside of a loop"))
        except ty.LayoutError as err:
            self._record(MiriError(UbKind.COMPILE, f"layout error: {err}"))
        except Exception as err:
            # The detector must never crash: repair agents feed it arbitrary
            # (possibly hallucinated) rewrites. In debug mode we re-raise so
            # the test suite surfaces genuine interpreter bugs.
            if self.debug:
                raise
            self._record(MiriError(
                UbKind.UNSUPPORTED,
                f"interpreter error: {type(err).__name__}: {err}"))
        return self.report

    def _record(self, error: MiriError) -> None:
        self.report.errors.append(error)

    def _record_collected(self, error: MiriError) -> None:
        key = (error.kind, error.span.line, error.span.col)
        if key in self._error_keys or len(self.report.errors) >= self.max_errors:
            raise _CollectAbort()
        self._error_keys.add(key)
        self.report.errors.append(error)

    def _burn(self, span: Span) -> None:
        self.fuel -= 1
        self.report.steps += 1
        if self.fuel <= 0:
            raise FuelExhausted()

    # ==================================================================
    # Program setup

    def _register_types(self) -> None:
        for item in self.program.items:
            if isinstance(item, ast.StructItem):
                self.memory.structs[item.name] = ty.StructLayout.for_struct(
                    item.name, item.fields, self.memory.structs)
            elif isinstance(item, ast.UnionItem):
                self.memory.structs[item.name] = ty.StructLayout.for_union(
                    item.name, item.fields, self.memory.structs)

    def _init_consts_and_statics(self) -> None:
        for item in self.program.items:
            if isinstance(item, ast.ConstItem):
                value = self._eval_item_init(item)
                self.consts[item.name] = value
            elif isinstance(item, ast.StaticItem):
                value = self._eval_item_init(item)
                static_ty = item.ty or self.type_of_value(value)
                size = ty.size_of(static_ty, self.memory.structs)
                align = ty.align_of(static_ty, self.memory.structs)
                alloc = self.memory.allocate(max(size, 1), align,
                                             AllocKind.STATIC, item.name)
                place = VPtr(alloc.id, alloc.base_addr, alloc.base_tag,
                             static_ty, mutable=True)
                if size:
                    self.write_place(place, value, tid=0, span=item.span)
                self.globals.define(item.name, Local(alloc.id, static_ty,
                                                     item.mutable))
                if item.mutable:
                    self._static_mut.add(item.name)

    def _eval_item_init(self, item) -> Value:
        """Evaluate one const/static initializer (the VM overrides this to
        run the item's compiled init code instead of walking the tree)."""
        return self.eval_expr(item.init, self.globals, tid=0)

    def _check_thread_leaks(self) -> None:
        for record in self.threads.values():
            if not record.joined:
                raise UbSignal(MiriError(
                    UbKind.CONCURRENCY,
                    "the main thread terminated without waiting for all "
                    "remaining threads (JoinHandle never joined)",
                ))

    # ==================================================================
    # Unsafe-context enforcement

    def require_unsafe(self, what: str, span: Span) -> None:
        if self.unsafe_depth == 0:
            raise CompileError(
                f"{what} is unsafe and requires an unsafe function or block "
                f"[E0133]",
                span,
            )

    # ==================================================================
    # Memory bridging

    def read_place(self, place: VPtr, tid: int, span: Span = DUMMY_SPAN) -> Value:
        place_ty = place.pointee
        if isinstance(place_ty, ty.TyUnit):
            return UNIT_VALUE
        size = ty.size_of(place_ty, self.memory.structs)
        align = ty.align_of(place_ty, self.memory.structs)
        data, relocs = self.memory.read_bytes(place, size, align, tid, span)
        if isinstance(place_ty, ty.TyPath) and place_ty.name == "Closure":
            closure = self.closures.get(int.from_bytes(data[:8], "little"))
            if closure is None:
                raise InterpUnsupported("dangling closure value", span)
            return closure
        return self.memory.decode(data, relocs, place_ty, span)

    def write_place(self, place: VPtr, value: Value, tid: int,
                    span: Span = DUMMY_SPAN) -> None:
        place_ty = place.pointee
        if isinstance(place_ty, ty.TyUnit) or isinstance(value, VUnit):
            return
        if isinstance(value, VUninit):
            size = ty.size_of(place_ty, self.memory.structs)
            align = ty.align_of(place_ty, self.memory.structs)
            self.memory.write_bytes(place, b"\x00" * size, {}, align, tid, span)
            alloc = self.memory.allocations[place.alloc_id]
            offset = place.addr - alloc.base_addr
            for index in range(size):
                alloc.init[offset + index] = 0
            return
        if isinstance(value, VClosure):
            closure_id = self._next_closure_id
            self._next_closure_id += 1
            self.closures[closure_id] = value
            data = closure_id.to_bytes(8, "little")
            self.memory.write_bytes(place, data, {}, 8, tid, span)
            return
        if isinstance(value, VUnionInit):
            # Write only the initialised field; the remaining bytes of the
            # union stay uninitialised (reading them through another field
            # is the classic `uninit` UB).
            layout = self.memory.structs[value.union_ty.name]
            field_ty = layout.type_of(value.field)
            size = ty.size_of(place_ty, self.memory.structs)
            align = ty.align_of(place_ty, self.memory.structs)
            self.memory.write_bytes(place, b"\x00" * size, {}, align, tid, span)
            alloc = self.memory.allocations[place.alloc_id]
            offset = place.addr - alloc.base_addr
            for index in range(size):
                alloc.init[offset + index] = 0
            field_place = VPtr(place.alloc_id, place.addr, place.tag,
                               field_ty, mutable=True)
            self.write_place(field_place, value.value, tid, span)
            return
        data, relocs = self.memory.encode(value, place_ty, span)
        # Array-ref → slice-ref coercion: attach the length metadata.
        if (isinstance(place_ty, (ty.TyRef, ty.TyRawPtr))
                and isinstance(place_ty.target, ty.TySlice)
                and isinstance(value, VPtr) and value.meta_len is None
                and isinstance(value.pointee, ty.TyArray)):
            data = data[:8] + value.pointee.length.to_bytes(8, "little")
            if 0 in relocs:
                relocs[0] = dataclasses.replace(
                    relocs[0], meta_len=value.pointee.length)
        align = ty.align_of(place_ty, self.memory.structs)
        self.memory.write_bytes(place, data, relocs, align, tid, span)

    def raw_ptr_to(self, place: VPtr, pointee: ty.Ty, mutable: bool,
                   span: Span) -> VPtr:
        """Create a raw pointer into ``place`` (retagging its allocation)."""
        alloc = self.memory.allocations.get(place.alloc_id)
        if alloc is None or not alloc.live:
            return VPtr(place.alloc_id, place.addr, place.tag, pointee,
                        mutable=mutable)
        try:
            tag = alloc.borrows.retag_raw(place.tag, mutable, span)
        except BorrowError as err:
            raise UbSignal(err.error) from None
        return VPtr(place.alloc_id, place.addr, tag, pointee, mutable=mutable)

    def type_of_value(self, value: Value) -> ty.Ty:
        if isinstance(value, VInt):
            return value.ty
        if isinstance(value, VBool):
            return ty.BOOL
        if isinstance(value, VChar):
            return ty.CHAR
        if isinstance(value, VUnit):
            return ty.UNIT
        if isinstance(value, VStr):
            return ty.TyRef(ty.TyStr(), False)
        if isinstance(value, VPtr):
            if value.is_box:
                return ty.TyPath("Box", (value.pointee,))
            if value.is_ref:
                target = value.pointee
                if value.meta_len is not None and isinstance(target, ty.TyArray):
                    target = ty.TySlice(target.elem)
                return ty.TyRef(target, value.mutable)
            return ty.TyRawPtr(value.pointee, value.mutable)
        if isinstance(value, VFnPtr):
            return value.sig or ty.TyFn((), ty.UNIT)
        if isinstance(value, VAggregate):
            return value.ty
        if isinstance(value, VOption):
            return ty.TyPath("Option", (value.inner_ty,))
        if isinstance(value, VThreadHandle):
            return ty.TyPath("JoinHandle", (ty.UNIT,))
        if isinstance(value, VMutexRef):
            return ty.TyPath("Mutex", (value.inner_ty,))
        if isinstance(value, VMutexGuard):
            return ty.TyPath("MutexGuard", (value.data_ptr.pointee,))
        if isinstance(value, VLayout):
            return ty.TyPath("Layout")
        if isinstance(value, VClosure):
            return ty.TyPath("Closure")
        if isinstance(value, VUninit):
            return ty.TyPath("MaybeUninit", (value.ty,))
        if isinstance(value, VUnionInit):
            return value.union_ty
        raise InterpUnsupported(f"cannot type value {type(value).__name__}")

    # ==================================================================
    # Function calls

    def _call_user_fn(self, fn: ast.FnItem, args: list[Value], tid: int,
                      span: Span) -> Value:
        if len(args) != len(fn.params):
            raise UbSignal(MiriError(
                UbKind.FUNC_CALL,
                f"calling function `{fn.name}` with {len(args)} argument(s), "
                f"but it expects {len(fn.params)}",
                span,
            ))
        env = Env(self.globals)
        for param, arg in zip(fn.params, args):
            param_ty = param.ty or self.type_of_value(arg)
            if isinstance(param_ty, ty.TyInfer):
                param_ty = self.type_of_value(arg)
            local = self._alloc_local(param.name, param_ty, True, env,
                                      label=f"arg {param.name}")
            self.write_place(self._local_place(local), arg, tid, span)
        saved_unsafe = self.unsafe_depth
        self.unsafe_depth = 1 if fn.is_unsafe else 0
        self._call_depth += 1
        try:
            if self._call_depth > MAX_CALL_DEPTH:
                raise RecursionError("interpreter call depth exceeded")
            result = self._eval_fn_body(fn, env, tid)
        except _Return as ret:
            result = ret.value
        finally:
            self._call_depth -= 1
            self.unsafe_depth = saved_unsafe
        return result

    def _eval_fn_body(self, fn: ast.FnItem, env: Env, tid: int) -> Value:
        """Execute a user function's body block (VM override point)."""
        return self.eval_block(fn.body, env, tid)

    def call_fn_value(self, callee: Value, args: list[Value], tid: int,
                      span: Span) -> Value:
        if isinstance(callee, VFnPtr):
            target = self.program.fn(callee.fn_name)
            if target is None:
                raise UbSignal(MiriError(
                    UbKind.FUNC_POINTER,
                    f"calling a function pointer that does not point to a "
                    f"live function ({callee.fn_name})",
                    span,
                ))
            if callee.sig is not None:
                self._check_fn_sig(callee.sig, target, span)
            if target.is_unsafe:
                self.require_unsafe(f"call to unsafe function `{target.name}`",
                                    span)
            return self._call_user_fn(target, args, tid, span)
        if isinstance(callee, VClosure):
            return self._call_closure(callee, args, tid, span)
        raise UbSignal(MiriError(
            UbKind.FUNC_POINTER,
            f"calling a non-function value ({type(callee).__name__})", span))

    def _check_fn_sig(self, sig: ty.TyFn, target: ast.FnItem, span: Span) -> None:
        actual_params = tuple(p.ty for p in target.params)
        actual_ret = target.ret or ty.UNIT
        declared_ret = sig.ret
        if len(sig.params) != len(actual_params):
            raise UbSignal(MiriError(
                UbKind.FUNC_POINTER,
                f"calling a function through a pointer with a different "
                f"number of arguments: pointer has {len(sig.params)}, "
                f"function `{target.name}` has {len(actual_params)}",
                span,
            ))
        for declared, actual in zip(sig.params, actual_params):
            if actual is not None and str(declared) != str(actual):
                raise UbSignal(MiriError(
                    UbKind.FUNC_POINTER,
                    f"calling a function through a pointer of incompatible "
                    f"type: argument declared as {declared}, but function "
                    f"`{target.name}` expects {actual}",
                    span,
                ))
        if str(declared_ret) != str(actual_ret):
            raise UbSignal(MiriError(
                UbKind.FUNC_POINTER,
                f"calling a function through a pointer of incompatible type: "
                f"return type declared as {declared_ret}, but function "
                f"`{target.name}` returns {actual_ret}",
                span,
            ))

    def _call_closure(self, closure: VClosure, args: list[Value], tid: int,
                      span: Span) -> Value:
        env = Env(closure.env)
        for name, arg in zip(closure.params, args):
            arg_ty = self.type_of_value(arg)
            local = self._alloc_local(name, arg_ty, True, env)
            self.write_place(self._local_place(local), arg, tid, span)
        return self._run_closure_body(closure, env, tid)

    def _run_closure_body(self, closure: VClosure, env: Env,
                          tid: int) -> Value:
        """Execute a closure body in ``env``: shared unsafe/`return`/depth
        bookkeeping for direct calls and spawned threads alike."""
        saved_unsafe = self.unsafe_depth
        self.unsafe_depth = 0
        self._call_depth += 1
        try:
            if self._call_depth > MAX_CALL_DEPTH:
                raise RecursionError("interpreter call depth exceeded")
            return self._eval_closure_body(closure, env, tid)
        except _Return as ret:
            return ret.value
        finally:
            self._call_depth -= 1
            self.unsafe_depth = saved_unsafe

    def _eval_closure_body(self, closure: VClosure, env: Env,
                           tid: int) -> Value:
        """Execute a closure's body expression/block (VM override point)."""
        if isinstance(closure.body, ast.Block):
            return self.eval_block(closure.body, env, tid)
        return self.eval_expr(closure.body, env, tid)

    # ==================================================================
    # Threads / sync (called from shims)

    def spawn_thread(self, closure: Value, parent_tid: int, span: Span) -> Value:
        if not isinstance(closure, VClosure):
            raise InterpUnsupported("thread::spawn expects a closure", span)
        child_tid = self.memory.races.spawn(parent_tid)
        record = ThreadRecord(child_tid)
        self.threads[child_tid] = record
        env = Env(self._capture_env(closure) if closure.is_move else closure.env)
        record.result = self._run_closure_body(closure, env, child_tid)
        return VThreadHandle(child_tid)

    def _capture_env(self, closure: VClosure) -> Env:
        """Move-capture: copy every visible local into fresh allocations."""
        snapshot = Env(self.globals)
        for name, local in closure.env.flatten().items():
            if self.globals.lookup(name) is local:
                continue  # statics stay shared
            source = self.memory.allocations.get(local.alloc_id)
            if source is None:
                continue
            copy = self.memory.allocate(source.size, source.align,
                                        AllocKind.STACK, f"moved {name}")
            copy.data[:] = source.data
            copy.init[:] = source.init
            copy.relocations.update(source.relocations)
            snapshot.define(name, Local(copy.id, local.ty, local.mutable))
        return snapshot

    def join_thread(self, handle: VThreadHandle, tid: int, span: Span) -> Value:
        record = self.threads.get(handle.thread_id)
        if record is None:
            raise InterpUnsupported("joining unknown thread", span)
        record.joined = True
        self.memory.races.join(tid, handle.thread_id)
        return record.result

    def make_mutex(self, value: Value, generic_args, tid: int, span: Span) -> Value:
        inner_ty = generic_args[0] if generic_args else self.type_of_value(value)
        size = ty.size_of(inner_ty, self.memory.structs)
        align = ty.align_of(inner_ty, self.memory.structs)
        alloc = self.memory.allocate(max(size, 1), align, AllocKind.HEAP,
                                     "Mutex data")
        data_ptr = VPtr(alloc.id, alloc.base_addr, alloc.base_tag, inner_ty,
                        mutable=True)
        if size:
            self.write_place(data_ptr, value, tid, span)
        mutex_id = len(self.mutexes) + 1
        self.mutexes[mutex_id] = MutexRecord(mutex_id, data_ptr, inner_ty)
        return VMutexRef(mutex_id, inner_ty)

    def lock_mutex(self, place: VPtr, tid: int, span: Span) -> Value:
        value = self.read_place(place, tid, span)
        if not isinstance(value, VMutexRef):
            raise InterpUnsupported("lock() on a non-Mutex", span)
        record = self.mutexes.get(value.mutex_id)
        if record is None:
            raise InterpUnsupported("unknown mutex", span)
        if record.locked:
            raise UbSignal(MiriError(
                UbKind.CONCURRENCY,
                "deadlock: the evaluated program attempted to lock a mutex it "
                "already holds",
                span,
            ))
        record.locked = True
        self.memory.races.acquire(tid, 10_000 + record.mutex_id)
        return VMutexGuard(record.mutex_id, record.data_ptr)

    def unlock_mutex(self, guard: VMutexGuard, tid: int, span: Span) -> None:
        record = self.mutexes.get(guard.mutex_id)
        if record is None or not record.locked:
            raise UbSignal(MiriError(
                UbKind.CONCURRENCY, "unlocking a mutex that is not locked",
                span,
            ))
        record.locked = False
        self.memory.races.release(tid, 10_000 + record.mutex_id)

    def is_owned_ptr(self, value: Value) -> bool:
        return (isinstance(value, VPtr) and value.is_box
                and value.alloc_id in self.owned_boxes)

    # ==================================================================
    # Statements / blocks

    def eval_block(self, block: ast.Block, parent_env: Env, tid: int) -> Value:
        env = Env(parent_env)
        if block.is_unsafe:
            self.unsafe_depth += 1
        try:
            for stmt in block.stmts:
                self._exec_stmt(stmt, env, tid)
            if block.tail is not None:
                return self.eval_expr(block.tail, env, tid)
            return UNIT_VALUE
        finally:
            if block.is_unsafe:
                self.unsafe_depth -= 1

    def _exec_stmt(self, stmt: ast.Stmt, env: Env, tid: int) -> None:
        self._burn(stmt.span)
        if not self.collect:
            self._exec_stmt_inner(stmt, env, tid)
            return
        try:
            self._exec_stmt_inner(stmt, env, tid)
        except UbSignal as signal:
            if not signal.error.kind.is_ub:
                raise
            self._record_collected(signal.error)
        except CompileError as err:
            self._record_collected(err.error)

    def _exec_stmt_inner(self, stmt: ast.Stmt, env: Env, tid: int) -> None:
        if isinstance(stmt, ast.LetStmt):
            self._exec_let(stmt, env, tid)
        elif isinstance(stmt, ast.ExprStmt):
            self.eval_expr(stmt.expr, env, tid)
        else:
            raise InterpUnsupported(
                f"statement {type(stmt).__name__}", stmt.span)

    def _exec_let(self, stmt: ast.LetStmt, env: Env, tid: int) -> None:
        declared = stmt.ty
        if stmt.init is None:
            if declared is None:
                raise CompileError(
                    f"type annotations needed for `{stmt.name}`", stmt.span)
            local = self._alloc_local(stmt.name, declared, stmt.mutable, env)
            return
        value = self.eval_expr(stmt.init, env, tid)
        self._bind_let(stmt, value, env, tid)

    def _bind_let(self, stmt: ast.LetStmt, value: Value, env: Env,
                  tid: int) -> None:
        """Bind an evaluated initializer to a fresh local (shared with the
        VM's ``LET_BIND`` instruction)."""
        declared = stmt.ty
        let_ty = declared if declared is not None and not isinstance(
            declared, ty.TyInfer) else self.type_of_value(value)
        let_ty = self._refine_vec_ty(let_ty, value)
        value = self._materialize_vec(let_ty, value, stmt.span, tid)
        local = self._alloc_local(stmt.name, let_ty, stmt.mutable, env)
        self.write_place(self._local_place(local), value, tid, stmt.span)

    def _refine_vec_ty(self, let_ty: ty.Ty, value: Value) -> ty.Ty:
        """``let v: Vec<i32> = Vec::new()`` refines the element type."""
        if (isinstance(let_ty, ty.TyPath) and let_ty.name == "Vec"
                and let_ty.args and isinstance(let_ty.args[0], ty.TyInfer)
                and isinstance(value, VAggregate)
                and isinstance(value.ty, ty.TyPath) and value.ty.args
                and not isinstance(value.ty.args[0], ty.TyInfer)):
            return value.ty
        return let_ty

    def _materialize_vec(self, let_ty: ty.Ty, value: Value, span: Span,
                         tid: int) -> Value:
        """Allocate a ``Vec::with_capacity`` buffer once the element type is
        known from the binding annotation."""
        if not (isinstance(let_ty, ty.TyPath) and let_ty.name == "Vec"
                and let_ty.args
                and not isinstance(let_ty.args[0], ty.TyInfer)
                and isinstance(value, VAggregate)
                and isinstance(value.ty, ty.TyPath)
                and value.ty.name == "Vec"):
            return value
        data_ptr, cap, length = value.elems
        if not (isinstance(data_ptr, VPtr) and data_ptr.alloc_id is None
                and isinstance(cap, VInt) and cap.value > 0):
            return value
        from .shims import _vec_alloc, vec_value
        elem_ty = let_ty.args[0]
        alloc = _vec_alloc(self, elem_ty, cap.value, span)
        new_ptr = VPtr(alloc.id, alloc.base_addr, alloc.base_tag, elem_ty,
                       mutable=True)
        return vec_value(new_ptr, cap.value, length.value, let_ty)

    def _alloc_local(self, name: str, local_ty: ty.Ty, mutable: bool,
                     env: Env, label: str | None = None) -> Local:
        if isinstance(local_ty, ty.TyInfer):
            raise CompileError(f"type annotations needed for `{name}`")
        size = ty.size_of(local_ty, self.memory.structs)
        align = ty.align_of(local_ty, self.memory.structs)
        alloc = self.memory.allocate(max(size, 1), max(align, 1),
                                     AllocKind.STACK, label or name)
        local = Local(alloc.id, local_ty, mutable)
        env.define(name, local)
        return local

    def _local_place(self, local: Local) -> VPtr:
        alloc = self.memory.allocations[local.alloc_id]
        return VPtr(alloc.id, alloc.base_addr, alloc.base_tag, local.ty,
                    mutable=True)

    # ==================================================================
    # Places (lvalues)

    def eval_place(self, expr: ast.Expr, env: Env, tid: int,
                   for_write: bool = False) -> VPtr:
        self._burn(expr.span)
        if isinstance(expr, ast.PathExpr) and expr.is_local:
            return self._place_for_name(expr.name, env, expr.span, for_write)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self._place_deref(expr, env, tid, for_write)
        if isinstance(expr, ast.FieldAccess):
            return self._place_field(expr, env, tid, for_write)
        if isinstance(expr, ast.Index):
            return self._place_index(expr, env, tid, for_write)
        # Not a place: materialise a temporary.
        value = self.eval_expr(expr, env, tid)
        return self._temp_place(value, expr.span, tid)

    def _temp_place(self, value: Value, span: Span, tid: int) -> VPtr:
        value_ty = self.type_of_value(value)
        size = ty.size_of(value_ty, self.memory.structs)
        align = ty.align_of(value_ty, self.memory.structs)
        alloc = self.memory.allocate(max(size, 1), max(align, 1),
                                     AllocKind.STACK, "temporary")
        place = VPtr(alloc.id, alloc.base_addr, alloc.base_tag, value_ty,
                     mutable=True)
        if size:
            self.write_place(place, value, tid, span)
        return place

    def _place_for_name(self, name: str, env: Env, span: Span,
                        for_write: bool) -> VPtr:
        local = env.lookup(name)
        if local is None:
            raise CompileError(f"cannot find value `{name}` in this scope", span)
        if name in self._static_mut:
            self.require_unsafe(f"use of mutable static `{name}`", span)
        is_global = self.globals.lookup(name) is local
        if for_write and not local.mutable:
            target = "immutable static" if is_global else "immutable variable"
            raise CompileError(
                f"cannot assign to {target} `{name}` (not declared `mut`)",
                span,
            )
        place = self._local_place(local)
        if for_write and not local.mutable:
            place = dataclasses.replace(place, mutable=False)
        return place

    def _place_deref(self, expr: ast.Unary, env: Env, tid: int,
                     for_write: bool) -> VPtr:
        value = self.eval_expr(expr.operand, env, tid)
        return self._deref_place(value, expr.span, for_write)

    def _deref_place(self, value: Value, span: Span, for_write: bool) -> VPtr:
        """The place a dereference of ``value`` designates (post-operand
        core, shared with the VM)."""
        if isinstance(value, VMutexGuard):
            return value.data_ptr
        if isinstance(value, VPtr):
            if not value.is_ref and not value.is_box:
                self.require_unsafe("dereference of raw pointer", span)
            if for_write and not value.mutable:
                raise CompileError(
                    "cannot assign through a `*const` pointer or `&` reference",
                    span,
                )
            return value
        raise CompileError(
            f"type `{self.type_of_value(value)}` cannot be dereferenced",
            span,
        )

    def _autoderef(self, place: VPtr, tid: int, span: Span) -> VPtr:
        """Follow references and boxes to the underlying place."""
        seen = 0
        while isinstance(place.pointee, (ty.TyRef, ty.TyPath)) and seen < 8:
            if isinstance(place.pointee, ty.TyRef):
                value = self.read_place(place, tid, span)
                if not isinstance(value, VPtr):
                    break
                place = value.with_pointee(place.pointee.target,
                                           place.pointee.mutable)
                place = dataclasses.replace(
                    place, is_ref=True, meta_len=value.meta_len)
            elif isinstance(place.pointee, ty.TyPath) and \
                    place.pointee.name == "Box":
                value = self.read_place(place, tid, span)
                if not isinstance(value, VPtr):
                    break
                place = value.with_pointee(place.pointee.args[0], True)
            else:
                break
            seen += 1
        return place

    def _place_field(self, expr: ast.FieldAccess, env: Env, tid: int,
                     for_write: bool) -> VPtr:
        base = self.eval_place(expr.obj, env, tid)
        base = self._autoderef(base, tid, expr.span)
        return self._field_place(base, expr.field, expr.span)

    def _field_place(self, base: VPtr, field_name: str, span: Span) -> VPtr:
        """Project a field out of an already-autoderef'd base place
        (shared with the VM's ``FIELD_PLACE`` instruction)."""
        base_ty = base.pointee
        if isinstance(base_ty, ty.TyTuple):
            index = int(field_name)
            if index >= len(base_ty.elems):
                raise CompileError(
                    f"no field `{field_name}` on type `{base_ty}`", span)
            offsets = self.memory._aggregate_offsets(base_ty, list(base_ty.elems))
            return VPtr(base.alloc_id, base.addr + offsets[index], base.tag,
                        base_ty.elems[index], mutable=base.mutable)
        if isinstance(base_ty, ty.TyPath) and base_ty.name in self.memory.structs:
            layout = self.memory.structs[base_ty.name]
            if field_name not in layout.field_names:
                raise CompileError(
                    f"no field `{field_name}` on type `{base_ty}`", span)
            if layout.is_union:
                self.require_unsafe(
                    f"access to union field `{field_name}`", span)
            return VPtr(base.alloc_id, base.addr + layout.offset_of(field_name),
                        base.tag, layout.type_of(field_name),
                        mutable=base.mutable)
        raise CompileError(
            f"no field `{field_name}` on type `{base_ty}`", span)

    def _place_index(self, expr: ast.Index, env: Env, tid: int,
                     for_write: bool) -> VPtr:
        base = self.eval_place(expr.obj, env, tid)
        base = self._autoderef(base, tid, expr.span)
        index_value = self.eval_expr(expr.index, env, tid)
        return self._index_place(base, index_value, tid, expr.span)

    def _index_place(self, base: VPtr, index_value: Value, tid: int,
                     span: Span) -> VPtr:
        """Project an element out of an already-autoderef'd base place
        (shared with the VM's ``INDEX_PLACE`` instruction)."""
        if not isinstance(index_value, VInt):
            raise CompileError("slice indices must be integers", span)
        index = index_value.value
        base_ty = base.pointee
        if isinstance(base_ty, ty.TyArray):
            if index < 0 or index >= base_ty.length:
                raise PanicSignal(
                    f"index out of bounds: the len is {base_ty.length} but "
                    f"the index is {index}",
                    span,
                )
            elem_size = ty.size_of(base_ty.elem, self.memory.structs)
            return VPtr(base.alloc_id, base.addr + index * elem_size, base.tag,
                        base_ty.elem, mutable=base.mutable)
        if isinstance(base_ty, ty.TySlice):
            length = base.meta_len if base.meta_len is not None else 0
            if index < 0 or index >= length:
                raise PanicSignal(
                    f"index out of bounds: the len is {length} but the index "
                    f"is {index}",
                    span,
                )
            elem_size = ty.size_of(base_ty.elem, self.memory.structs)
            return VPtr(base.alloc_id, base.addr + index * elem_size, base.tag,
                        base_ty.elem, mutable=base.mutable)
        if isinstance(base_ty, ty.TyPath) and base_ty.name == "Vec":
            from .shims import _read_vec
            elem, data_ptr, cap, length = _read_vec(self, base, tid, span)
            if index < 0 or index >= length:
                raise PanicSignal(
                    f"index out of bounds: the len is {length} but the index "
                    f"is {index}",
                    span,
                )
            elem_size = ty.size_of(elem, self.memory.structs)
            return VPtr(data_ptr.alloc_id, data_ptr.addr + index * elem_size,
                        data_ptr.tag, elem, mutable=True)
        raise CompileError(f"type `{base_ty}` cannot be indexed", span)

    # ==================================================================
    # Expressions

    def eval_expr(self, expr: ast.Expr, env: Env, tid: int) -> Value:
        self._burn(expr.span)
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise InterpUnsupported(
                f"expression {type(expr).__name__}", expr.span)
        return method(expr, env, tid)

    # --- literals ------------------------------------------------------

    def _eval_IntLit(self, expr: ast.IntLit, env: Env, tid: int) -> Value:
        int_ty = ty.INT_TYPES.get(expr.suffix or "i32", ty.I32)
        return VInt(expr.value, int_ty)

    def _eval_BoolLit(self, expr: ast.BoolLit, env: Env, tid: int) -> Value:
        return VBool(expr.value)

    def _eval_CharLit(self, expr: ast.CharLit, env: Env, tid: int) -> Value:
        return VChar(expr.value)

    def _eval_StrLit(self, expr: ast.StrLit, env: Env, tid: int) -> Value:
        return VStr(expr.value)

    # --- paths ----------------------------------------------------------

    def _eval_PathExpr(self, expr: ast.PathExpr, env: Env, tid: int) -> Value:
        if expr.is_local:
            name = expr.name
            local = env.lookup(name)
            if local is not None:
                return self.read_place(
                    self._place_for_name(name, env, expr.span, False),
                    tid, expr.span)
            if name in self.consts:
                return self.consts[name]
            if name == "None":
                return VOption(None, ty.INFER)
            fn = self.program.fn(name)
            if fn is not None:
                sig = ty.TyFn(tuple(p.ty for p in fn.params),
                              fn.ret or ty.UNIT, fn.is_unsafe)
                return VFnPtr(name, self.memory.fn_addr(name), sig)
            raise CompileError(
                f"cannot find value `{name}` in this scope", expr.span)
        # Qualified path constants: i32::MAX, usize::MAX, Ordering::SeqCst...
        if len(expr.segments) == 2:
            head, tail = expr.segments
            if head in ty.INT_TYPES:
                int_ty = ty.INT_TYPES[head]
                if tail == "MAX":
                    return VInt(int_ty.max_value, int_ty)
                if tail == "MIN":
                    return VInt(int_ty.min_value, int_ty)
                if tail == "BITS":
                    return VInt(int_ty.bits, ty.U32)
            if head == "Ordering":
                return VInt(0, ty.I32)  # memory orderings are erased
        normalized = normalize_path(expr.segments)
        if normalized == "Option::None" or normalized == "None":
            return VOption(None, ty.INFER)
        raise CompileError(
            f"cannot find path `{expr.full}` in this scope", expr.span)

    # --- operators -------------------------------------------------------

    def _eval_Unary(self, expr: ast.Unary, env: Env, tid: int) -> Value:
        if expr.op == "*":
            place = self._place_deref(expr, env, tid, for_write=False)
            return self.read_place(place, tid, expr.span)
        if expr.op in ("&", "&mut"):
            return self._make_ref(expr.operand, expr.op == "&mut", env, tid,
                                  expr.span)
        value = self.eval_expr(expr.operand, env, tid)
        return self._unary_value(expr.op, value, expr.span)

    def _unary_value(self, op: str, value: Value, span: Span) -> Value:
        """Non-place unary operators on an evaluated operand (shared with
        the VM's ``UNOP`` instruction)."""
        if op == "-":
            if isinstance(value, VInt):
                result = -value.value
                if not value.ty.in_range(result):
                    raise PanicSignal("attempt to negate with overflow",
                                      span)
                return VInt(result, value.ty)
            raise CompileError("cannot negate this type", span)
        if op == "!":
            if isinstance(value, VBool):
                return VBool(not value.value)
            if isinstance(value, VInt):
                return VInt(value.ty.wrap(~value.value), value.ty)
        raise InterpUnsupported(f"unary {op}", span)

    def _make_ref(self, operand: ast.Expr, mutable: bool, env: Env, tid: int,
                  span: Span) -> Value:
        place = self.eval_place(operand, env, tid, for_write=mutable)
        return self._ref_from_place(place, mutable, span)

    def _ref_from_place(self, place: VPtr, mutable: bool, span: Span) -> Value:
        """Retag and build a reference from an evaluated place (shared
        with the VM's ``REF`` instruction)."""
        alloc = self.memory.allocations.get(place.alloc_id)
        if alloc is None:
            raise UbSignal(MiriError(
                UbKind.DANGLING_POINTER,
                "taking a reference to a dangling place", span))
        if not alloc.live:
            raise UbSignal(MiriError(
                UbKind.DANGLING_POINTER,
                f"taking a reference into freed memory "
                f"({alloc.label or f'alloc{alloc.id}'})",
                span,
            ))
        try:
            if mutable:
                tag = alloc.borrows.retag_mut(place.tag, span)
            else:
                tag = alloc.borrows.retag_shared(place.tag, span)
        except BorrowError as err:
            raise UbSignal(err.error) from None
        meta = None
        if isinstance(place.pointee, ty.TyArray):
            meta = place.meta_len  # preserved only through slice coercion
        return VPtr(place.alloc_id, place.addr, tag, place.pointee,
                    mutable=mutable, is_ref=True,
                    meta_len=place.meta_len if place.meta_len else meta)

    def _eval_Binary(self, expr: ast.Binary, env: Env, tid: int) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            left = self.eval_expr(expr.left, env, tid)
            if not isinstance(left, VBool):
                raise CompileError("logical op needs bool operands", expr.span)
            if op == "&&" and not left.value:
                return VBool(False)
            if op == "||" and left.value:
                return VBool(True)
            right = self.eval_expr(expr.right, env, tid)
            if not isinstance(right, VBool):
                raise CompileError("logical op needs bool operands", expr.span)
            return VBool(right.value)
        left = self.eval_expr(expr.left, env, tid)
        right = self.eval_expr(expr.right, env, tid)
        return self._binop(op, left, right, expr.span)

    def _binop(self, op: str, left: Value, right: Value, span: Span) -> Value:
        if op in ("==", "!="):
            equal = self._values_equal(left, right, span)
            return VBool(equal if op == "==" else not equal)
        if isinstance(left, VInt) and isinstance(right, VInt):
            return self._int_binop(op, left, right, span)
        if isinstance(left, VPtr) and isinstance(right, VPtr):
            if op in ("<", ">", "<=", ">="):
                table = {"<": left.addr < right.addr,
                         ">": left.addr > right.addr,
                         "<=": left.addr <= right.addr,
                         ">=": left.addr >= right.addr}
                return VBool(table[op])
        if isinstance(left, VBool) and isinstance(right, VBool):
            if op == "&":
                return VBool(left.value and right.value)
            if op == "|":
                return VBool(left.value or right.value)
            if op == "^":
                return VBool(left.value != right.value)
        raise CompileError(
            f"cannot apply `{op}` to {self.type_of_value(left)} and "
            f"{self.type_of_value(right)}",
            span,
        )

    def _int_binop(self, op: str, left: VInt, right: VInt, span: Span) -> Value:
        a, b = left.value, right.value
        result_ty = left.ty
        if op in ("<", ">", "<=", ">="):
            table = {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b}
            return VBool(table[op])
        if op in ("/", "%") and b == 0:
            raise PanicSignal(
                "attempt to divide by zero" if op == "/" else
                "attempt to calculate the remainder with a divisor of zero",
                span,
            )
        if op in ("<<", ">>") and (b < 0 or b >= result_ty.bits):
            raise PanicSignal(
                f"attempt to shift {'left' if op == '<<' else 'right'} with "
                f"overflow",
                span,
            )
        if op == "+":
            raw = a + b
        elif op == "-":
            raw = a - b
        elif op == "*":
            raw = a * b
        elif op == "/":
            raw = int(a / b)  # truncates toward zero, like Rust
        elif op == "%":
            raw = a - int(a / b) * b
        elif op == "&":
            raw = a & b
        elif op == "|":
            raw = a | b
        elif op == "^":
            raw = a ^ b
        elif op == "<<":
            raw = a << b
        elif op == ">>":
            raw = a >> b
        else:
            raise CompileError(f"unknown integer operator `{op}`", span)
        if op in ("+", "-", "*") and not result_ty.in_range(raw):
            verb = {"+": "add", "-": "subtract", "*": "multiply"}[op]
            raise PanicSignal(f"attempt to {verb} with overflow", span)
        return VInt(result_ty.wrap(raw), result_ty)

    def _values_equal(self, left: Value, right: Value, span: Span) -> bool:
        if isinstance(left, VInt) and isinstance(right, VInt):
            return left.value == right.value
        if isinstance(left, VBool) and isinstance(right, VBool):
            return left.value == right.value
        if isinstance(left, VChar) and isinstance(right, VChar):
            return left.value == right.value
        if isinstance(left, VStr) and isinstance(right, VStr):
            return left.value == right.value
        if isinstance(left, VPtr) and isinstance(right, VPtr):
            return left.addr == right.addr
        if isinstance(left, VUnit) and isinstance(right, VUnit):
            return True
        if isinstance(left, VAggregate) and isinstance(right, VAggregate):
            return len(left.elems) == len(right.elems) and all(
                self._values_equal(l, r, span)
                for l, r in zip(left.elems, right.elems)
            )
        if isinstance(left, VOption) and isinstance(right, VOption):
            if left.inner is None or right.inner is None:
                return (left.inner is None) == (right.inner is None)
            return self._values_equal(left.inner, right.inner, span)
        raise CompileError("cannot compare these types", span)

    # --- assignment ------------------------------------------------------

    def _eval_Assign(self, expr: ast.Assign, env: Env, tid: int) -> Value:
        value = self.eval_expr(expr.value, env, tid)
        place = self.eval_place(expr.target, env, tid, for_write=True)
        self.write_place(place, value, tid, expr.span)
        return UNIT_VALUE

    def _eval_CompoundAssign(self, expr: ast.CompoundAssign, env: Env,
                             tid: int) -> Value:
        place = self.eval_place(expr.target, env, tid, for_write=True)
        current = self.read_place(place, tid, expr.span)
        operand = self.eval_expr(expr.value, env, tid)
        result = self._binop(expr.op, current, operand, expr.span)
        self.write_place(place, result, tid, expr.span)
        return UNIT_VALUE

    # --- calls -----------------------------------------------------------

    def _eval_Call(self, expr: ast.Call, env: Env, tid: int) -> Value:
        callee = expr.func
        args = [self.eval_expr(a, env, tid) for a in expr.args]
        if isinstance(callee, ast.PathExpr):
            return self._call_path(callee, args, env, tid, expr.span)
        value = self.eval_expr(callee, env, tid)
        return self.call_fn_value(value, args, tid, expr.span)

    def _call_path(self, path: ast.PathExpr, args: list[Value], env: Env,
                   tid: int, span: Span) -> Value:
        # Local bindings (closures / fn pointers) shadow everything.
        if path.is_local:
            local = env.lookup(path.name)
            if local is not None:
                value = self.read_place(
                    self._place_for_name(path.name, env, span, False),
                    tid, span)
                return self.call_fn_value(value, args, tid, span)
            if path.name == "Some":
                inner_ty = self.type_of_value(args[0])
                return VOption(args[0], inner_ty)
            if path.name == "drop":
                from .shims import shim_drop
                return shim_drop(self, args, path.generic_args, tid, span)
            fn = self.program.fn(path.name)
            if fn is not None:
                if fn.is_unsafe:
                    self.require_unsafe(
                        f"call to unsafe function `{fn.name}`", span)
                return self._call_user_fn(fn, args, tid, span)
        normalized = normalize_path(path.segments)
        shim = CALL_SHIMS.get(normalized)
        if shim is not None:
            if normalized in _UNSAFE_SHIMS:
                self.require_unsafe(f"call to `{path.full}`", span)
            return shim(self, args, path.generic_args, tid, span)
        if normalized == "Some":
            return VOption(args[0], self.type_of_value(args[0]))
        raise CompileError(
            f"cannot find function `{path.full}` in this scope", span)

    # --- method calls ------------------------------------------------------

    _PLACE_DISPATCH_TYPES = ("Vec", "MaybeUninit", "Mutex", "AtomicUsize",
                             "AtomicI64", "AtomicBool")

    def _eval_MethodCall(self, expr: ast.MethodCall, env: Env, tid: int) -> Value:
        args = [self.eval_expr(a, env, tid) for a in expr.args]
        receiver = expr.receiver
        is_place_expr = isinstance(
            receiver, (ast.PathExpr, ast.FieldAccess, ast.Index)
        ) or (isinstance(receiver, ast.Unary) and receiver.op == "*")
        if is_place_expr:
            place = self.eval_place(receiver, env, tid)
            place = self._autoderef_for_method(place, tid, expr.span)
            return self._dispatch_method_on_place(place, expr, args, tid)
        value = self.eval_expr(receiver, env, tid)
        return self._dispatch_method_on_value(value, expr, args, tid)

    def _autoderef_for_method(self, place: VPtr, tid: int, span: Span) -> VPtr:
        while isinstance(place.pointee, ty.TyRef):
            value = self.read_place(place, tid, span)
            if not isinstance(value, VPtr):
                break
            target = place.pointee.target
            place = dataclasses.replace(
                value, pointee=target, is_ref=True,
                mutable=place.pointee.mutable,
                meta_len=value.meta_len,
            )
        return place

    def _dispatch_method_on_place(self, place: VPtr, expr: ast.MethodCall,
                                  args: list[Value], tid: int) -> Value:
        name = expr.method
        place_ty = place.pointee
        span = expr.span
        if isinstance(place_ty, ty.TyPath):
            if place_ty.name == "Vec":
                handler = VEC_METHODS.get(name)
                if handler is not None:
                    if name in _UNSAFE_VEC_METHODS:
                        self.require_unsafe(f"call to `Vec::{name}`", span)
                    return handler(self, place, args, expr.generic_args, tid, span)
            if place_ty.name == "MaybeUninit":
                handler = MAYBE_UNINIT_METHODS.get(name)
                if handler is not None:
                    if name in _UNSAFE_MU_METHODS:
                        self.require_unsafe(
                            f"call to `MaybeUninit::{name}`", span)
                    return handler(self, place, args, expr.generic_args, tid, span)
            if place_ty.name == "Mutex" and name == "lock":
                return self.lock_mutex(place, tid, span)
            if place_ty.name.startswith("Atomic"):
                return self._atomic_method(place, name, args, tid, span)
        if isinstance(place_ty, ty.TyArray):
            return self._array_method(place, name, args, tid, span)
        if isinstance(place_ty, ty.TySlice):
            return self._slice_method(place, name, args, tid, span)
        # Fall back to value dispatch.
        value = self.read_place(place, tid, span)
        return self._dispatch_method_on_value(value, expr, args, tid)

    def _dispatch_method_on_value(self, value: Value, expr: ast.MethodCall,
                                  args: list[Value], tid: int) -> Value:
        name = expr.method
        span = expr.span
        if isinstance(value, VPtr) and not value.is_ref:
            handler = PTR_METHODS.get(name)
            if handler is not None:
                if name in _UNSAFE_PTR_METHODS:
                    self.require_unsafe(
                        f"call to raw-pointer method `{name}`", span)
                return handler(self, value, args, expr.generic_args, tid, span)
        if isinstance(value, VInt):
            handler = INT_METHODS.get(name)
            if handler is not None:
                return handler(self, value, args, expr.generic_args, tid, span)
        if isinstance(value, VOption):
            handler = OPTION_METHODS.get(name)
            if handler is not None:
                return handler(self, value, args, expr.generic_args, tid, span)
        if isinstance(value, VThreadHandle) and name == "join":
            return method_handle_join(self, value, args, expr.generic_args,
                                      tid, span)
        if isinstance(value, VAggregate) and isinstance(value.ty, ty.TyPath) \
                and value.ty.name == "Vec":
            place = self._temp_place(value, span, tid)
            return self._dispatch_method_on_place(place, expr, args, tid)
        if isinstance(value, VStr) and name == "len":
            return VInt(len(value.value.encode("utf-8")), ty.USIZE)
        if isinstance(value, VPtr) and value.is_ref:
            # Methods on references: deref and retry on the pointee place.
            place = value.with_pointee(value.pointee, value.mutable)
            place = dataclasses.replace(place, is_ref=True,
                                        meta_len=value.meta_len)
            return self._dispatch_method_on_place(place, expr, args, tid)
        raise CompileError(
            f"no method named `{name}` found for type "
            f"`{self.type_of_value(value)}`",
            span,
        )

    def _array_method(self, place: VPtr, name: str, args: list[Value],
                      tid: int, span: Span) -> Value:
        arr_ty = place.pointee
        if name == "len":
            return VInt(arr_ty.length, ty.USIZE)
        if name == "as_ptr":
            return self.raw_ptr_to(place, arr_ty.elem, mutable=False, span=span)
        if name == "as_mut_ptr":
            return self.raw_ptr_to(place, arr_ty.elem, mutable=True, span=span)
        if name == "get":
            index = args[0].value
            if index >= arr_ty.length:
                return VOption(None, arr_ty.elem)
            elem_size = ty.size_of(arr_ty.elem, self.memory.structs)
            elem_place = VPtr(place.alloc_id, place.addr + index * elem_size,
                              place.tag, arr_ty.elem)
            return VOption(self.read_place(elem_place, tid, span), arr_ty.elem)
        raise CompileError(f"no method `{name}` on arrays", span)

    def _slice_method(self, place: VPtr, name: str, args: list[Value],
                      tid: int, span: Span) -> Value:
        slice_ty = place.pointee
        length = place.meta_len if place.meta_len is not None else 0
        if name == "len":
            return VInt(length, ty.USIZE)
        if name == "as_ptr":
            return self.raw_ptr_to(place, slice_ty.elem, mutable=False, span=span)
        if name in ("get_unchecked", "get_unchecked_mut"):
            self.require_unsafe(f"call to `slice::{name}`", span)
            index = args[0].value
            elem_size = ty.size_of(slice_ty.elem, self.memory.structs)
            elem_place = VPtr(place.alloc_id, place.addr + index * elem_size,
                              place.tag, slice_ty.elem, mutable=place.mutable)
            return self.read_place(elem_place, tid, span)
        raise CompileError(f"no method `{name}` on slices", span)

    def _atomic_method(self, place: VPtr, name: str, args: list[Value],
                       tid: int, span: Span) -> Value:
        alloc = self.memory.allocations.get(place.alloc_id)
        if alloc is None or not alloc.live:
            raise UbSignal(MiriError(
                UbKind.DANGLING_POINTER, "atomic access to freed memory", span))
        sync_id = 20_000 + alloc.id
        offset = place.addr - alloc.base_addr
        atomic_name = place.pointee.name
        size = 1 if atomic_name == "AtomicBool" else 8
        value_ty = ty.BOOL if atomic_name == "AtomicBool" else (
            ty.ISIZE if atomic_name == "AtomicI64" else ty.USIZE)

        def raw_read() -> int:
            data = bytes(alloc.data[offset : offset + size])
            return int.from_bytes(
                data, "little",
                signed=isinstance(value_ty, ty.TyInt) and value_ty.signed)

        def raw_write(number: int) -> None:
            if isinstance(value_ty, ty.TyInt):
                number = value_ty.wrap(number)
            alloc.data[offset : offset + size] = number.to_bytes(
                size, "little", signed=number < 0)
            for i in range(size):
                alloc.init[offset + i] = 1

        races = self.memory.races
        if name == "load":
            races.acquire(tid, sync_id)
            number = raw_read()
            return VBool(bool(number)) if atomic_name == "AtomicBool" \
                else VInt(number, value_ty)
        if name == "store":
            arg = args[0]
            number = int(arg.value) if isinstance(arg, (VInt, VBool)) else 0
            raw_write(number)
            races.release(tid, sync_id)
            return UNIT_VALUE
        if name in ("fetch_add", "fetch_sub", "swap"):
            races.acquire(tid, sync_id)
            old = raw_read()
            operand = int(args[0].value)
            new = {"fetch_add": old + operand, "fetch_sub": old - operand,
                   "swap": operand}[name]
            raw_write(new)
            races.release(tid, sync_id)
            return VInt(old, value_ty)
        raise CompileError(f"no atomic method `{name}`", span)

    # --- aggregate literals ------------------------------------------------

    def _eval_TupleLit(self, expr: ast.TupleLit, env: Env, tid: int) -> Value:
        if not expr.elems:
            return UNIT_VALUE
        elems = tuple(self.eval_expr(e, env, tid) for e in expr.elems)
        return self._tuple_value(elems)

    def _tuple_value(self, elems: tuple[Value, ...]) -> Value:
        tuple_ty = ty.TyTuple(tuple(self.type_of_value(e) for e in elems))
        return VAggregate(tuple_ty, elems)

    def _eval_ArrayLit(self, expr: ast.ArrayLit, env: Env, tid: int) -> Value:
        elems = tuple(self.eval_expr(e, env, tid) for e in expr.elems)
        return self._array_value(elems, expr.span)

    def _array_value(self, elems: tuple[Value, ...], span: Span) -> Value:
        if not elems:
            raise InterpUnsupported("empty array literals need annotations",
                                    span)
        elem_ty = self.type_of_value(elems[0])
        return VAggregate(ty.TyArray(elem_ty, len(elems)), elems)

    def _eval_ArrayRepeat(self, expr: ast.ArrayRepeat, env: Env, tid: int) -> Value:
        elem = self.eval_expr(expr.elem, env, tid)
        count_value = self.eval_expr(expr.count, env, tid)
        return self._repeat_value(elem, count_value)

    def _repeat_value(self, elem: Value, count_value: Value) -> Value:
        count = count_value.value if isinstance(count_value, VInt) else 0
        elem_ty = self.type_of_value(elem)
        return VAggregate(ty.TyArray(elem_ty, count), tuple([elem] * count))

    def _eval_StructLit(self, expr: ast.StructLit, env: Env, tid: int) -> Value:
        layout = self.memory.structs.get(expr.name)
        if layout is None:
            raise CompileError(f"cannot find struct `{expr.name}`", expr.span)
        provided = {name: self.eval_expr(value, env, tid)
                    for name, value in expr.fields}
        return self._struct_value(expr.name, provided, expr.span)

    def _struct_value(self, name: str, provided: dict[str, Value],
                      span: Span) -> Value:
        """Assemble a struct/union literal from evaluated fields (shared
        with the VM's ``MAKE_STRUCT`` instruction; the struct's existence
        was already checked before field evaluation)."""
        layout = self.memory.structs[name]
        if layout.is_union:
            if len(provided) != 1:
                raise CompileError(
                    "union literals must initialise exactly one field",
                    span,
                )
            field_name, value = next(iter(provided.items()))
            if field_name not in layout.field_names:
                raise CompileError(
                    f"no field `{field_name}` on union `{name}`",
                    span,
                )
            return VUnionInit(ty.TyPath(name, ()), field_name, value)
        elems = []
        for field_name in layout.field_names:
            if field_name not in provided:
                raise CompileError(
                    f"missing field `{field_name}` in initializer of "
                    f"`{name}`",
                    span,
                )
            elems.append(provided[field_name])
        return VAggregate(ty.TyPath(name, ()), tuple(elems))

    # --- casts ---------------------------------------------------------------

    def _eval_Cast(self, expr: ast.Cast, env: Env, tid: int) -> Value:
        # `&mut x as *mut T` must retag from the place, not collapse to a ref.
        value = self.eval_expr(expr.expr, env, tid)
        return self._cast_value(value, expr.ty, expr.span)

    def _cast_value(self, value: Value, target: ty.Ty, span: Span) -> Value:
        """``as``-cast an evaluated value (shared with the VM's ``CAST``
        instruction)."""
        if isinstance(target, ty.TyInt):
            if isinstance(value, VInt):
                return VInt(target.wrap(value.value), target)
            if isinstance(value, VBool):
                return VInt(int(value.value), target)
            if isinstance(value, VChar):
                return VInt(target.wrap(ord(value.value)), target)
            if isinstance(value, VPtr):
                return VInt(target.wrap(value.addr), target)
            if isinstance(value, VFnPtr):
                return VInt(target.wrap(value.addr), target)
        if isinstance(target, ty.TyChar):
            if isinstance(value, VInt):
                return VChar(chr(value.value & 0xFF))
        if isinstance(target, ty.TyBool):
            raise CompileError("cannot cast to bool with `as`", span)
        if isinstance(target, ty.TyRawPtr):
            if isinstance(value, VInt):
                return VPtr(None, value.value, None, target.target,
                            mutable=target.mutable)
            if isinstance(value, VPtr):
                if value.is_ref or value.is_box:
                    alloc = self.memory.allocations.get(value.alloc_id)
                    if alloc is not None and alloc.live:
                        try:
                            tag = alloc.borrows.retag_raw(
                                value.tag, target.mutable, span)
                        except BorrowError as err:
                            raise UbSignal(err.error) from None
                        return VPtr(value.alloc_id, value.addr, tag,
                                    target.target, mutable=target.mutable)
                return VPtr(value.alloc_id, value.addr, value.tag,
                            target.target, mutable=target.mutable,
                            meta_len=value.meta_len)
            if isinstance(value, VFnPtr):
                return VPtr(None, value.addr, None, target.target,
                            mutable=target.mutable)
        if isinstance(target, ty.TyFn):
            if isinstance(value, VFnPtr):
                return VFnPtr(value.fn_name, value.addr, target)
            if isinstance(value, VInt):
                fn_name = self.memory.fns_by_addr.get(value.value)
                if fn_name is None:
                    raise CompileError(
                        "casting an integer to a function pointer requires "
                        "`transmute`",
                        span,
                    )
                return VFnPtr(fn_name, value.value, target)
        raise CompileError(
            f"invalid cast of {self.type_of_value(value)} to {target}", span)

    # --- control flow ----------------------------------------------------------

    def _eval_Block(self, expr: ast.Block, env: Env, tid: int) -> Value:
        return self.eval_block(expr, env, tid)

    def _eval_IfExpr(self, expr: ast.IfExpr, env: Env, tid: int) -> Value:
        cond = self.eval_expr(expr.cond, env, tid)
        if not isinstance(cond, VBool):
            raise CompileError("`if` condition must be `bool`", expr.span)
        if cond.value:
            return self.eval_block(expr.then_block, env, tid)
        if expr.else_block is not None:
            if isinstance(expr.else_block, ast.Block):
                return self.eval_block(expr.else_block, env, tid)
            return self.eval_expr(expr.else_block, env, tid)
        return UNIT_VALUE

    def _eval_WhileExpr(self, expr: ast.WhileExpr, env: Env, tid: int) -> Value:
        while True:
            self._burn(expr.span)
            cond = self.eval_expr(expr.cond, env, tid)
            if not isinstance(cond, VBool):
                raise CompileError("`while` condition must be `bool`", expr.span)
            if not cond.value:
                return UNIT_VALUE
            try:
                self.eval_block(expr.body, env, tid)
            except _Break:
                return UNIT_VALUE
            except _Continue:
                continue

    def _eval_LoopExpr(self, expr: ast.LoopExpr, env: Env, tid: int) -> Value:
        while True:
            self._burn(expr.span)
            try:
                self.eval_block(expr.body, env, tid)
            except _Break as brk:
                return brk.value
            except _Continue:
                continue

    def _eval_ForExpr(self, expr: ast.ForExpr, env: Env, tid: int) -> Value:
        iterable = self.eval_expr(expr.iterable, env, tid)
        if not isinstance(iterable, VRangeIter):
            raise InterpUnsupported(
                "`for` loops support only range iterables", expr.span)
        hi = iterable.hi + 1 if iterable.inclusive else iterable.hi
        loop_env = Env(env)
        local = self._alloc_local(expr.var, ty.USIZE
                                  if iterable.lo >= 0 else ty.I64,
                                  False, loop_env)
        for current in range(iterable.lo, hi):
            self._burn(expr.span)
            self.write_place(self._local_place(local),
                             VInt(current, local.ty), tid, expr.span)
            try:
                self.eval_block(expr.body, loop_env, tid)
            except _Break:
                return UNIT_VALUE
            except _Continue:
                continue
        return UNIT_VALUE

    def _eval_RangeExpr(self, expr: ast.RangeExpr, env: Env, tid: int) -> Value:
        lo = self.eval_expr(expr.lo, env, tid) if expr.lo is not None else VInt(0, ty.I64)
        hi = self.eval_expr(expr.hi, env, tid) if expr.hi is not None else None
        if hi is None:
            raise InterpUnsupported("unbounded ranges", expr.span)
        return self._range_value(lo, hi, expr.inclusive, expr.span)

    def _range_value(self, lo: Value, hi: Value, inclusive: bool,
                     span: Span) -> Value:
        if not isinstance(lo, VInt) or not isinstance(hi, VInt):
            raise CompileError("range bounds must be integers", span)
        return VRangeIter(lo.value, hi.value, inclusive)

    def _eval_ReturnExpr(self, expr: ast.ReturnExpr, env: Env, tid: int) -> Value:
        value = self.eval_expr(expr.value, env, tid) \
            if expr.value is not None else UNIT_VALUE
        raise _Return(value)

    def _eval_BreakExpr(self, expr: ast.BreakExpr, env: Env, tid: int) -> Value:
        value = self.eval_expr(expr.value, env, tid) \
            if expr.value is not None else UNIT_VALUE
        raise _Break(value)

    def _eval_ContinueExpr(self, expr: ast.ContinueExpr, env: Env, tid: int) -> Value:
        raise _Continue()

    # --- field/index as rvalues ---------------------------------------------

    def _eval_FieldAccess(self, expr: ast.FieldAccess, env: Env, tid: int) -> Value:
        place = self._place_field(expr, env, tid, for_write=False)
        return self.read_place(place, tid, expr.span)

    def _eval_Index(self, expr: ast.Index, env: Env, tid: int) -> Value:
        place = self._place_index(expr, env, tid, for_write=False)
        return self.read_place(place, tid, expr.span)

    # --- closures / macros -----------------------------------------------------

    def _eval_Closure(self, expr: ast.Closure, env: Env, tid: int) -> Value:
        return VClosure(list(expr.params), expr.body, env, expr.is_move)

    def _eval_MacroCall(self, expr: ast.MacroCall, env: Env, tid: int) -> Value:
        name = expr.name
        span = expr.span
        if name == "assert":
            cond = self.eval_expr(expr.args[0], env, tid)
            if not isinstance(cond, VBool):
                raise CompileError("assert! needs a bool", span)
            if not cond.value:
                message = "assertion failed"
                if len(expr.args) > 1:
                    extra = self.eval_expr(expr.args[1], env, tid)
                    if isinstance(extra, VStr):
                        message = extra.value
                raise PanicSignal(message, span)
            return UNIT_VALUE
        if name in ("assert_eq", "assert_ne"):
            left = self.eval_expr(expr.args[0], env, tid)
            right = self.eval_expr(expr.args[1], env, tid)
            equal = self._values_equal(left, right, span)
            if name == "assert_eq" and not equal:
                raise PanicSignal(
                    f"assertion `left == right` failed\n  left: {left}\n "
                    f"right: {right}",
                    span,
                )
            if name == "assert_ne" and equal:
                raise PanicSignal(
                    f"assertion `left != right` failed (both are {left})",
                    span,
                )
            return UNIT_VALUE
        if name in ("panic", "unreachable"):
            message = "explicit panic" if name == "panic" else \
                "internal error: entered unreachable code"
            if expr.args:
                first = self.eval_expr(expr.args[0], env, tid)
                if isinstance(first, VStr):
                    message = first.value
            raise PanicSignal(message, span)
        if name in ("println", "print"):
            self._do_println(expr.args, env, tid, span)
            return UNIT_VALUE
        if name == "vec":
            return self._make_vec([self.eval_expr(a, env, tid)
                                   for a in expr.args], span, tid)
        if name == "vec_repeat":
            elem = self.eval_expr(expr.args[0], env, tid)
            count = self.eval_expr(expr.args[1], env, tid)
            if not isinstance(count, VInt):
                raise CompileError("vec! repeat count must be an integer", span)
            return self._make_vec([elem] * count.value, span, tid,
                                  elem_hint=self.type_of_value(elem))
        if name == "dbg":
            value = self.eval_expr(expr.args[0], env, tid)
            self.report.stdout.append(f"[dbg] {self._display(value, tid, span)}")
            return value
        raise InterpUnsupported(f"macro `{name}!`", span)

    def _make_vec(self, elems: list[Value], span: Span, tid: int,
                  elem_hint: ty.Ty | None = None) -> Value:
        from .shims import _vec_alloc, vec_value
        if not elems:
            return vec_value(None, 0, 0, ty.TyPath("Vec", (elem_hint or ty.INFER,)))
        elem_ty = elem_hint or self.type_of_value(elems[0])
        vec_ty = ty.TyPath("Vec", (elem_ty,))
        alloc = _vec_alloc(self, elem_ty, len(elems), span)
        size = ty.size_of(elem_ty, self.memory.structs)
        for index, elem in enumerate(elems):
            slot = VPtr(alloc.id, alloc.base_addr + index * size,
                        alloc.base_tag, elem_ty, mutable=True)
            self.write_place(slot, elem, tid, span)
        data_ptr = VPtr(alloc.id, alloc.base_addr, alloc.base_tag, elem_ty,
                        mutable=True)
        return vec_value(data_ptr, len(elems), len(elems), vec_ty)

    def _do_println(self, args: list[ast.Expr], env: Env, tid: int,
                    span: Span) -> None:
        if not args:
            self.report.stdout.append("")
            return
        fmt_value = self.eval_expr(args[0], env, tid)
        if not isinstance(fmt_value, VStr):
            raise CompileError("format string must be a string literal", span)
        values = [self.eval_expr(a, env, tid) for a in args[1:]]
        rendered = self._format(fmt_value.value, values, tid, span)
        self.report.stdout.append(rendered)

    def _format(self, fmt: str, values: list[Value], tid: int,
                span: Span) -> str:
        out: list[str] = []
        index = 0
        value_index = 0
        while index < len(fmt):
            ch = fmt[index]
            if ch == "{" and index + 1 < len(fmt) and fmt[index + 1] == "{":
                out.append("{")
                index += 2
                continue
            if ch == "}" and index + 1 < len(fmt) and fmt[index + 1] == "}":
                out.append("}")
                index += 2
                continue
            if ch == "{":
                close = fmt.find("}", index)
                if close == -1:
                    raise CompileError("unterminated `{` in format string", span)
                spec = fmt[index + 1 : close]
                if value_index >= len(values):
                    raise CompileError(
                        "not enough arguments for format string", span)
                value = values[value_index]
                value_index += 1
                out.append(self._display(value, tid, span, spec))
                index = close + 1
                continue
            out.append(ch)
            index += 1
        return "".join(out)

    def _display(self, value: Value, tid: int, span: Span,
                 spec: str = "") -> str:
        if isinstance(value, VPtr) and isinstance(value.pointee, ty.TyStr):
            size = value.meta_len or 0
            data, _ = self.memory.read_bytes(value, size, 1, tid, span)
            return data.decode("utf-8", errors="replace")
        if ":x" in spec and isinstance(value, VInt):
            return format(value.value, "x")
        if ":p" in spec and isinstance(value, VPtr):
            return f"0x{value.addr:x}"
        return str(value)
