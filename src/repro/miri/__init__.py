"""Miri-equivalent UB detector for the mini-Rust subset.

The public entry point is :func:`detect_ub`:

>>> from repro.miri import detect_ub
>>> report = detect_ub('''
... fn main() {
...     let b = Box::new(7);
...     let p = Box::into_raw(b);
...     unsafe { drop(Box::from_raw(p)); }
...     let v = unsafe { *p };
... }
... ''')
>>> report.passed
False
>>> report.errors[0].kind.value
'dangling_pointer'

:func:`detect_ub_batch` verifies many candidate sources in one call:
parsing rides the :func:`~repro.lang.parser.parse_program` memo, and
textually identical sources are interpreted **once** and share one report.
Candidate repair solutions converge on identical programs constantly
(shared leading rules, rollback revisits, members proposing the same fix),
so batching the verification step cuts real interpreter executions without
changing a single verdict.  :class:`BatchVerifier` extends that dedup
across successive calls within one repair, which is how RustBrain's S2
stage and the exec-metric scorer amortize their detector runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast_nodes as ast
from ..lang.parser import ParseError, parse_program
from .errors import MiriError, MiriReport, UbKind, PAPER_CATEGORIES
from .interp import DEFAULT_FUEL, Interpreter, run_program


@dataclass
class DetectorStats:
    """Process-wide detector accounting (see :data:`DETECTOR_STATS`).

    ``requests`` counts verification *questions* (one per source handed to
    :func:`detect_ub` or :func:`detect_ub_batch`); ``runs`` counts actual
    interpreter executions.  Batching makes ``runs < requests``; the gap is
    the amortization ``BENCH_ensemble.json`` gates on.  Plain counters
    under the GIL — exact in the serial benchmark harnesses that read
    them, best-effort under concurrent member consultation.
    """

    requests: int = 0
    runs: int = 0

    def reset(self) -> None:
        self.requests = 0
        self.runs = 0


#: The process-wide counter instance every detector call updates.
DETECTOR_STATS = DetectorStats()


def _detect(source: str | ast.Program, collect: bool, max_errors: int,
            fuel: int, debug: bool) -> MiriReport:
    """One detector execution (parse if needed, then interpret)."""
    if isinstance(source, str):
        try:
            program = parse_program(source)
        except ParseError as err:
            report = MiriReport()
            report.errors.append(MiriError(
                UbKind.COMPILE, f"parse error: {err}", err.span))
            return report
        except Exception as err:  # lexer errors and friends
            report = MiriReport()
            report.errors.append(MiriError(
                UbKind.COMPILE, f"lex error: {err}"))
            return report
    else:
        program = source
    DETECTOR_STATS.runs += 1
    return run_program(program, collect=collect, max_errors=max_errors,
                       fuel=fuel, debug=debug)


def detect_ub(source: str | ast.Program, *, collect: bool = False,
              max_errors: int = 8, fuel: int = DEFAULT_FUEL,
              debug: bool = False) -> MiriReport:
    """Run the detector over ``source`` (text or already-parsed program).

    ``collect=True`` enables error-collection mode: instead of stopping at the
    first UB (Miri's behaviour, and the default), the interpreter records the
    error, skips the offending statement, and keeps going — this is what gives
    RustBrain's rollback mechanism a meaningful per-iteration error *count*
    (the ``n_i`` sequences of §III-B2).
    """
    DETECTOR_STATS.requests += 1
    return _detect(source, collect, max_errors, fuel, debug)


def detect_ub_batch(sources, *, collect: bool = False, max_errors: int = 8,
                    fuel: int = DEFAULT_FUEL,
                    debug: bool = False) -> list[MiriReport]:
    """Run the detector over many candidate sources in one call.

    Returns one :class:`~repro.miri.errors.MiriReport` per source, in input
    order.  Textually identical string sources are interpreted once and
    **share one report object** — verdicts are byte-identical to per-source
    :func:`detect_ub` calls, so callers must treat returned reports as
    read-only (every in-tree consumer does).  Parsed ``ast.Program`` inputs
    are never deduplicated (node identity is part of their meaning).
    """
    memo: dict[str, MiriReport] = {}
    reports: list[MiriReport] = []
    for source in sources:
        DETECTOR_STATS.requests += 1
        if isinstance(source, str):
            report = memo.get(source)
            if report is None:
                report = _detect(source, collect, max_errors, fuel, debug)
                memo[source] = report
            reports.append(report)
        else:
            reports.append(_detect(source, collect, max_errors, fuel, debug))
    return reports


class BatchVerifier:
    """Read-through verification memo over :func:`detect_ub_batch`.

    One verifier spans one repair: S2 re-verifies a candidate program after
    every executed step, and candidates frequently coincide across the
    repair's solutions and rounds (solutions sharing leading rules produce
    identical intermediate programs; later rounds revisit earlier rewrites).
    The memo answers repeats without re-interpreting — verdicts stay
    byte-identical (reports are never mutated downstream) and the virtual
    clock still charges every verification (it models a sequential real
    run), so only wall-clock work drops.  ``requests``/``runs`` mirror
    :class:`DetectorStats` at per-repair scope.
    """

    def __init__(self, *, collect: bool = True, max_errors: int = 8,
                 fuel: int = DEFAULT_FUEL):
        self.collect = collect
        self.max_errors = max_errors
        self.fuel = fuel
        self.requests = 0
        self.runs = 0
        self._memo: dict[str, MiriReport] = {}

    def verify(self, source: str) -> MiriReport:
        """The (possibly memoized) detector report for one candidate."""
        self.requests += 1
        report = self._memo.get(source)
        if report is None:
            report = detect_ub_batch([source], collect=self.collect,
                                     max_errors=self.max_errors,
                                     fuel=self.fuel)[0]
            self._memo[source] = report
            self.runs += 1
        else:
            # Memo answers are still verification requests; only ``runs``
            # shrinks under batching.
            DETECTOR_STATS.requests += 1
        return report

    def verify_batch(self, sources: list[str]) -> list[MiriReport]:
        """Reports for many candidates; unseen distinct sources run in one
        :func:`detect_ub_batch` call."""
        self.requests += len(sources)
        missing = [source for source in dict.fromkeys(sources)
                   if source not in self._memo]
        if missing:
            for source, report in zip(
                    missing, detect_ub_batch(missing, collect=self.collect,
                                             max_errors=self.max_errors,
                                             fuel=self.fuel)):
                self._memo[source] = report
            self.runs += len(missing)
        DETECTOR_STATS.requests += len(sources) - len(missing)
        return [self._memo[source] for source in sources]


def error_count(source: str | ast.Program, **kwargs) -> int:
    """Number of distinct errors in collection mode (RustBrain's ``n_i``)."""
    kwargs.setdefault("collect", True)
    return detect_ub(source, **kwargs).error_count


__all__ = [
    "BatchVerifier",
    "DEFAULT_FUEL",
    "DETECTOR_STATS",
    "DetectorStats",
    "Interpreter",
    "MiriError",
    "MiriReport",
    "PAPER_CATEGORIES",
    "UbKind",
    "detect_ub",
    "detect_ub_batch",
    "error_count",
    "run_program",
]
