"""Miri-equivalent UB detector for the mini-Rust subset.

The public entry point is :func:`detect_ub`:

>>> from repro.miri import detect_ub
>>> report = detect_ub('''
... fn main() {
...     let b = Box::new(7);
...     let p = Box::into_raw(b);
...     unsafe { drop(Box::from_raw(p)); }
...     let v = unsafe { *p };
... }
... ''')
>>> report.passed
False
>>> report.errors[0].kind.value
'dangling_pointer'
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.parser import ParseError, parse_program
from .errors import MiriError, MiriReport, UbKind, PAPER_CATEGORIES
from .interp import DEFAULT_FUEL, Interpreter


def detect_ub(source: str | ast.Program, *, collect: bool = False,
              max_errors: int = 8, fuel: int = DEFAULT_FUEL,
              debug: bool = False) -> MiriReport:
    """Run the detector over ``source`` (text or already-parsed program).

    ``collect=True`` enables error-collection mode: instead of stopping at the
    first UB (Miri's behaviour, and the default), the interpreter records the
    error, skips the offending statement, and keeps going — this is what gives
    RustBrain's rollback mechanism a meaningful per-iteration error *count*
    (the ``n_i`` sequences of §III-B2).
    """
    if isinstance(source, str):
        try:
            program = parse_program(source)
        except ParseError as err:
            report = MiriReport()
            report.errors.append(MiriError(
                UbKind.COMPILE, f"parse error: {err}", err.span))
            return report
        except Exception as err:  # lexer errors and friends
            report = MiriReport()
            report.errors.append(MiriError(
                UbKind.COMPILE, f"lex error: {err}"))
            return report
    else:
        program = source
    interp = Interpreter(program, collect=collect, max_errors=max_errors,
                         fuel=fuel, debug=debug)
    return interp.run()


def error_count(source: str | ast.Program, **kwargs) -> int:
    """Number of distinct errors in collection mode (RustBrain's ``n_i``)."""
    kwargs.setdefault("collect", True)
    return detect_ub(source, **kwargs).error_count


__all__ = [
    "DEFAULT_FUEL",
    "Interpreter",
    "MiriError",
    "MiriReport",
    "PAPER_CATEGORIES",
    "UbKind",
    "detect_ub",
    "error_count",
]
