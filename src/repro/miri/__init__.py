"""Miri-equivalent UB detector for the mini-Rust subset.

The public entry point is :func:`detect_ub`:

>>> from repro.miri import detect_ub
>>> report = detect_ub('''
... fn main() {
...     let b = Box::new(7);
...     let p = Box::into_raw(b);
...     unsafe { drop(Box::from_raw(p)); }
...     let v = unsafe { *p };
... }
... ''')
>>> report.passed
False
>>> report.errors[0].kind.value
'dangling_pointer'

:func:`detect_ub_batch` verifies many candidate sources in one call:
parsing rides the :func:`~repro.lang.parser.parse_program` memo,
textually identical sources are interpreted **once**, and (with
``fingerprint=True``, the default) so are sources that normalize to the
same :func:`~repro.miri.fingerprint.source_fingerprint` — formatting- or
identifier-divergent spellings of one program.  Candidate repair
solutions converge on identical programs constantly (shared leading
rules, rollback revisits, members proposing the same fix), so batching
the verification step cuts real interpreter executions without changing
a single verdict.  :class:`BatchVerifier` extends that dedup across
successive calls within one repair, which is how RustBrain's S2 stage
and the exec-metric scorer amortize their detector runs, and
:func:`detect_case` shares *case-level* detection (F1, ensemble routing)
process-wide, so N ensemble members consulting the same case source pay
for one interpretation between them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..lang import ast_nodes as ast
from ..lang.parser import ParseError, parse_program
from .errors import MiriError, MiriReport, UbKind, PAPER_CATEGORIES
from .fingerprint import FINGERPRINT_VERSION, source_fingerprint
from .interp import (
    DEFAULT_FUEL,
    ENGINES,
    Interpreter,
    resolve_engine,
    run_program,
    set_default_engine,
)


@dataclass
class DetectorStats:
    """Process-wide detector accounting (see :data:`DETECTOR_STATS`).

    ``requests`` counts verification *questions* (one per source handed to
    :func:`detect_ub`, :func:`detect_ub_batch`, or :func:`detect_case`);
    ``runs`` counts actual interpreter executions.  Batching makes
    ``runs < requests``; the gap is the amortization
    ``BENCH_ensemble.json`` gates on.  ``fingerprint_hits`` counts the
    requests answered through normalized-fingerprint dedup specifically
    (a strict subset of the gap — exact-text dedup and the memos account
    for the rest), and ``case_memo_hits`` the requests answered by the
    process-wide :data:`CASE_MEMO`.

    The engine split (PR 10) adds ``compiles`` — bytecode compilations
    actually performed (the :func:`repro.miri.bytecode.compile_source`
    memo makes this much smaller than ``runs``; the gap is the VM's
    compile-once amortization) — and ``vm_runs``, the subset of ``runs``
    the bytecode VM executed (``runs - vm_runs`` ran the tree-walker).

    Counters are lock-guarded: every bump goes through :meth:`record`, so
    concurrent detector calls (ensemble member waves, the repair
    service's worker threads) never lose increments, and
    :meth:`snapshot` returns an internally consistent view — the
    service's ``/stats`` endpoint and the benchmark harnesses read
    through it instead of racing the raw attributes.
    """

    requests: int = 0
    runs: int = 0
    fingerprint_hits: int = 0
    case_memo_hits: int = 0
    compiles: int = 0
    vm_runs: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, *, requests: int = 0, runs: int = 0,
               fingerprint_hits: int = 0, case_memo_hits: int = 0,
               compiles: int = 0, vm_runs: int = 0) -> None:
        """Atomically add to any subset of the counters."""
        with self._lock:
            self.requests += requests
            self.runs += runs
            self.fingerprint_hits += fingerprint_hits
            self.case_memo_hits += case_memo_hits
            self.compiles += compiles
            self.vm_runs += vm_runs

    def snapshot(self) -> dict:
        """An internally consistent copy of every counter."""
        with self._lock:
            return {
                "requests": self.requests,
                "runs": self.runs,
                "fingerprint_hits": self.fingerprint_hits,
                "case_memo_hits": self.case_memo_hits,
                "compiles": self.compiles,
                "vm_runs": self.vm_runs,
            }

    def reset(self) -> None:
        with self._lock:
            self.requests = 0
            self.runs = 0
            self.fingerprint_hits = 0
            self.case_memo_hits = 0
            self.compiles = 0
            self.vm_runs = 0


#: The process-wide counter instance every detector call updates.
DETECTOR_STATS = DetectorStats()


def _detect(source: str | ast.Program, collect: bool, max_errors: int,
            fuel: int, debug: bool = False,
            engine: str | None = None) -> MiriReport:
    """One detector execution (parse/compile if needed, then interpret).

    Under the default ``vm`` engine, string sources compile through the
    :func:`repro.miri.bytecode.compile_source` memo — a hit skips the
    parse *and* the per-run AST clone, which is where the VM's cold-start
    speedup comes from.  A compiler failure (a bug in the lowering, never
    a property of the program) falls back to the tree-walker so the
    detector's answer is always the reference answer.
    """
    engine = resolve_engine(engine)
    compiled = None
    if isinstance(source, str):
        try:
            if engine == "vm":
                from .bytecode import BytecodeError, compile_source
                try:
                    compiled = compile_source(source)
                except BytecodeError:
                    engine = "tree"
            if compiled is not None:
                program = compiled.program
            else:
                program = parse_program(source)
        except ParseError as err:
            report = MiriReport()
            report.errors.append(MiriError(
                UbKind.COMPILE, f"parse error: {err}", err.span))
            return report
        except Exception as err:  # lexer errors and friends
            report = MiriReport()
            report.errors.append(MiriError(
                UbKind.COMPILE, f"lex error: {err}"))
            return report
    else:
        program = source
    DETECTOR_STATS.record(runs=1, vm_runs=1 if engine == "vm" else 0)
    return run_program(program, collect=collect, max_errors=max_errors,
                       fuel=fuel, debug=debug, engine=engine,
                       compiled=compiled)


def detect_ub(source: str | ast.Program, *, collect: bool = False,
              max_errors: int = 8, fuel: int = DEFAULT_FUEL,
              debug: bool = False, engine: str | None = None) -> MiriReport:
    """Run the detector over ``source`` (text or already-parsed program).

    ``collect=True`` enables error-collection mode: instead of stopping at the
    first UB (Miri's behaviour, and the default), the interpreter records the
    error, skips the offending statement, and keeps going — this is what gives
    RustBrain's rollback mechanism a meaningful per-iteration error *count*
    (the ``n_i`` sequences of §III-B2).

    ``engine="vm"`` (the default) executes compiled bytecode;
    ``engine="tree"`` forces the tree-walking reference interpreter.
    Reports are byte-identical either way — the switch exists for
    divergence triage, never for correctness.
    """
    DETECTOR_STATS.record(requests=1)
    return _detect(source, collect, max_errors, fuel, debug, engine)


def detect_ub_batch(sources, *, collect: bool = False, max_errors: int = 8,
                    fuel: int = DEFAULT_FUEL, debug: bool = False,
                    fingerprint: bool = True,
                    engine: str | None = None) -> list[MiriReport]:
    """Run the detector over many candidate sources in one call.

    Returns one :class:`~repro.miri.errors.MiriReport` per source, in
    input order.  String sources deduplicate at two levels: textually
    identical inputs always share one interpretation, and with
    ``fingerprint=True`` (the default) so do inputs whose
    :func:`~repro.miri.fingerprint.source_fingerprint` matches —
    formatting- or identifier-divergent spellings of one program
    (``DETECTOR_STATS.fingerprint_hits`` counts those specifically).

    **Aliasing:** each *duplicate* position receives a defensive
    :meth:`~repro.miri.errors.MiriReport.copy` of the first occurrence's
    report, so mutating one returned report never corrupts another —
    only the frozen error entries are shared.  Verdicts, error counts,
    and stdout of a fingerprint-deduplicated report are byte-identical
    to a fresh run; its error *messages* and spans may spell the first
    variant's identifiers and positions (the normalization erases
    exactly that).  Parsed ``ast.Program`` inputs are never
    deduplicated (node identity is part of their meaning).
    """
    memo: dict[str, MiriReport] = {}
    fp_memo: dict[str, MiriReport] = {}
    reports: list[MiriReport] = []
    for source in sources:
        DETECTOR_STATS.record(requests=1)
        if not isinstance(source, str):
            reports.append(_detect(source, collect, max_errors, fuel, debug,
                                   engine))
            continue
        report = memo.get(source)
        if report is not None:
            reports.append(report.copy())
            continue
        fp = source_fingerprint(source) if fingerprint else None
        if fp is not None and fp in fp_memo:
            DETECTOR_STATS.record(fingerprint_hits=1)
            report = fp_memo[fp]
            memo[source] = report
            reports.append(report.copy())
            continue
        report = _detect(source, collect, max_errors, fuel, debug, engine)
        memo[source] = report
        if fp is not None:
            fp_memo[fp] = report
        reports.append(report)
    return reports


class CaseMemo:
    """Process-wide memo for *case-level* detection (see :func:`detect_case`).

    Keys are the exact source text plus the detector options, so a hit
    replays a report whose spans and messages match the caller's source
    byte for byte — safe even for consumers (AST pruning, feature
    extraction) that anchor on error locations.  Bounded, thread-safe,
    and cleared wholesale by benchmarks that publish run counts.
    """

    def __init__(self, limit: int = 2048):
        self.limit = limit
        #: Master switch — benchmarks flip it off to reproduce the
        #: memo-free (PR-4) execution profile for A/B run counts.
        self.enabled = True
        self._entries: dict[tuple, MiriReport] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        """Lock-guarded view of the memo's state (the ``/stats`` payload):
        current entry count, capacity, and the master switch."""
        with self._lock:
            return {"entries": len(self._entries), "limit": self.limit,
                    "enabled": self.enabled}

    def lookup(self, key: tuple) -> MiriReport | None:
        with self._lock:
            return self._entries.get(key)

    def store(self, key: tuple, report: MiriReport) -> None:
        with self._lock:
            if len(self._entries) < self.limit:
                self._entries[key] = report

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: The process-wide case-detection memo :func:`detect_case` consults.
CASE_MEMO = CaseMemo()


def detect_case(source: str, *, collect: bool = False, max_errors: int = 8,
                fuel: int = DEFAULT_FUEL,
                engine: str | None = None) -> MiriReport:
    """Detection for *case-level* queries, memoized process-wide.

    Engines run F1 detection — and ``switch`` ensembles their routing
    probe — on the raw case source; under an ensemble, N members ask the
    identical question about the identical text, and campaigns repeat it
    per (arm, seed).  This entry point answers repeats from
    :data:`CASE_MEMO` (exact-text keys, so spans and messages always
    match the caller's source) and returns a defensive copy, so every
    caller owns its report.  Byte-identical to :func:`detect_ub` by
    construction; only wall-clock interpreter runs drop
    (``DETECTOR_STATS.case_memo_hits`` counts the savings).
    """
    DETECTOR_STATS.record(requests=1)
    engine = resolve_engine(engine)
    if not CASE_MEMO.enabled:
        return _detect(source, collect, max_errors, fuel, False, engine)
    key = (source, collect, max_errors, fuel, engine)
    report = CASE_MEMO.lookup(key)
    if report is None:
        report = _detect(source, collect, max_errors, fuel, False, engine)
        CASE_MEMO.store(key, report.copy())
        return report
    DETECTOR_STATS.record(case_memo_hits=1)
    return report.copy()


class BatchVerifier:
    """Read-through verification memo over :func:`detect_ub_batch`.

    One verifier spans one repair: S2 re-verifies a candidate program after
    every executed step, and candidates frequently coincide across the
    repair's solutions and rounds (solutions sharing leading rules produce
    identical intermediate programs; later rounds revisit earlier rewrites).
    The memo answers repeats without re-interpreting — verdicts stay
    byte-identical (reports are never mutated downstream) and the virtual
    clock still charges every verification (it models a sequential real
    run), so only wall-clock work drops.  With ``fingerprint=True`` (the
    default) the memo additionally matches *normalized* duplicates via
    :func:`~repro.miri.fingerprint.source_fingerprint` — e.g. a rewrite
    chain that arrives back at the original program re-verifies for free
    even though the canonical print spells it differently than the raw
    input.  ``requests``/``runs`` mirror :class:`DetectorStats` at
    per-repair scope; ``fingerprint_hits`` counts the normalized matches.
    """

    def __init__(self, *, collect: bool = True, max_errors: int = 8,
                 fuel: int = DEFAULT_FUEL, fingerprint: bool = True):
        self.collect = collect
        self.max_errors = max_errors
        self.fuel = fuel
        self.fingerprint = fingerprint
        self.requests = 0
        self.runs = 0
        self.fingerprint_hits = 0
        self._memo: dict[str, MiriReport] = {}
        self._fp_memo: dict[str, MiriReport] = {}

    def _lookup(self, source: str) -> MiriReport | None:
        report = self._memo.get(source)
        if report is not None:
            return report
        if self.fingerprint:
            report = self._fp_memo.get(source_fingerprint(source))
            if report is not None:
                DETECTOR_STATS.record(fingerprint_hits=1)
                self.fingerprint_hits += 1
                self._memo[source] = report
                return report
        return None

    def _store(self, source: str, report: MiriReport) -> None:
        self._memo[source] = report
        if self.fingerprint:
            self._fp_memo.setdefault(source_fingerprint(source), report)

    def seed(self, source: str, report: MiriReport) -> None:
        """Pre-load a report obtained elsewhere (e.g. the F1 detection
        answered by :func:`detect_case`), so later verifications of the
        same program — under any spelling, when fingerprinting — replay
        it without another interpreter run."""
        self._store(source, report)

    def _batch_size(self, sources: list[str]) -> int:
        """How many of ``sources`` one batch actually executes: the
        fingerprint-distinct count when fingerprinting, else all of
        them.  Computed locally — a global-counter delta would absorb
        runs from concurrently-consulting ensemble members."""
        if not self.fingerprint:
            return len(sources)
        return len({source_fingerprint(source) for source in sources})

    def verify(self, source: str) -> MiriReport:
        """The (possibly memoized) detector report for one candidate."""
        self.requests += 1
        report = self._lookup(source)
        if report is None:
            report = detect_ub_batch([source], collect=self.collect,
                                     max_errors=self.max_errors,
                                     fuel=self.fuel, fingerprint=False)[0]
            self._store(source, report)
            self.runs += 1
        else:
            # Memo answers are still verification requests; only ``runs``
            # shrinks under batching.
            DETECTOR_STATS.record(requests=1)
        return report

    def verify_batch(self, sources: list[str]) -> list[MiriReport]:
        """Reports for many candidates; unseen distinct sources run in one
        :func:`detect_ub_batch` call."""
        self.requests += len(sources)
        missing = [source for source in dict.fromkeys(sources)
                   if self._lookup(source) is None]
        if missing:
            for source, report in zip(
                    missing,
                    detect_ub_batch(missing, collect=self.collect,
                                    max_errors=self.max_errors,
                                    fuel=self.fuel,
                                    fingerprint=self.fingerprint)):
                self._store(source, report)
            self.runs += self._batch_size(missing)
        DETECTOR_STATS.record(requests=len(sources) - len(missing))
        return [self._memo[source] for source in sources]


def error_count(source: str | ast.Program, **kwargs) -> int:
    """Number of distinct errors in collection mode (RustBrain's ``n_i``)."""
    kwargs.setdefault("collect", True)
    return detect_ub(source, **kwargs).error_count


__all__ = [
    "BatchVerifier",
    "CASE_MEMO",
    "CaseMemo",
    "DEFAULT_FUEL",
    "DETECTOR_STATS",
    "DetectorStats",
    "ENGINES",
    "FINGERPRINT_VERSION",
    "Interpreter",
    "MiriError",
    "MiriReport",
    "PAPER_CATEGORIES",
    "UbKind",
    "detect_case",
    "detect_ub",
    "detect_ub_batch",
    "error_count",
    "resolve_engine",
    "run_program",
    "set_default_engine",
    "source_fingerprint",
]
